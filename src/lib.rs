//! # dlacep
//!
//! Umbrella crate for the DLACEP reproduction (Amir, Kolchinsky & Schuster,
//! *DLACEP: A Deep-Learning Based Framework for Approximate Complex Event
//! Processing*, SIGMOD 2022): re-exports the workspace crates under one
//! namespace.
//!
//! * [`events`] — primitive events, schemas, streams, windows;
//! * [`cep`] — the exact CEP engine substrate (NFA, ZStream tree, lazy) and
//!   the pattern language;
//! * [`par`] — the work-stealing thread pool and `Parallelism` config;
//! * [`nn`] — the from-scratch neural-network substrate (BiLSTM, CRF, Adam);
//! * [`data`] — synthetic datasets and exact-CEP labeling;
//! * [`core`] — the DLACEP framework: assembler, filters, pipeline, trainer;
//! * [`obs`] — zero-dependency metrics, spans, and the event journal;
//! * [`dur`] — durability primitives: binary codec, write-ahead log,
//!   checkpoints, and crash injection;
//! * [`serve`] — the keyed multi-shard ingestion tier: hash-partitioned
//!   durable runtime shards, fleet-wide crash recovery, in-process and
//!   TCP (`DMSV` wire protocol) front ends.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `dlacep-bench` crate for the paper's experiments.

pub use dlacep_cep as cep;
pub use dlacep_core as core;
pub use dlacep_data as data;
pub use dlacep_dur as dur;
pub use dlacep_events as events;
pub use dlacep_nn as nn;
pub use dlacep_obs as obs;
pub use dlacep_par as par;
pub use dlacep_serve as serve;

/// One-stop glob import for applications: the core prelude (pipeline,
/// builders, filters, runtime, quantized fast path) plus the pattern
/// language and stream types needed to drive it.
///
/// ```
/// use dlacep::prelude::*;
///
/// let pattern = Pattern::new(
///     PatternExpr::Seq(vec![
///         PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
///         PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
///     ]),
///     vec![],
///     WindowSpec::Count(4),
/// );
/// let dlacep = Dlacep::builder(pattern.clone(), OracleFilter::new(pattern))
///     .build()
///     .unwrap();
/// # let _ = dlacep;
/// ```
pub mod prelude {
    pub use dlacep_cep::{Pattern, PatternError, PatternExpr, PatternSet, TypeSet};
    pub use dlacep_core::prelude::*;
    pub use dlacep_events::{EventStream, OutOfOrderPolicy, PrimitiveEvent, TypeId, WindowSpec};
}
