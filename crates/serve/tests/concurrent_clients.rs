//! Concurrency at the front door: many clients interleaving over one
//! fleet must conserve totals and keep per-key determinism, and a client
//! that vanishes mid-stream must be replaceable by a fresh resilient
//! client that adopts the fleet position.

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::OracleFilter;
use dlacep_data::StockConfig;
use dlacep_dur::MemStore;
use dlacep_events::{EventStream, KeyExtractor, TypeId, WindowSpec};
use dlacep_serve::{
    spawn, ClientConfig, FleetConfig, FleetReport, ResilientClient, ServerConfig, ShardedDlacep,
    WireClient, WireServer,
};
use std::sync::Arc;
use std::time::Duration;

const KEY_EXTRACTOR: KeyExtractor = KeyExtractor::ByTypeGroup(4);

fn pattern() -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
            PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
            PatternExpr::event(TypeSet::single(TypeId(2)), "c"),
        ]),
        vec![],
        WindowSpec::Count(12),
    )
}

fn stream(n: usize) -> EventStream {
    let (_, stream) = StockConfig {
        num_events: n,
        ..Default::default()
    }
    .generate();
    stream
}

fn fleet_config(shards: u32) -> FleetConfig {
    FleetConfig {
        shards,
        key_extractor: KEY_EXTRACTOR,
        sync_every_events: 16,
        checkpoint_every_events: 96,
        ..FleetConfig::default()
    }
}

fn make_fleet(shards: u32) -> ShardedDlacep<OracleFilter, MemStore> {
    let pat = pattern();
    ShardedDlacep::create(
        pattern(),
        fleet_config(shards),
        Arc::new(move || OracleFilter::new(pat.clone())),
        Arc::new(|| None),
        (0..shards).map(|_| MemStore::new()).collect(),
    )
    .unwrap()
}

fn direct_run(stream: &EventStream, shards: u32) -> FleetReport {
    let mut fleet = make_fleet(shards);
    for ev in stream.events() {
        fleet.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
    }
    fleet.finish()
}

fn assert_reports_match(a: &FleetReport, b: &FleetReport, ctx: &str) {
    let mut ta = a.totals;
    let mut tb = b.totals;
    ta.refeed_skipped = 0;
    tb.refeed_skipped = 0;
    assert_eq!(ta, tb, "{ctx}: totals");
    assert_eq!(
        a.keys.iter().map(|k| k.key).collect::<Vec<_>>(),
        b.keys.iter().map(|k| k.key).collect::<Vec<_>>(),
        "{ctx}: key sets"
    );
    for (ka, kb) in a.keys.iter().zip(&b.keys) {
        assert_eq!(
            ka.report.matches, kb.report.matches,
            "{ctx}: key {} matches",
            ka.key
        );
    }
}

/// N clients, events partitioned *by key* so each key's order is owned by
/// exactly one connection: arbitrary interleaving across clients must
/// still conserve totals and reproduce per-key matches bitwise.
#[test]
fn concurrent_clients_conserve_totals_and_per_key_determinism() {
    const CLIENTS: usize = 4;
    let stream = stream(1_600);
    let expect = direct_run(&stream, 4);

    let (handle, pump) = spawn(make_fleet(4), 256);
    let cfg = ServerConfig {
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), cfg)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = server.addr();

    // Partition by key, not by stream slice: per-key order is a promise
    // the caller must keep, and one owner per key keeps it under any
    // cross-client interleaving.
    let mut parts: Vec<Vec<_>> = (0..CLIENTS).map(|_| Vec::new()).collect();
    for ev in stream.events() {
        let key = KEY_EXTRACTOR.key_of(ev.type_id, &ev.attrs);
        parts[(key % CLIENTS as u64) as usize].push(ev.clone());
    }
    let total: usize = parts.iter().map(Vec::len).sum();
    assert_eq!(total, stream.events().len());

    let threads: Vec<_> = parts
        .into_iter()
        .map(|part| {
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).unwrap();
                client
                    .set_io_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                for ev in &part {
                    client
                        .ingest(ev.type_id, ev.ts.0, ev.attrs.clone())
                        .unwrap();
                }
                let (offered, _, _, _) = client.flush().unwrap();
                offered
            })
        })
        .collect();
    let mut max_offered = 0;
    for t in threads {
        max_offered = max_offered.max(t.join().unwrap());
    }
    // The last client to flush has seen every event land.
    assert_eq!(max_offered, stream.events().len() as u64);

    let report = server.stop().unwrap();
    assert_eq!(report.conns_accepted, CLIENTS as u64);
    assert!(report.drained, "all clients closed; drain must be clean");
    drop(handle);
    let got = pump.finish().unwrap();
    assert_eq!(got.totals.offered, stream.events().len() as u64);
    assert_reports_match(&expect, &got, "4 concurrent clients");
}

/// A producer that vanishes mid-stream (after acking its prefix) can be
/// replaced: a fresh `ResilientClient` adopts the fleet position from the
/// Hello/Resume handshake and carries the stream to convergence.
#[test]
fn fresh_client_adopts_position_after_disconnect() {
    let stream = stream(1_000);
    let expect = direct_run(&stream, 4);

    let (handle, pump) = spawn(make_fleet(4), 256);
    let server = WireServer::bind("127.0.0.1:0", handle.clone())
        .unwrap()
        .spawn()
        .unwrap();

    // First producer: 400 events, acked, then gone.
    let mut first = WireClient::connect(server.addr()).unwrap();
    first.set_io_timeout(Some(Duration::from_secs(10))).unwrap();
    for ev in &stream.events()[..400] {
        first.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
    }
    let (offered, _, _, _) = first.flush().unwrap();
    assert_eq!(offered, 400);
    drop(first);

    // Replacement producer: empty buffer, no acks — the handshake must
    // move its position forward to resume_seq instead of re-offering.
    let cfg = ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(10),
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(40),
        max_retries: 20,
        jitter_seed: 11,
    };
    let mut second = ResilientClient::connect(server.addr().to_string(), cfg).unwrap();
    assert_eq!(
        second.position(),
        401,
        "the fresh client must adopt the fleet position"
    );
    for ev in &stream.events()[400..] {
        second.ingest(ev.type_id, ev.ts.0, ev.attrs.clone());
    }
    let (offered, _, _, _) = second.flush().unwrap();
    assert_eq!(offered, stream.events().len() as u64);
    drop(second);

    let report = server.stop().unwrap();
    assert_eq!(report.conns_accepted, 2);
    drop(handle);
    let got = pump.finish().unwrap();
    assert_reports_match(&expect, &got, "handover across producers");
}
