//! Front-door hardening battery: poisoned-pump truthfulness, admission
//! control, overload shedding, error diagnosis to the peer, idle reaping,
//! and the drain-deadline force-close path.

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::OracleFilter;
use dlacep_data::StockConfig;
use dlacep_dur::{FailingStore, MemStore, Store};
use dlacep_events::{EventStream, KeyExtractor, TypeId, WindowSpec};
use dlacep_serve::{
    spawn, ClientConfig, FleetConfig, ResilientClient, ServerConfig, ShardedDlacep, WireClient,
    WireMsg, WireServer,
};
use std::io;
use std::sync::Arc;
use std::time::Duration;

fn pattern() -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
            PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
            PatternExpr::event(TypeSet::single(TypeId(2)), "c"),
        ]),
        vec![],
        WindowSpec::Count(12),
    )
}

fn stream(n: usize) -> EventStream {
    let (_, stream) = StockConfig {
        num_events: n,
        ..Default::default()
    }
    .generate();
    stream
}

fn fleet_config(shards: u32) -> FleetConfig {
    FleetConfig {
        shards,
        key_extractor: KeyExtractor::ByTypeGroup(4),
        sync_every_events: 16,
        checkpoint_every_events: 96,
        ..FleetConfig::default()
    }
}

fn make_fleet<S: Store>(shards: u32, stores: Vec<S>) -> ShardedDlacep<OracleFilter, S> {
    let pat = pattern();
    ShardedDlacep::create(
        pattern(),
        fleet_config(shards),
        Arc::new(move || OracleFilter::new(pat.clone())),
        Arc::new(|| None),
        stores,
    )
    .unwrap()
}

fn test_server_cfg() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(25),
        drain_deadline: Duration::from_millis(1500),
        ..ServerConfig::default()
    }
}

/// Satellite (a) regression: once the pump records a fleet error, every
/// later barrier and ingest must report it — a flush may never return a
/// clean summary over silently dropped events.
#[test]
fn poisoned_pump_fails_barriers_and_ingests() {
    use dlacep_dur::Schedule;
    // The crash tick is measured past fleet creation, so the store dies
    // mid-ingest inside the pump thread.
    let stores = vec![FailingStore::new(
        MemStore::new(),
        Schedule::never().at(crash_tick()),
    )];
    let fleet = make_fleet(1, stores);
    let (handle, pump) = spawn(fleet, 64);

    let stream = stream(400);
    for ev in stream.events() {
        // Ingest is fire-and-forget; after the poison lands it starts
        // failing fast, which is itself part of the contract.
        if handle
            .ingest(ev.type_id, ev.ts.0, ev.attrs.clone())
            .is_err()
        {
            break;
        }
    }
    // The barrier must surface the stored error, not report success.
    let sync_err = handle.sync().expect_err("sync must surface the poison");
    assert!(
        sync_err.to_string().contains("injected crash"),
        "sync error must carry the original failure: {sync_err}"
    );
    assert!(handle.stats().is_err(), "stats must surface the poison");
    assert!(
        handle.checkpoint().is_err(),
        "checkpoint must surface the poison"
    );
    assert!(
        handle
            .ingest(TypeId(0), 1, vec![1.0])
            .expect_err("ingest after poison must fail")
            .to_string()
            .contains("injected crash"),
        "ingest must fail fast with the stored error"
    );
    assert!(
        handle.poisoned().is_some(),
        "poison must be observable on the handle"
    );
    drop(handle);
    let (_, first_err) = pump.into_fleet().unwrap();
    assert!(
        first_err.is_some(),
        "the pump must hand back the first error on teardown"
    );
}

/// Satellite (a), wire view: a client flushing into a poisoned pump gets
/// a typed Error reply, never a clean Summary.
#[test]
fn poisoned_pump_is_reported_over_the_wire() {
    use dlacep_dur::Schedule;
    let stores = vec![FailingStore::new(
        MemStore::new(),
        Schedule::never().at(crash_tick()),
    )];
    let fleet = make_fleet(1, stores);
    let (handle, pump) = spawn(fleet, 64);
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), test_server_cfg())
        .unwrap()
        .spawn()
        .unwrap();

    let mut client = WireClient::connect(server.addr()).unwrap();
    client.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    let stream = stream(400);
    let mut flush_err = None;
    for chunk in stream.events().chunks(50) {
        for ev in chunk {
            if client
                .ingest(ev.type_id, ev.ts.0, ev.attrs.clone())
                .is_err()
            {
                break;
            }
        }
        match client.flush() {
            Ok(_) => {}
            Err(e) => {
                flush_err = Some(e);
                break;
            }
        }
    }
    let err = flush_err.expect("a flush over the poisoned pump must fail");
    assert!(
        err.to_string().contains("injected crash"),
        "the wire error must carry the fleet failure: {err}"
    );
    drop(client);
    server.stop().unwrap();
    drop(handle);
    let (_, first_err) = pump.into_fleet().unwrap();
    assert!(first_err.is_some());
}

/// Satellite (b): an ingest the fleet rejects is diagnosed to the peer
/// with a typed Error before the connection drops — never a silent close.
#[test]
fn rejected_ingest_is_diagnosed_before_disconnect() {
    use dlacep_dur::Schedule;
    let stores = vec![FailingStore::new(
        MemStore::new(),
        Schedule::never().at(crash_tick()),
    )];
    let fleet = make_fleet(1, stores);
    let (handle, pump) = spawn(fleet, 64);
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), test_server_cfg())
        .unwrap()
        .spawn()
        .unwrap();

    let mut client = WireClient::connect(server.addr()).unwrap();
    client.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    let stream = stream(400);
    // Stream events until the server kills the connection, then read
    // whatever it said on the way out.
    for ev in stream.events() {
        if client
            .ingest(ev.type_id, ev.ts.0, ev.attrs.clone())
            .is_err()
        {
            break;
        }
        if client.flush_wire().is_err() {
            break;
        }
    }
    let mut saw_error = false;
    loop {
        match client.recv() {
            Ok(Some(WireMsg::Error { message })) => {
                assert!(
                    message.contains("injected crash"),
                    "diagnosis must carry the cause: {message}"
                );
                saw_error = true;
                break;
            }
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => break,
        }
    }
    assert!(
        saw_error,
        "the peer must receive a typed Error, not a silent close"
    );
    server.stop().unwrap();
    drop(handle);
    let _ = pump.into_fleet();
}

/// Admission control: the (N+1)th connection is refused with a typed
/// Error naming the limit.
#[test]
fn max_conns_refuses_with_typed_error() {
    let fleet = make_fleet(1, vec![MemStore::new()]);
    let (handle, pump) = spawn(fleet, 64);
    let cfg = ServerConfig {
        max_conns: 1,
        ..test_server_cfg()
    };
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), cfg)
        .unwrap()
        .spawn()
        .unwrap();

    let mut first = WireClient::connect(server.addr()).unwrap();
    first.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    // A round trip guarantees the server registered the connection.
    first.flush().unwrap();

    let mut second = WireClient::connect(server.addr()).unwrap();
    second.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    match second.recv() {
        Ok(Some(WireMsg::Error { message })) => {
            assert!(
                message.contains("max connections"),
                "refusal must name the limit: {message}"
            );
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }

    drop(first);
    drop(second);
    let report = server.stop().unwrap();
    assert_eq!(report.conns_accepted, 1);
    assert_eq!(report.conns_refused, 1);
    drop(handle);
    pump.finish().unwrap();
}

/// A store that applies events slowly, so the pump queue backs up and
/// the server's overload shedding fires deterministically.
#[derive(Debug)]
struct SlowStore {
    inner: MemStore,
    delay: Duration,
}

impl SlowStore {
    fn new(delay: Duration) -> Self {
        SlowStore {
            inner: MemStore::new(),
            delay,
        }
    }
}

impl Store for SlowStore {
    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }
    fn len(&self, name: &str) -> io::Result<u64> {
        self.inner.len(name)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.append(name, bytes)
    }
    fn sync(&mut self, name: &str) -> io::Result<()> {
        self.inner.sync(name)
    }
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }
}

/// Tentpole overload criterion: when queue depth crosses the high-water
/// mark the server replies `Overloaded` instead of blocking, and the
/// resilient client still converges to every event applied.
#[test]
fn overload_sheds_and_client_converges() {
    let fleet = make_fleet(1, vec![SlowStore::new(Duration::from_millis(2))]);
    let (handle, pump) = spawn(fleet, 64);
    let cfg = ServerConfig {
        shed_high_water: 16,
        shed_retry_after_ms: 5,
        ..test_server_cfg()
    };
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), cfg)
        .unwrap()
        .spawn()
        .unwrap();

    let client_cfg = ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_millis(2000),
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(40),
        max_retries: 120,
        jitter_seed: 7,
    };
    let mut client = ResilientClient::connect(server.addr().to_string(), client_cfg).unwrap();
    let stream = stream(300);
    for ev in stream.events() {
        client.ingest(ev.type_id, ev.ts.0, ev.attrs.clone());
    }
    let (offered, _, _, _) = client.flush().unwrap();
    assert_eq!(offered, 300, "every event must converge through the sheds");
    assert!(
        client.stats().overloaded_seen > 0,
        "the flood must have been shed at least once: {:?}",
        client.stats()
    );
    assert!(
        handle.obs().counter("serve_shed_events").get() > 0,
        "server must count shed ingests"
    );

    drop(client);
    server.stop().unwrap();
    drop(handle);
    let report = pump.finish().unwrap();
    assert_eq!(report.totals.offered, 300);
}

/// Idle connections are reaped after the idle timeout, with a diagnosis.
#[test]
fn idle_connection_is_reaped_with_diagnosis() {
    let fleet = make_fleet(1, vec![MemStore::new()]);
    let (handle, pump) = spawn(fleet, 64);
    let cfg = ServerConfig {
        read_timeout: Duration::from_millis(20),
        idle_timeout: Duration::from_millis(120),
        ..test_server_cfg()
    };
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), cfg)
        .unwrap()
        .spawn()
        .unwrap();

    let mut client = WireClient::connect(server.addr()).unwrap();
    client.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    client.flush().unwrap(); // prove liveness first
    match client.recv() {
        Ok(Some(WireMsg::Error { message })) => {
            assert!(
                message.contains("idle"),
                "reap diagnosis must say why: {message}"
            );
        }
        other => panic!("expected an idle-reap Error, got {other:?}"),
    }
    assert!(
        handle.obs().counter("serve_conn_reaped").get() > 0,
        "reap must be counted"
    );
    drop(client);
    server.stop().unwrap();
    drop(handle);
    pump.finish().unwrap();
}

/// A peer stuck mid-frame cannot hold up shutdown forever: the drain
/// deadline force-closes it and the report says so.
#[test]
fn stuck_partial_frame_is_force_closed_at_drain_deadline() {
    use std::io::Write as _;
    use std::net::TcpStream;

    let fleet = make_fleet(1, vec![MemStore::new()]);
    let (handle, pump) = spawn(fleet, 64);
    let cfg = ServerConfig {
        read_timeout: Duration::from_millis(20),
        drain_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), cfg)
        .unwrap()
        .spawn()
        .unwrap();

    // Handshake a healthy frame first so the worker is live, then send
    // half of a frame and stall.
    let mut healthy = WireClient::connect(server.addr()).unwrap();
    healthy
        .set_io_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    healthy.flush().unwrap();
    drop(healthy);

    let mut stuck = TcpStream::connect(server.addr()).unwrap();
    let frame = dlacep_serve::encode_msg(&WireMsg::Flush);
    stuck.write_all(&frame[..frame.len() / 2]).unwrap();
    stuck.flush().unwrap();
    std::thread::sleep(Duration::from_millis(60)); // let the bytes land

    let report = server.stop().unwrap();
    assert!(
        !report.drained,
        "a stuck mid-frame peer must not count as drained"
    );
    assert!(
        report.conns_forced >= 1,
        "the stuck peer must be force-closed: {report:?}"
    );
    assert!(
        report.final_barrier_error.is_none(),
        "the final barrier still runs after a forced drain"
    );
    drop(stuck);
    drop(handle);
    pump.finish().unwrap();
}

/// The serve-layer counters ride the fleet's metrics scrape, registered
/// eagerly so a quiet server still exposes zero-valued series.
#[test]
fn serve_counters_appear_in_wire_metrics() {
    let fleet = make_fleet(1, vec![MemStore::new()]);
    let (handle, pump) = spawn(fleet, 64);
    let server = WireServer::bind_with("127.0.0.1:0", handle.clone(), test_server_cfg())
        .unwrap()
        .spawn()
        .unwrap();

    let mut client = WireClient::connect(server.addr()).unwrap();
    client.set_io_timeout(Some(Duration::from_secs(5))).unwrap();
    let body = client.telemetry("metrics").unwrap();
    for series in [
        "serve_conn_accepted_total",
        "serve_conn_refused_total",
        "serve_shed_events_total",
        "serve_tele_truncated_total",
    ] {
        assert!(
            body.contains(series),
            "metrics scrape must expose {series}:\n{body}"
        );
    }
    drop(client);
    server.stop().unwrap();
    drop(handle);
    pump.finish().unwrap();
}

/// Fleet creation itself spends store ticks (WAL headers, first
/// checkpoint); measure them so the injected crash reliably lands
/// mid-ingest instead of mid-create.
fn crash_tick() -> u64 {
    use dlacep_dur::Schedule;
    let stores = vec![FailingStore::new(MemStore::new(), Schedule::never())];
    let fleet = make_fleet(1, stores);
    let spent = fleet
        .into_stores()
        .into_iter()
        .map(|s| s.ticks())
        .max()
        .unwrap_or(0);
    spent + 40
}
