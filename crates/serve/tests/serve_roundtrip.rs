//! End-to-end serving-tier round trips: the in-process channel pump and
//! the TCP wire front door must both produce exactly the result of driving
//! the fleet directly, and a recovered fleet resumed from `resume_seq`
//! must converge to the uninterrupted run.

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::OracleFilter;
use dlacep_data::StockConfig;
use dlacep_dur::MemStore;
use dlacep_events::{EventStream, KeyExtractor, TypeId, WindowSpec};
use dlacep_serve::{spawn, FleetConfig, FleetReport, ShardedDlacep, WireClient, WireServer};
use std::sync::Arc;

fn pattern() -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
            PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
            PatternExpr::event(TypeSet::single(TypeId(2)), "c"),
        ]),
        vec![],
        WindowSpec::Count(12),
    )
}

fn stream(n: usize) -> EventStream {
    let (_, stream) = StockConfig {
        num_events: n,
        ..Default::default()
    }
    .generate();
    stream
}

fn fleet_config(shards: u32) -> FleetConfig {
    FleetConfig {
        shards,
        key_extractor: KeyExtractor::ByTypeGroup(4),
        sync_every_events: 16,
        checkpoint_every_events: 96,
        ..FleetConfig::default()
    }
}

fn make_fleet(shards: u32) -> ShardedDlacep<OracleFilter, MemStore> {
    let pat = pattern();
    ShardedDlacep::create(
        pattern(),
        fleet_config(shards),
        Arc::new(move || OracleFilter::new(pat.clone())),
        Arc::new(|| None),
        (0..shards).map(|_| MemStore::new()).collect(),
    )
    .unwrap()
}

fn direct_run(stream: &EventStream) -> FleetReport {
    let mut fleet = make_fleet(4);
    for ev in stream.events() {
        fleet.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
    }
    fleet.finish()
}

fn assert_reports_match(a: &FleetReport, b: &FleetReport, ctx: &str) {
    // refeed_skipped is the one counter that legitimately differs between
    // an uninterrupted run and a recovered one — it *counts* the re-feed.
    let mut ta = a.totals;
    let mut tb = b.totals;
    ta.refeed_skipped = 0;
    tb.refeed_skipped = 0;
    assert_eq!(ta, tb, "{ctx}: totals");
    assert_eq!(
        a.keys.iter().map(|k| k.key).collect::<Vec<_>>(),
        b.keys.iter().map(|k| k.key).collect::<Vec<_>>(),
        "{ctx}: key sets"
    );
    for (ka, kb) in a.keys.iter().zip(&b.keys) {
        assert_eq!(
            ka.report.matches, kb.report.matches,
            "{ctx}: key {} matches",
            ka.key
        );
    }
}

#[test]
fn channel_front_end_matches_direct_run() {
    let stream = stream(1_200);
    let expect = direct_run(&stream);

    let (handle, pump) = spawn(make_fleet(4), 64);
    for ev in stream.events() {
        handle
            .ingest(ev.type_id, ev.ts.0, ev.attrs.clone())
            .unwrap();
    }
    handle.sync().unwrap();
    let stats = handle.stats().unwrap();
    assert_eq!(stats.offered, stream.events().len() as u64);
    assert!(stats.matches > 0, "workload must produce matches");
    drop(handle);
    let report = pump.finish().unwrap();
    assert_reports_match(&expect, &report, "channel pump");
}

#[test]
fn tcp_front_end_matches_direct_run() {
    let stream = stream(800);
    let expect = direct_run(&stream);

    let (handle, pump) = spawn(make_fleet(4), 64);
    let server = WireServer::bind("127.0.0.1:0", handle.clone())
        .unwrap()
        .spawn()
        .unwrap();
    let addr = server.addr();

    let mut client = WireClient::connect(addr).unwrap();
    for ev in stream.events() {
        client
            .ingest(ev.type_id, ev.ts.0, ev.attrs.clone())
            .unwrap();
    }
    let (offered, matches, keys, refeed_skipped) = client.flush().unwrap();
    assert_eq!(offered, stream.events().len() as u64);
    assert!(matches > 0);
    assert!(keys > 1);
    assert_eq!(refeed_skipped, 0);
    drop(client);
    let report = server.stop().unwrap();
    assert_eq!(report.conns_accepted, 1);
    assert!(report.drained, "one closed client must drain cleanly");

    drop(handle);
    let report = pump.finish().unwrap();
    assert_reports_match(&expect, &report, "tcp front end");
    // finish() evaluates trailing windows, so the final count can only grow
    // past what the mid-stream flush summary saw.
    assert!(
        report.totals.matches >= matches,
        "flush summary ({matches}) vs final report ({})",
        report.totals.matches
    );
}

#[test]
fn recovered_fleet_resumes_to_uninterrupted_result() {
    let stream = stream(1_000);
    let expect = direct_run(&stream);
    let events = stream.events();

    // Interrupt a run mid-stream after an explicit checkpoint plus a few
    // more (WAL-only) events, then recover and re-feed from resume_seq.
    let mut fleet = make_fleet(4);
    for ev in &events[..600] {
        fleet.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
    }
    fleet.checkpoint_now().unwrap();
    for ev in &events[600..730] {
        fleet.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
    }
    fleet.sync().unwrap();
    let stores = fleet.into_stores();

    let pat = pattern();
    let (mut recovered, report) = ShardedDlacep::recover(
        pattern(),
        fleet_config(4),
        Arc::new(move || OracleFilter::new(pat.clone())),
        Arc::new(|| None),
        stores,
    )
    .unwrap();
    assert!(
        report.resume_seq > 600 && report.resume_seq <= 731,
        "resume_seq {} must cover exactly the durable prefix",
        report.resume_seq
    );
    for ev in &events[(report.resume_seq - 1) as usize..] {
        recovered
            .ingest(ev.type_id, ev.ts.0, ev.attrs.clone())
            .unwrap();
    }
    let got = recovered.finish();
    assert_reports_match(&expect, &got, "recovered fleet");
}

#[test]
fn prometheus_scrape_has_one_type_header_per_metric() {
    let stream = stream(600);
    let mut fleet = {
        let pat = pattern();
        ShardedDlacep::create(
            pattern(),
            FleetConfig {
                obs: true,
                ..fleet_config(4)
            },
            Arc::new(move || OracleFilter::new(pat.clone())),
            Arc::new(|| None),
            (0..4).map(|_| MemStore::new()).collect(),
        )
        .unwrap()
    };
    for ev in stream.events() {
        fleet.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
    }
    let report = fleet.finish();
    let scrape = report.render_prometheus();
    assert!(
        scrape.contains(r#"serve_events_routed_total{shard="0"}"#),
        "scrape must label per-shard series:\n{scrape}"
    );
    assert!(
        scrape.contains(r#"{shard="3"}"#),
        "every shard appears:\n{scrape}"
    );
    // One TYPE header per metric name, not one per shard.
    let type_lines: Vec<&str> = scrape
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .collect();
    let mut names: Vec<&str> = type_lines
        .iter()
        .map(|l| l.split_whitespace().nth(2).unwrap())
        .collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate TYPE headers:\n{scrape}");
}
