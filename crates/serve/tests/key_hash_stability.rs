//! Pins the partitioning hash and the manifest-based recovery refusal.
//!
//! The fleet's shard layout is a persistent artifact: every WAL record and
//! checkpoint lives in the shard directory the hash routed its key to. The
//! first half of this battery pins `fx_hash64` / `shard_of` to exact
//! values — any change to the mixing math (which must come with a
//! [`HASH_REVISION`] bump) fails here loudly. The second half proves the
//! manifest check actually refuses the dangerous recoveries: a different
//! shard count, a different seed, a different partitioner, or shard stores
//! assembled in the wrong order would all silently misroute keys if
//! allowed through.

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::OracleFilter;
use dlacep_dur::{MemStore, Store};
use dlacep_events::{KeyExtractor, TypeId, WindowSpec};
use dlacep_serve::{
    fx_hash64, shard_of, FleetConfig, FleetError, ShardedDlacep, DEFAULT_HASH_SEED, HASH_REVISION,
};
use std::sync::Arc;

#[test]
fn hash_revision_is_one() {
    // Bumping the revision invalidates every existing fleet layout; it must
    // be deliberate, not a side effect. Update this pin together with the
    // value pins below and the manifest migration story.
    assert_eq!(HASH_REVISION, 1);
}

#[test]
fn fx_hash64_values_are_pinned() {
    // (key, hash under the default seed) — computed once at revision 1.
    // These must NEVER change without a HASH_REVISION bump.
    for (key, expect) in [
        (0u64, 0x898d42f3d07ee356u64),
        (1, 0x564582fbc9f87b5f),
        (2, 0x2717956d1187988e),
        (3, 0x1551a5b7889ee448),
        (42, 0x596ce10d4333cc60),
        (0xDEAD_BEEF, 0x69d6ba71d469472b),
    ] {
        assert_eq!(
            fx_hash64(DEFAULT_HASH_SEED, key),
            expect,
            "fx_hash64(default, {key}) drifted — this breaks every existing fleet layout"
        );
    }
    assert_eq!(
        fx_hash64(7, 0),
        0x9dade2cf70ea51ca,
        "seeded variant drifted"
    );
}

#[test]
fn shard_assignments_are_pinned() {
    for (key, at4, at8) in [
        (0u64, 2u32, 6u32),
        (1, 3, 7),
        (2, 2, 6),
        (3, 0, 0),
        (42, 0, 0),
        (0xDEAD_BEEF, 3, 3),
    ] {
        assert_eq!(shard_of(DEFAULT_HASH_SEED, key, 4), at4, "key {key} % 4");
        assert_eq!(shard_of(DEFAULT_HASH_SEED, key, 8), at8, "key {key} % 8");
    }
}

// ---------------------------------------------------------------------------
// Manifest refusal
// ---------------------------------------------------------------------------

fn pattern() -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
            PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
        ]),
        vec![],
        WindowSpec::Count(8),
    )
}

fn fleet_config(shards: u32) -> FleetConfig {
    FleetConfig {
        shards,
        key_extractor: KeyExtractor::ByTypeGroup(4),
        sync_every_events: 4,
        checkpoint_every_events: 16,
        ..FleetConfig::default()
    }
}

/// Run a small 2-shard fleet to a checkpoint and hand back its stores.
fn written_fleet() -> Vec<MemStore> {
    let pat = pattern();
    let mut fleet = ShardedDlacep::create(
        pat.clone(),
        fleet_config(2),
        Arc::new(move || OracleFilter::new(pat.clone())),
        Arc::new(|| None),
        vec![MemStore::new(), MemStore::new()],
    )
    .unwrap();
    for i in 0..40u64 {
        fleet
            .ingest(TypeId((i % 5) as u32), i, vec![i as f64])
            .unwrap();
    }
    fleet.checkpoint_now().unwrap();
    fleet.into_stores()
}

fn recover_with(cfg: FleetConfig, stores: Vec<MemStore>) -> Result<(), FleetError> {
    let pat = pattern();
    let pat2 = pat.clone();
    ShardedDlacep::recover(
        pat,
        cfg,
        Arc::new(move || OracleFilter::new(pat2.clone())),
        Arc::new(|| None),
        stores,
    )
    .map(|_| ())
}

fn expect_refused(result: Result<(), FleetError>, ctx: &str) {
    match result {
        Err(FleetError::Refused(msg)) => {
            assert!(!msg.is_empty(), "{ctx}: refusal must explain itself")
        }
        other => panic!("{ctx}: expected FleetError::Refused, got {other:?}"),
    }
}

#[test]
fn matching_config_recovers() {
    let stores = written_fleet();
    assert!(recover_with(fleet_config(2), stores).is_ok());
}

#[test]
fn different_shard_count_is_refused() {
    let mut stores = written_fleet();
    stores.push(MemStore::new());
    expect_refused(recover_with(fleet_config(3), stores), "shard count 2 → 3");
}

#[test]
fn different_hash_seed_is_refused() {
    let stores = written_fleet();
    let cfg = FleetConfig {
        hash_seed: 0x1234,
        ..fleet_config(2)
    };
    expect_refused(recover_with(cfg, stores), "different hash seed");
}

#[test]
fn different_partitioner_is_refused() {
    let stores = written_fleet();
    let cfg = FleetConfig {
        key_extractor: KeyExtractor::ByType,
        ..fleet_config(2)
    };
    expect_refused(recover_with(cfg, stores), "ByTypeGroup(4) → ByType");
}

#[test]
fn swapped_shard_order_is_refused() {
    let mut stores = written_fleet();
    stores.swap(0, 1);
    expect_refused(recover_with(fleet_config(2), stores), "shard order swap");
}

#[test]
fn data_without_manifest_is_refused() {
    let mut stores = written_fleet();
    // Simulate a store that predates the manifest (or lost it): data
    // present, fingerprint gone. Recovery must not guess.
    stores[0].remove("fleet.manifest").unwrap();
    expect_refused(recover_with(fleet_config(2), stores), "manifest removed");
}
