//! Wire-protocol properties for the `DMSV` frame layer, driven by
//! proptest: any message round-trips bit-exactly; any torn tail, interior
//! bit flip, or hostile length prefix surfaces as a typed protocol error —
//! never a panic, never a silently skipped frame — through any read
//! fragmentation a socket can produce.

use dlacep_events::TypeId;
use dlacep_serve::{encode_msg, FrameReader, WireError, WireMsg, MAX_WIRE_PAYLOAD};
use proptest::prelude::*;
use std::io::{self, Read};

/// A transport that delivers at most `chunk` bytes per `read` call —
/// simulates a socket fragmenting the stream (including one byte at a
/// time) and a peer whose writes land short.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunk: usize) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            chunk: chunk.max(1),
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Deterministically build one message of any variant from raw words.
/// Ingest attrs come straight from bit patterns, so NaNs, infinities, and
/// negative zero are all exercised; compare via [`msg_eq`].
fn build_msg(words: &[u64]) -> WireMsg {
    let w = |i: usize| words.get(i).copied().unwrap_or(0);
    match w(0) % 4 {
        0 => WireMsg::Ingest {
            type_id: TypeId((w(1) % 64) as u32),
            ts: w(2),
            attrs: words
                .get(3..)
                .unwrap_or(&[])
                .iter()
                .map(|&b| f64::from_bits(b))
                .collect(),
        },
        1 => WireMsg::Flush,
        2 => WireMsg::Summary {
            offered: w(1),
            matches: w(2),
            keys: w(3),
            refeed_skipped: w(4),
            prune_to: w(5),
        },
        _ => WireMsg::Error {
            message: words
                .get(1..)
                .unwrap_or(&[])
                .iter()
                .map(|&b| char::from_u32((b % 0x250) as u32).unwrap_or('ø'))
                .collect(),
        },
    }
}

fn build_msgs(seeds: &[Vec<u64>]) -> Vec<WireMsg> {
    seeds.iter().map(|s| build_msg(s)).collect()
}

/// Equality that treats attr floats bit-for-bit (NaN == NaN).
fn msg_eq(a: &WireMsg, b: &WireMsg) -> bool {
    match (a, b) {
        (
            WireMsg::Ingest {
                type_id: t1,
                ts: s1,
                attrs: a1,
            },
            WireMsg::Ingest {
                type_id: t2,
                ts: s2,
                attrs: a2,
            },
        ) => {
            t1 == t2
                && s1 == s2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        _ => a == b,
    }
}

const WORDS: std::ops::Range<u64> = 0..u64::MAX;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Round trip: any message sequence through any read fragmentation
    // decodes to exactly the input, then a clean EOF.
    #[test]
    fn round_trip_through_any_fragmentation(
        seeds in prop::collection::vec(prop::collection::vec(WORDS, 1..8), 1..8),
        chunk in 1usize..64,
    ) {
        let msgs = build_msgs(&seeds);
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode_msg(m));
        }
        let mut reader = FrameReader::new(ChunkedReader::new(bytes, chunk));
        for m in &msgs {
            let got = reader.read_msg().unwrap().expect("frame present");
            prop_assert!(msg_eq(&got, m), "decoded {:?}, expected {:?}", got, m);
        }
        prop_assert!(reader.read_msg().unwrap().is_none(), "clean EOF after last frame");
    }

    // Torn tail: cutting any nonzero number of bytes off the end turns the
    // final frame into a typed error (never a panic, never a silent skip);
    // every frame before the tear still decodes.
    #[test]
    fn torn_tail_is_a_typed_error(
        seeds in prop::collection::vec(prop::collection::vec(WORDS, 1..8), 1..6),
        cut_frac in 0.0f64..1.0,
        chunk in 1usize..64,
    ) {
        let msgs = build_msgs(&seeds);
        let mut bytes = Vec::new();
        let mut boundaries = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode_msg(m));
            boundaries.push(bytes.len());
        }
        // Cut 1..last_len bytes off the end so exactly the last frame is
        // torn (cut_frac < 1.0 always leaves at least one of its bytes).
        let start_of_last = if boundaries.len() > 1 {
            boundaries[boundaries.len() - 2]
        } else {
            0
        };
        let last_len = bytes.len() - start_of_last;
        let cut = 1 + ((last_len - 1) as f64 * cut_frac) as usize;
        bytes.truncate(bytes.len() - cut);

        let mut reader = FrameReader::new(ChunkedReader::new(bytes, chunk));
        for m in &msgs[..msgs.len() - 1] {
            let got = reader.read_msg().unwrap().expect("intact frame");
            prop_assert!(msg_eq(&got, m));
        }
        match reader.read_msg() {
            Err(WireError::Codec(_)) => {}
            other => prop_assert!(false, "torn tail must be a codec error, got {:?}", other),
        }
    }

    // Interior bit flip: flipping any single bit anywhere in the stream
    // makes some read return a typed error — a corrupt frame is never
    // silently skipped and never panics (the frame CRC covers the header
    // bytes too). Frames before the flip decode unaffected.
    #[test]
    fn interior_bit_flip_is_detected(
        seeds in prop::collection::vec(prop::collection::vec(WORDS, 1..8), 1..6),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
        chunk in 1usize..64,
    ) {
        let msgs = build_msgs(&seeds);
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode_msg(m));
        }
        let idx = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[idx] ^= 1 << bit;

        let mut reader = FrameReader::new(ChunkedReader::new(bytes, chunk));
        let mut decoded = 0usize;
        let outcome = loop {
            match reader.read_msg() {
                Ok(Some(got)) => {
                    prop_assert!(
                        msg_eq(&got, &msgs[decoded]),
                        "frame {} decoded differently without an error",
                        decoded
                    );
                    decoded += 1;
                }
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Err(WireError::Codec(_)) | Err(WireError::Oversized { .. }) => {
                // Detected as a typed error; everything before it decoded
                // intact (asserted above).
            }
            Ok(()) => prop_assert!(
                false,
                "bit flip at byte {} bit {} went completely unnoticed",
                idx,
                bit
            ),
            Err(other) => prop_assert!(false, "unexpected error class: {:?}", other),
        }
    }

    // Hostile length prefix: any announced length above the cap is rejected
    // as Oversized before the reader buffers a body.
    #[test]
    fn oversized_length_prefix_is_rejected(
        seed in prop::collection::vec(WORDS, 1..8),
        excess in 1u32..1024,
        chunk in 1usize..64,
    ) {
        let mut frame = encode_msg(&build_msg(&seed));
        let hostile = MAX_WIRE_PAYLOAD + excess;
        frame[6..10].copy_from_slice(&hostile.to_le_bytes());
        let mut reader = FrameReader::new(ChunkedReader::new(frame, chunk));
        match reader.read_msg() {
            Err(WireError::Oversized { len, max }) => {
                prop_assert_eq!(len, hostile);
                prop_assert_eq!(max, MAX_WIRE_PAYLOAD);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }
}
