//! # dlacep-serve
//!
//! Keyed multi-shard ingestion tier for DLACEP: one front door, N
//! independent durable runtime shards.
//!
//! Events are stamped with a fleet-global sequence number, keyed by a
//! [`KeyExtractor`](dlacep_events::KeyExtractor), and hash-partitioned
//! ([`hash`]) across shards, each of which owns its own WAL + checkpoint
//! directory and its own per-key [`StreamingDlacep`] runtimes — guard,
//! drift, and retrain lifecycles included. [`ShardedDlacep::recover`]
//! restores the whole fleet and tells the source where to resume.
//!
//! Front ends, outermost first:
//! - [`server`]: a TCP accept loop speaking the `DMSV` length-prefixed
//!   wire protocol ([`wire`]), hardened for production duty — graceful
//!   drain-then-barrier shutdown, connection caps with typed refusals,
//!   idle reaping, and overload shedding (`Overloaded` replies instead
//!   of blocking);
//! - [`channel`]: the in-process bounded-mpsc ingest pump (the primary
//!   tested path);
//! - [`ShardedDlacep`] itself, for callers that already own a thread.
//!
//! On the producer side, [`client::ResilientClient`] wraps the wire
//! protocol in timeouts, seeded-jitter backoff, and crash-safe resume:
//! it re-feeds its buffered tail from the server's `resume_seq` after a
//! reconnect and prunes only below the fleet's prune horizon. The
//! [`chaos`] module provides a deterministic fault-injecting TCP proxy
//! (`ChaosProxy`) that the chaos suite drives cuts, delays, and
//! duplicates through.
//!
//! Results merge into a [`FleetReport`]: per-key runtime reports in
//! canonical key order, per-shard rollups, fleet totals, and one labeled
//! Prometheus scrape for the whole fleet.
//!
//! Live telemetry rides two transports while the fleet ingests: the
//! `Tele` verb on the wire protocol, and the [`tele`] HTTP scrape
//! listener (`DLACEP_TELE_ADDR`) serving `/metrics`, `/healthz`,
//! `/traces`, and `/journal` off the same pump.
//!
//! [`StreamingDlacep`]: dlacep_core::StreamingDlacep

pub mod channel;
pub mod chaos;
pub mod client;
pub mod fleet;
pub mod hash;
pub mod report;
pub mod server;
pub mod tele;
pub mod wire;

pub use channel::{spawn, ServeError, ServeHandle, ServePump, TeleKind};
pub use chaos::{ChaosPlan, ChaosProxy, ChaosStats, MAX_DUP_BYTES};
pub use client::{
    ClientConfig, ClientError, ClientStats, ResilientClient, CLIENT_BACKOFF_BASE_ENV,
    CLIENT_BACKOFF_MAX_ENV, CLIENT_CONNECT_TIMEOUT_ENV, CLIENT_IO_TIMEOUT_ENV,
    CLIENT_MAX_RETRIES_ENV,
};
pub use fleet::{
    shards_from_env, FilterFactory, FleetConfig, FleetError, FleetRecoveryReport, FleetStats,
    ShardRecovery, ShardStats, ShardedDlacep, TrainerFactory, SHARDS_ENV,
};
pub use hash::{fx_hash64, shard_of, DEFAULT_HASH_SEED, HASH_REVISION};
pub use report::{FleetReport, FleetTotals, KeyReport, ShardSummary};
pub use server::{
    serve_addr_from_env, RunningServer, ServerConfig, ServerReport, ShutdownHandle, WireClient,
    WireServer, DRAIN_ENV, IDLE_TIMEOUT_ENV, MAX_CONNS_ENV, READ_TIMEOUT_ENV, SERVE_ADDR_ENV,
    SHED_HIGH_WATER_ENV, SHED_RETRY_AFTER_ENV, TELE_TRUNCATION_MARKER,
};
pub use tele::{tele_addr_from_env, TeleServer, TELE_ADDR_ENV};
pub use wire::{
    encode_msg, write_msg, FrameReader, WireError, WireMsg, MAX_WIRE_PAYLOAD, WIRE_MAGIC,
    WIRE_VERSION,
};
