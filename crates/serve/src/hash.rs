//! The fleet's key-partitioning hash: a seedable FxHash-style mixer,
//! vendored so the routing function is **pinned** — the byte-for-byte
//! layout of every shard directory depends on it.
//!
//! ## Stability contract
//!
//! `shard_of(seed, key, n)` decides which shard's WAL an event is logged
//! to. Recovery replays each shard's log into that shard's runtimes, so the
//! function must never drift between the build that wrote a fleet and the
//! build that recovers it. Hence:
//!
//! - the math is written out here (no `std::hash` / external crates, whose
//!   output may change across versions or platforms);
//! - [`HASH_REVISION`] names the current math. Any change to the mixing —
//!   however "compatible" it looks — must bump it, and the fleet manifest
//!   check then refuses to recover stores written under the old revision;
//! - `tests/key_hash_stability.rs` pins exact output values, so an
//!   accidental change fails loudly.
//!
//! The mixer is FxHash's word round (`h = (h <<< 5 ^ w) * K`, with
//! Firefox's 64-bit multiplier) seeded with the fleet's hash seed, followed
//! by one xor-shift-multiply finalizer: a single Fx round leaves the low
//! bits of small integer keys barely mixed, and `% shards` reads exactly
//! those bits.

/// Revision of the mixing math below. Bump on ANY change to
/// [`fx_hash64`] / [`shard_of`]; persisted in every shard's fleet manifest.
pub const HASH_REVISION: u32 = 1;

/// Default fleet hash seed.
pub const DEFAULT_HASH_SEED: u64 = 0xD1AC_E75E_ED00_0001;

/// FxHash's 64-bit multiplicative constant (π's fractional bits).
const FX_MULT: u64 = 0x517c_c1b7_2722_0a95;

/// Seeded FxHash round plus an avalanche finalizer. See the [module
/// docs](self) for the stability contract.
#[inline]
pub fn fx_hash64(seed: u64, key: u64) -> u64 {
    let h = (seed.rotate_left(5) ^ key).wrapping_mul(FX_MULT);
    (h ^ (h >> 32)).wrapping_mul(FX_MULT)
}

/// Shard assignment of `key` in a fleet of `shards` shards.
#[inline]
pub fn shard_of(seed: u64, key: u64, shards: u32) -> u32 {
    debug_assert!(shards > 0, "a fleet has at least one shard");
    (fx_hash64(seed, key) % u64::from(shards.max(1))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_changes_routing() {
        assert_ne!(fx_hash64(DEFAULT_HASH_SEED, 0), fx_hash64(7, 0));
    }

    #[test]
    fn small_keys_spread_across_shards() {
        // 256 consecutive keys over 8 shards: every shard gets some and no
        // shard hogs the stream (a weak-low-bits mixer fails this).
        let mut counts = [0u32; 8];
        for key in 0..256u64 {
            counts[shard_of(DEFAULT_HASH_SEED, key, 8) as usize] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (16..=64).contains(&c),
                "shard {shard} got {c}/256 keys: {counts:?}"
            );
        }
    }
}
