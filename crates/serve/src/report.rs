//! Merged fleet-level reporting: per-key runtime reports rolled up into
//! per-shard summaries, fleet totals, deterministic comparison views, and
//! a single labeled Prometheus scrape.

use crate::fleet::ShardStats;
use dlacep_cep::Match;
use dlacep_core::RuntimeReport;
use dlacep_obs::{render_prometheus_sharded, DeterministicView, MetricsSnapshot};
use std::collections::BTreeMap;

/// One key runtime's final report plus its fleet placement.
#[derive(Debug)]
pub struct KeyReport {
    /// Partition key.
    pub key: u64,
    /// Shard that hosted the key.
    pub shard: u32,
    /// The runtime's own report.
    pub report: RuntimeReport,
}

/// One shard's rollup.
#[derive(Clone, Copy, Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub index: u32,
    /// Keys hosted.
    pub keys: u64,
    /// Matches across the shard's keys.
    pub matches: u64,
    /// Durability/routing counters.
    pub stats: ShardStats,
}

/// Fleet-wide counter roll-up (sums over every key runtime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetTotals {
    /// Events offered to the fleet front door (including re-feeds).
    pub offered: u64,
    /// Matches across all keys.
    pub matches: u64,
    /// Runtime-level offered/admitted/dropped/clamped/relayed sums.
    pub events_offered: u64,
    pub events_admitted: u64,
    pub events_dropped: u64,
    pub events_clamped: u64,
    pub events_relayed: u64,
    /// Windows evaluated / degraded across all keys.
    pub windows_evaluated: u64,
    pub windows_degraded: u64,
    /// Retrained models accepted across all keys.
    pub models_accepted: u64,
    /// Re-offered events dropped as already applied.
    pub refeed_skipped: u64,
}

/// The merged result of [`crate::ShardedDlacep::finish`].
#[derive(Debug)]
pub struct FleetReport {
    /// Per-key reports, sorted by key (so equal fleets compare equal
    /// regardless of shard layout).
    pub keys: Vec<KeyReport>,
    /// Per-shard rollups, in shard order.
    pub shards: Vec<ShardSummary>,
    /// Fleet-wide sums.
    pub totals: FleetTotals,
}

impl FleetReport {
    pub(crate) fn new(keys: Vec<KeyReport>, shards: Vec<ShardSummary>, offered: u64) -> Self {
        let mut totals = FleetTotals {
            offered,
            ..FleetTotals::default()
        };
        for kr in &keys {
            let r = &kr.report;
            totals.matches += r.matches.len() as u64;
            totals.events_offered += r.events_offered as u64;
            totals.events_admitted += r.events_admitted as u64;
            totals.events_dropped += r.events_dropped as u64;
            totals.events_clamped += r.events_clamped as u64;
            totals.events_relayed += r.events_relayed as u64;
            totals.windows_evaluated += r.windows_evaluated as u64;
            totals.windows_degraded += r.windows_degraded as u64;
            totals.models_accepted += r.retrain.as_ref().map_or(0, |rt| rt.models_accepted);
        }
        for s in &shards {
            totals.refeed_skipped += s.stats.refeed_skipped;
        }
        FleetReport {
            keys,
            shards,
            totals,
        }
    }

    /// Every match in the fleet, in (key, per-key emission) order — a
    /// canonical order independent of shard layout.
    pub fn matches(&self) -> Vec<(u64, &Match)> {
        let mut out = Vec::with_capacity(self.totals.matches as usize);
        for kr in &self.keys {
            for m in &kr.report.matches {
                out.push((kr.key, m));
            }
        }
        out
    }

    /// Per-key deterministic metric views (requires the fleet to have run
    /// with `obs: true`; keys whose runtime had no registry are absent).
    /// Pool metrics are excluded — worker scheduling is the one
    /// intentionally nondeterministic dimension.
    pub fn deterministic_views(&self) -> BTreeMap<u64, DeterministicView> {
        self.keys
            .iter()
            .filter_map(|kr| {
                kr.report
                    .obs
                    .as_ref()
                    .map(|s| (kr.key, s.deterministic_view(&["pool."])))
            })
            .collect()
    }

    /// One Prometheus scrape for the whole fleet: each metric gets a single
    /// `# TYPE` header followed by one `{shard="i"}`-labeled series per
    /// shard. Key-runtime metrics are summed into their shard's snapshot
    /// (counters and histogram buckets add; gauges add, which suits the
    /// occupancy-style gauges the runtime exports); `serve_*` counters from
    /// [`ShardStats`] ride along in the same snapshot.
    pub fn render_prometheus(&self) -> String {
        let mut per_shard: Vec<MetricsSnapshot> = self
            .shards
            .iter()
            .map(|s| {
                let mut snap = MetricsSnapshot::default();
                let c = &mut snap.counters;
                c.insert("serve_events_routed".into(), s.stats.events_routed);
                c.insert("serve_wal_appends".into(), s.stats.wal_appends);
                c.insert("serve_wal_syncs".into(), s.stats.wal_syncs);
                c.insert("serve_checkpoints".into(), s.stats.checkpoints);
                c.insert("serve_refeed_skipped".into(), s.stats.refeed_skipped);
                c.insert("serve_models_drained".into(), s.stats.models_drained);
                c.insert("serve_keys".into(), s.keys);
                snap
            })
            .collect();
        for kr in &self.keys {
            let Some(obs) = &kr.report.obs else { continue };
            merge_into(&mut per_shard[kr.shard as usize], obs);
        }
        let labeled: Vec<(String, MetricsSnapshot)> = per_shard
            .into_iter()
            .enumerate()
            .map(|(i, snap)| (i.to_string(), snap))
            .collect();
        render_prometheus_sharded("shard", &labeled)
    }
}

/// Add `src`'s metrics into `dst`: counters, gauges, and histogram
/// count/sum/buckets all sum (bucket lists merge by bucket index). The
/// journal is not merged — it is per-key diagnostic state, exposed through
/// [`FleetReport::deterministic_views`] instead.
pub(crate) fn merge_into(dst: &mut MetricsSnapshot, src: &MetricsSnapshot) {
    for (name, v) in &src.counters {
        *dst.counters.entry(name.clone()).or_insert(0) += v;
    }
    for (name, v) in &src.gauges {
        *dst.gauges.entry(name.clone()).or_insert(0.0) += v;
    }
    for (name, h) in &src.histograms {
        let entry = dst.histograms.entry(name.clone()).or_default();
        entry.count += h.count;
        entry.sum += h.sum;
        let mut merged: BTreeMap<u32, u64> = entry.buckets.iter().copied().collect();
        for (idx, n) in &h.buckets {
            *merged.entry(*idx).or_insert(0) += n;
        }
        entry.buckets = merged.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlacep_obs::HistogramSnapshot;

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x".into(), 2);
        a.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 3,
                sum: 30,
                buckets: vec![(0, 1), (2, 2)],
                exemplar: None,
            },
        );
        let mut b = MetricsSnapshot::default();
        b.counters.insert("x".into(), 5);
        b.counters.insert("y".into(), 1);
        b.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 1,
                sum: 7,
                buckets: vec![(2, 1)],
                exemplar: None,
            },
        );
        merge_into(&mut a, &b);
        assert_eq!(a.counters["x"], 7);
        assert_eq!(a.counters["y"], 1);
        let h = &a.histograms["h"];
        assert_eq!((h.count, h.sum), (4, 37));
        assert_eq!(h.buckets, vec![(0, 1), (2, 3)]);
    }
}
