//! [`ShardedDlacep`]: a keyed multi-shard fleet of durable streaming
//! runtimes behind one ingest front door.
//!
//! ## Partitioning model
//!
//! Every inbound event is stamped with a fleet-global sequence number `g`
//! (1-based arrival order), keyed by the configured
//! [`KeyExtractor`], and routed to shard `shard_of(seed, key, n)`. Within a
//! shard, each distinct key owns its own [`StreamingDlacep`] — keys never
//! share assembler windows, so the set of per-key results is independent of
//! how keys are packed onto shards. That is the invariant the
//! `shard_determinism` battery pins: the merged fleet output is bitwise
//! identical across shard counts.
//!
//! ## Durability model
//!
//! Each shard owns one [`Store`] (directory `shard-{idx:04}/` under the
//! fleet root when backed by `DirStore`s) holding its own WAL, checkpoint
//! chain, and fleet manifest. An event is WAL-logged **before** its
//! runtime sees it, as `g | key | offer` where `offer` is the exact
//! [`dlacep_core::encode_offer`] encoding of the durable single-runtime
//! tier. Checkpoints snapshot every key runtime of the shard plus the
//! shard's fleet *high-water mark* — the last global sequence number whose
//! effects the shard has durably applied.
//!
//! ## Recovery model
//!
//! [`ShardedDlacep::recover`] restores every shard independently
//! (checkpoint, then WAL suffix), then reports
//! `resume_seq = min(high_water) + 1`: the fleet position from which the
//! source must re-offer events. Re-offered events that a given shard
//! already applied (`g <= high_water`) are counted as `refeed_skipped` and
//! dropped *for that shard only*, so shards that crashed at different
//! durability horizons converge without double-applying. Recovery refuses
//! stores whose manifest disagrees with the fleet configuration (shard
//! count, hash seed, hash revision, partitioner, shard order) — a
//! mis-assembled fleet would silently misroute keys otherwise.
//!
//! ## Model registry
//!
//! Retrained models accepted by a key runtime are *drained* (and counted)
//! at checkpoint time rather than published to the per-shard model
//! registry: the registry namespace is flat per store, and independent key
//! runtimes produce colliding version numbers. Lineage survives anyway —
//! each key's active model travels inside its runtime checkpoint and is
//! redeployed on restore.

use crate::hash::{shard_of, DEFAULT_HASH_SEED, HASH_REVISION};
use dlacep_cep::Pattern;
use dlacep_core::{
    decode_offer, encode_checkpoint, encode_offer, Filter, ModelTrainer, RuntimeConfig,
    RuntimeError, StreamingDlacep,
};
use dlacep_dur::codec::{CodecError, Decoder, Encoder};
use dlacep_dur::manifest::{load_manifest, write_manifest, FleetManifest, ManifestError};
use dlacep_dur::{
    load_latest_checkpoint, prune_checkpoints, write_checkpoint, Store, Wal, WalConfig, WalError,
};
use dlacep_events::{AttrValue, KeyExtractor, PrimitiveEvent, TypeId};
use dlacep_obs::{json_field, json_string, Registry, Tracer, DEFAULT_TRACE_CAPACITY};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use crate::report::{FleetReport, KeyReport, ShardSummary};

/// Environment variable read by [`FleetConfig::default`] for the shard
/// count.
pub const SHARDS_ENV: &str = "DLACEP_SHARDS";

/// Shard count from `DLACEP_SHARDS`, or `default` when unset/invalid.
pub fn shards_from_env(default: u32) -> u32 {
    std::env::var(SHARDS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Fleet-level configuration. Everything that decides *routing* (shard
/// count, hash seed, key extractor) is fingerprinted into each shard's
/// manifest; recovery under a different fingerprint is refused.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of shards (≥ 1).
    pub shards: u32,
    /// Seed of the partitioning hash ([`crate::hash::fx_hash64`]).
    pub hash_seed: u64,
    /// How an event's partition key is derived.
    pub key_extractor: KeyExtractor,
    /// Configuration applied to every per-key runtime.
    pub runtime: RuntimeConfig,
    /// Per-shard WAL tuning.
    pub wal: WalConfig,
    /// Fleet-level durability cadence: sync every N offered events
    /// (0 = only explicit [`ShardedDlacep::sync`] calls).
    pub sync_every_events: u64,
    /// Fleet-level checkpoint cadence in offered events (0 = only explicit
    /// [`ShardedDlacep::checkpoint_now`] calls).
    pub checkpoint_every_events: u64,
    /// Checkpoints retained per shard after a new one lands.
    pub keep_checkpoints: usize,
    /// Attach a metrics [`Registry`] to every key runtime.
    pub obs: bool,
    /// Journal capacity for per-key registries when `obs` is on.
    pub journal_capacity: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: shards_from_env(4),
            hash_seed: DEFAULT_HASH_SEED,
            key_extractor: KeyExtractor::ByType,
            runtime: RuntimeConfig::default(),
            wal: WalConfig {
                segment_max_bytes: 64 * 1024,
                // The fleet syncs on its own cadence; per-append fsyncs
                // inside the WAL would double the fsync rate for nothing.
                sync_every: 0,
            },
            sync_every_events: 32,
            checkpoint_every_events: 256,
            keep_checkpoints: 2,
            obs: false,
            journal_capacity: 256,
        }
    }
}

/// Builds the filter for a freshly created key runtime. Must be
/// deterministic: recovery re-creates filters through it.
pub type FilterFactory<F> = Arc<dyn Fn() -> F + Send + Sync>;

/// Builds the (optional) trainer for a key runtime. Returning `None`
/// disables retraining even when `runtime.retrain` is configured.
pub type TrainerFactory<F> = Arc<dyn Fn() -> Option<Box<dyn ModelTrainer<F>>> + Send + Sync>;

/// Fleet failures.
#[derive(Debug)]
pub enum FleetError {
    /// A shard store failed.
    Io(io::Error),
    /// A shard WAL failed or is corrupt.
    Wal(WalError),
    /// A persisted fleet record did not decode.
    Corrupt(CodecError),
    /// A key runtime rejected an event or a checkpoint.
    Runtime(RuntimeError),
    /// A shard manifest is unreadable.
    Manifest(ManifestError),
    /// The on-disk fleet is incompatible with this configuration
    /// (shard count / hash seed / hash revision / partitioner / shard
    /// order mismatch, or data without a manifest).
    Refused(String),
    /// The fleet configuration itself is invalid.
    Config(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet i/o: {e}"),
            FleetError::Wal(e) => write!(f, "fleet wal: {e}"),
            FleetError::Corrupt(e) => write!(f, "fleet record: {e}"),
            FleetError::Runtime(e) => write!(f, "fleet runtime: {e}"),
            FleetError::Manifest(e) => write!(f, "fleet manifest: {e}"),
            FleetError::Refused(msg) => write!(f, "fleet recovery refused: {msg}"),
            FleetError::Config(msg) => write!(f, "fleet config: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<io::Error> for FleetError {
    fn from(e: io::Error) -> Self {
        FleetError::Io(e)
    }
}
impl From<WalError> for FleetError {
    fn from(e: WalError) -> Self {
        FleetError::Wal(e)
    }
}
impl From<CodecError> for FleetError {
    fn from(e: CodecError) -> Self {
        FleetError::Corrupt(e)
    }
}
impl From<RuntimeError> for FleetError {
    fn from(e: RuntimeError) -> Self {
        FleetError::Runtime(e)
    }
}
impl From<ManifestError> for FleetError {
    fn from(e: ManifestError) -> Self {
        FleetError::Manifest(e)
    }
}

/// Per-shard durability/routing counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events routed to (and applied by) this shard.
    pub events_routed: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// Explicit WAL syncs (fleet cadence + manual).
    pub wal_syncs: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Re-offered events dropped as already applied.
    pub refeed_skipped: u64,
    /// Accepted retrained models drained at checkpoints (see the
    /// [module docs](self) on the registry decision).
    pub models_drained: u64,
}

/// Live fleet counters (also what a wire `Flush` reports back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Events offered to the fleet (including re-feeds).
    pub offered: u64,
    /// Re-offered events dropped as already applied, fleet-wide.
    pub refeed_skipped: u64,
    /// Distinct keys with a live runtime.
    pub keys: u64,
    /// Matches emitted so far across all keys.
    pub matches: u64,
    /// `min(high_water)` across shards: the fleet-global sequence number
    /// at or below which no future recovery will ever ask the source to
    /// re-offer (a crash resumes from `min(high_water) + 1`, and
    /// high-water marks only advance). After a sync barrier this is the
    /// source's safe prune horizon for its send buffer.
    pub prune_horizon: u64,
}

/// What recovery found in one shard.
#[derive(Clone, Debug)]
pub struct ShardRecovery {
    /// Shard index.
    pub index: u32,
    /// Sequence of the checkpoint restored from, if any.
    pub checkpoint_seq: Option<u64>,
    /// Key runtimes restored from the checkpoint.
    pub keys_restored: u64,
    /// WAL records replayed after the checkpoint.
    pub wal_replayed: u64,
    /// The shard store was empty: initialized fresh.
    pub fresh: bool,
    /// Fleet high-water mark after restore + replay.
    pub high_water: u64,
}

/// Fleet-level recovery report.
#[derive(Clone, Debug)]
pub struct FleetRecoveryReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardRecovery>,
    /// First fleet-global sequence number (1-based) the source must
    /// re-offer. Events before it are durable in every shard.
    pub resume_seq: u64,
}

struct Shard<F: Filter, S: Store> {
    store: S,
    wal: Wal,
    /// Last fleet-global sequence number durably applied by this shard.
    /// 0 = none; global sequence numbers start at 1.
    high_water: u64,
    runtimes: BTreeMap<u64, StreamingDlacep<F>>,
    stats: ShardStats,
}

/// A keyed multi-shard fleet of durable DLACEP runtimes. See the
/// [module docs](self) for the partitioning / durability / recovery model.
pub struct ShardedDlacep<F: Filter, S: Store> {
    pattern: Pattern,
    cfg: FleetConfig,
    mk_filter: FilterFactory<F>,
    mk_trainer: TrainerFactory<F>,
    shards: Vec<Shard<F, S>>,
    /// Fleet-global sequence number of the last offered event.
    next_global: u64,
    since_sync: u64,
    since_ckpt: u64,
    /// One trace ring for the whole fleet: every per-key registry shares
    /// it, and traces are sampled on the fleet-global sequence `g`, so
    /// trace ids are unique and the 1-in-N sample is fleet-wide.
    tracer: Tracer,
}

impl<F: Filter, S: Store> ShardedDlacep<F, S> {
    /// Start a fresh fleet over `stores` (one per shard, all empty).
    /// Writes each shard's manifest immediately so even a fleet that
    /// crashes before its first checkpoint recovers with its routing
    /// fingerprint intact.
    pub fn create(
        pattern: Pattern,
        cfg: FleetConfig,
        mk_filter: FilterFactory<F>,
        mk_trainer: TrainerFactory<F>,
        stores: Vec<S>,
    ) -> Result<Self, FleetError> {
        Self::validate(&cfg, &stores)?;
        for (i, store) in stores.iter().enumerate() {
            if !store.list()?.is_empty() {
                return Err(FleetError::Refused(format!(
                    "shard {i} store is not empty; use recover() for existing fleets"
                )));
            }
        }
        let mut shards = Vec::with_capacity(stores.len());
        for (i, mut store) in stores.into_iter().enumerate() {
            write_manifest(&mut store, &Self::manifest(&cfg, i as u32))?;
            let (wal, _) = Wal::open(&mut store, cfg.wal)?;
            shards.push(Shard {
                store,
                wal,
                high_water: 0,
                runtimes: BTreeMap::new(),
                stats: ShardStats::default(),
            });
        }
        Ok(ShardedDlacep {
            pattern,
            cfg,
            mk_filter,
            mk_trainer,
            shards,
            next_global: 0,
            since_sync: 0,
            since_ckpt: 0,
            tracer: Tracer::from_env(DEFAULT_TRACE_CAPACITY),
        })
    }

    /// Recover a fleet from `stores`. Every shard is restored from its
    /// latest checkpoint plus its WAL suffix; empty stores are initialized
    /// fresh; non-empty stores without a matching manifest are refused.
    ///
    /// After recovery the source must re-offer its events starting at
    /// [`FleetRecoveryReport::resume_seq`] (in the original order) —
    /// shards individually skip what they already applied.
    pub fn recover(
        pattern: Pattern,
        cfg: FleetConfig,
        mk_filter: FilterFactory<F>,
        mk_trainer: TrainerFactory<F>,
        stores: Vec<S>,
    ) -> Result<(Self, FleetRecoveryReport), FleetError> {
        Self::validate(&cfg, &stores)?;
        let mut fleet = ShardedDlacep {
            pattern,
            cfg,
            mk_filter,
            mk_trainer,
            shards: Vec::with_capacity(stores.len()),
            next_global: 0,
            since_sync: 0,
            since_ckpt: 0,
            tracer: Tracer::from_env(DEFAULT_TRACE_CAPACITY),
        };
        let mut reports = Vec::with_capacity(stores.len());
        for (i, mut store) in stores.into_iter().enumerate() {
            let index = i as u32;
            let expected = Self::manifest(&fleet.cfg, index);
            let fresh = match load_manifest(&store)? {
                Some(found) => {
                    Self::check_manifest(index, &expected, &found)?;
                    false
                }
                None => {
                    // A crash during the very first manifest publish can
                    // leave only the synced-but-unrenamed tmp behind; that
                    // store never held fleet data, so it is still fresh.
                    let names = store.list()?;
                    let stale_tmp = format!("{}.tmp", dlacep_dur::manifest::MANIFEST_NAME);
                    if !names.iter().all(|n| *n == stale_tmp) {
                        return Err(FleetError::Refused(format!(
                            "shard {index} store has data but no fleet manifest"
                        )));
                    }
                    if !names.is_empty() {
                        store.remove(&stale_tmp)?;
                    }
                    write_manifest(&mut store, &expected)?;
                    true
                }
            };
            let (wal, _) = Wal::open(&mut store, fleet.cfg.wal)?;
            let mut shard = Shard {
                store,
                wal,
                high_water: 0,
                runtimes: BTreeMap::new(),
                stats: ShardStats::default(),
            };
            let scan = load_latest_checkpoint(&shard.store)?;
            let mut report = ShardRecovery {
                index,
                checkpoint_seq: None,
                keys_restored: 0,
                wal_replayed: 0,
                fresh,
                high_water: 0,
            };
            let mut replay_from = 0;
            if let Some((seq, payload)) = scan.latest {
                let ckpt = decode_shard_checkpoint(&payload)?;
                shard.high_water = ckpt.high_water;
                for (key, rt_ckpt) in ckpt.keys {
                    let rt_ckpt = dlacep_core::decode_checkpoint(&rt_ckpt)?;
                    shard.runtimes.insert(key, fleet.restore_runtime(rt_ckpt)?);
                    report.keys_restored += 1;
                }
                report.checkpoint_seq = Some(seq);
                replay_from = seq;
            }
            for (_, payload) in Wal::replay(&shard.store, replay_from)? {
                let (g, key, type_id, ts, attrs) = decode_offer_record(&payload)?;
                if g <= shard.high_water {
                    continue; // covered by the checkpoint
                }
                let rt = match shard.runtimes.entry(key) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(fleet.fresh_runtime()?)
                    }
                };
                match rt.ingest_traced(type_id, ts, attrs, Some(g)) {
                    Ok(_) | Err(RuntimeError::Stream(_)) => {}
                    Err(e) => return Err(e.into()),
                }
                shard.high_water = g;
                shard.stats.events_routed += 1;
                report.wal_replayed += 1;
            }
            report.high_water = shard.high_water;
            reports.push(report);
            fleet.shards.push(shard);
        }
        // The fleet resumes counting from the slowest shard: every shard
        // has durably applied everything at or below min(high_water), and
        // faster shards skip re-fed duplicates individually.
        let resume_seq = fleet.shards.iter().map(|s| s.high_water).min().unwrap_or(0) + 1;
        fleet.next_global = resume_seq - 1;
        Ok((
            fleet,
            FleetRecoveryReport {
                shards: reports,
                resume_seq,
            },
        ))
    }

    fn validate(cfg: &FleetConfig, stores: &[S]) -> Result<(), FleetError> {
        if cfg.shards == 0 {
            return Err(FleetError::Config(
                "a fleet needs at least one shard".into(),
            ));
        }
        if stores.len() != cfg.shards as usize {
            return Err(FleetError::Config(format!(
                "{} stores for {} shards",
                stores.len(),
                cfg.shards
            )));
        }
        Ok(())
    }

    fn manifest(cfg: &FleetConfig, index: u32) -> FleetManifest {
        FleetManifest {
            shard_count: cfg.shards,
            shard_index: index,
            hash_seed: cfg.hash_seed,
            hash_revision: HASH_REVISION,
            partitioner_tag: cfg.key_extractor.tag(),
        }
    }

    fn check_manifest(
        index: u32,
        expected: &FleetManifest,
        found: &FleetManifest,
    ) -> Result<(), FleetError> {
        let refuse = |what: &str, exp: u64, got: u64| {
            Err(FleetError::Refused(format!(
                "shard {index}: manifest {what} mismatch (fleet config {exp:#x}, on disk {got:#x}); \
                 events would be routed differently than when this store was written"
            )))
        };
        if found.shard_count != expected.shard_count {
            return refuse(
                "shard count",
                expected.shard_count.into(),
                found.shard_count.into(),
            );
        }
        if found.shard_index != expected.shard_index {
            return refuse(
                "shard index",
                expected.shard_index.into(),
                found.shard_index.into(),
            );
        }
        if found.hash_seed != expected.hash_seed {
            return refuse("hash seed", expected.hash_seed, found.hash_seed);
        }
        if found.hash_revision != expected.hash_revision {
            return refuse(
                "hash revision",
                expected.hash_revision.into(),
                found.hash_revision.into(),
            );
        }
        if found.partitioner_tag != expected.partitioner_tag {
            return refuse(
                "partitioner",
                expected.partitioner_tag.into(),
                found.partitioner_tag.into(),
            );
        }
        Ok(())
    }

    fn build_runtime_builder(&self) -> dlacep_core::StreamingBuilder<F> {
        // Retrain config rides inside RuntimeConfig but the trainer itself
        // comes from the factory; strip the config when no trainer exists
        // so construction does not reject the combination.
        let trainer = (self.mk_trainer)();
        let mut rt_cfg = self.cfg.runtime;
        let retrain = rt_cfg.retrain.take();
        let mut b =
            StreamingDlacep::builder(self.pattern.clone(), (self.mk_filter)()).config(rt_cfg);
        if let (Some(rc), Some(tr)) = (retrain, trainer) {
            b = b.retrain(rc, tr);
        }
        b
    }

    fn fresh_runtime(&self) -> Result<StreamingDlacep<F>, FleetError> {
        Ok(self.obs_builder().build()?)
    }

    fn restore_runtime(
        &self,
        ckpt: dlacep_core::RuntimeCheckpoint,
    ) -> Result<StreamingDlacep<F>, FleetError> {
        Ok(self.obs_builder().restore(ckpt)?)
    }

    fn obs_builder(&self) -> dlacep_core::StreamingBuilder<F> {
        let mut b = self.build_runtime_builder();
        if self.cfg.obs {
            b = b.obs(Arc::new(Registry::with_tracer(
                self.cfg.journal_capacity,
                self.tracer.clone(),
            )));
        }
        b
    }

    /// Offer one event to the fleet. Returns the event's fleet-global
    /// sequence number. During post-recovery re-feed, events a shard
    /// already applied are skipped (still consuming their sequence
    /// number, so re-feeds stay aligned).
    pub fn ingest(
        &mut self,
        type_id: TypeId,
        ts: u64,
        attrs: Vec<AttrValue>,
    ) -> Result<u64, FleetError> {
        let g = self.next_global + 1;
        self.next_global = g;
        let key = self.cfg.key_extractor.key_of(type_id, &attrs);
        let si = shard_of(self.cfg.hash_seed, key, self.cfg.shards) as usize;
        if g <= self.shards[si].high_water {
            self.shards[si].stats.refeed_skipped += 1;
        } else {
            let record = encode_offer_record(g, key, type_id, ts, &attrs);
            {
                let shard = &mut self.shards[si];
                shard.wal.append(&mut shard.store, &record)?;
                shard.stats.wal_appends += 1;
            }
            if !self.shards[si].runtimes.contains_key(&key) {
                let rt = self.fresh_runtime()?;
                self.shards[si].runtimes.insert(key, rt);
            }
            let shard = &mut self.shards[si];
            let rt = shard.runtimes.get_mut(&key).expect("inserted above");
            match rt.ingest_traced(type_id, ts, attrs, Some(g)) {
                // Ordering rejections are the runtime's own admission
                // decision; deterministic, so replay makes the same one.
                Ok(_) | Err(RuntimeError::Stream(_)) => {}
                Err(e) => return Err(e.into()),
            }
            shard.high_water = g;
            shard.stats.events_routed += 1;
        }
        self.tick()?;
        Ok(g)
    }

    /// Offer a batch. Routing, logging, and high-water advancement happen
    /// per event in arrival order; runtime application is batched per key
    /// (in key order per shard), which admits pooled window marking while
    /// producing the same per-key event order as serial ingest.
    pub fn ingest_batch(&mut self, events: &[PrimitiveEvent]) -> Result<(), FleetError> {
        type Bucket = (Vec<PrimitiveEvent>, Vec<u64>);
        let mut buckets: BTreeMap<(usize, u64), Bucket> = BTreeMap::new();
        for ev in events {
            let g = self.next_global + 1;
            self.next_global = g;
            let key = self.cfg.key_extractor.key_of(ev.type_id, &ev.attrs);
            let si = shard_of(self.cfg.hash_seed, key, self.cfg.shards) as usize;
            let shard = &mut self.shards[si];
            if g <= shard.high_water {
                shard.stats.refeed_skipped += 1;
                continue;
            }
            let record = encode_offer_record(g, key, ev.type_id, ev.ts.0, &ev.attrs);
            shard.wal.append(&mut shard.store, &record)?;
            shard.stats.wal_appends += 1;
            shard.high_water = g;
            shard.stats.events_routed += 1;
            let bucket = buckets.entry((si, key)).or_default();
            bucket.0.push(ev.clone());
            bucket.1.push(g);
        }
        for ((si, key), (batch, seqs)) in buckets {
            if !self.shards[si].runtimes.contains_key(&key) {
                let rt = self.fresh_runtime()?;
                self.shards[si].runtimes.insert(key, rt);
            }
            let rt = self.shards[si]
                .runtimes
                .get_mut(&key)
                .expect("inserted above");
            match rt.ingest_batch_traced(&batch, Some(&seqs)) {
                Ok(()) | Err(RuntimeError::Stream(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.since_sync += events.len() as u64;
        self.since_ckpt += events.len() as u64;
        self.cadence()
    }

    fn tick(&mut self) -> Result<(), FleetError> {
        self.since_sync += 1;
        self.since_ckpt += 1;
        self.cadence()
    }

    fn cadence(&mut self) -> Result<(), FleetError> {
        if self.cfg.checkpoint_every_events > 0
            && self.since_ckpt >= self.cfg.checkpoint_every_events
        {
            self.checkpoint_now()?;
        } else if self.cfg.sync_every_events > 0 && self.since_sync >= self.cfg.sync_every_events {
            self.sync()?;
        }
        Ok(())
    }

    /// Fsync every shard's WAL.
    pub fn sync(&mut self) -> Result<(), FleetError> {
        for shard in &mut self.shards {
            shard.wal.sync(&mut shard.store)?;
            shard.stats.wal_syncs += 1;
        }
        self.since_sync = 0;
        Ok(())
    }

    /// Checkpoint every shard: drain accepted models, sync the WALs, then
    /// write each shard's checkpoint stamped with the current fleet
    /// position, prune old checkpoints, and drop covered WAL segments.
    /// A crash anywhere inside leaves the previous checkpoint + WAL
    /// suffix fully covering.
    pub fn checkpoint_now(&mut self) -> Result<(), FleetError> {
        let g = self.next_global;
        for shard in &mut self.shards {
            for rt in shard.runtimes.values_mut() {
                shard.stats.models_drained += rt.take_pending_models().len() as u64;
            }
            shard.wal.sync(&mut shard.store)?;
            shard.stats.wal_syncs += 1;
        }
        for shard in &mut self.shards {
            let mut keys = Vec::with_capacity(shard.runtimes.len());
            for (key, rt) in &shard.runtimes {
                keys.push((*key, encode_checkpoint(&rt.checkpoint())));
            }
            let payload = encode_shard_checkpoint(&ShardCheckpoint {
                high_water: g,
                keys,
            });
            let seq = shard.wal.next_seq();
            write_checkpoint(&mut shard.store, seq, &payload)?;
            if let Some(oldest) = prune_checkpoints(&mut shard.store, self.cfg.keep_checkpoints)? {
                shard.wal.prune_below(&mut shard.store, oldest)?;
            }
            shard.high_water = g;
            shard.stats.checkpoints += 1;
        }
        self.since_ckpt = 0;
        self.since_sync = 0;
        Ok(())
    }

    /// `min(high_water)` across shards — see [`FleetStats::prune_horizon`].
    pub fn prune_horizon(&self) -> u64 {
        self.shards.iter().map(|s| s.high_water).min().unwrap_or(0)
    }

    /// Live fleet counters.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            offered: self.next_global,
            prune_horizon: self.prune_horizon(),
            ..FleetStats::default()
        };
        for shard in &self.shards {
            s.refeed_skipped += shard.stats.refeed_skipped;
            s.keys += shard.runtimes.len() as u64;
            for rt in shard.runtimes.values() {
                s.matches += rt.matches_so_far().len() as u64;
            }
        }
        s
    }

    /// Per-shard counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Last offered fleet-global sequence number.
    pub fn position(&self) -> u64 {
        self.next_global
    }

    /// A cloneable handle on the fleet-wide tracer (disabled unless
    /// `DLACEP_TRACE_SAMPLE` was set when the fleet was built).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Replace the fleet-wide tracer. Call right after
    /// [`create`](Self::create), before any event is offered: key runtimes
    /// capture the tracer when they are first built, so a later swap only
    /// reaches keys that have not appeared yet.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// One live Prometheus scrape for the whole fleet, without finishing
    /// it: each shard's `serve_*` durability counters plus every hosted
    /// key runtime's live metrics summed into a `{shard="i"}`-labeled
    /// series (the runtime portion requires `obs: true`).
    pub fn render_live_prometheus(&self) -> String {
        let labeled: Vec<(String, dlacep_obs::MetricsSnapshot)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let mut snap = dlacep_obs::MetricsSnapshot::default();
                let c = &mut snap.counters;
                c.insert("serve_events_routed".into(), shard.stats.events_routed);
                c.insert("serve_wal_appends".into(), shard.stats.wal_appends);
                c.insert("serve_wal_syncs".into(), shard.stats.wal_syncs);
                c.insert("serve_checkpoints".into(), shard.stats.checkpoints);
                c.insert("serve_refeed_skipped".into(), shard.stats.refeed_skipped);
                c.insert("serve_models_drained".into(), shard.stats.models_drained);
                c.insert("serve_keys".into(), shard.runtimes.len() as u64);
                for rt in shard.runtimes.values() {
                    if let Some(obs) = rt.obs_snapshot() {
                        crate::report::merge_into(&mut snap, &obs);
                    }
                }
                (i.to_string(), snap)
            })
            .collect();
        dlacep_obs::render_prometheus_sharded("shard", &labeled)
    }

    /// Fleet liveness as one JSON document: the fleet position, trace
    /// sampling rate, and per-shard key counts, durability counters,
    /// high-water lag, and runtime-mode census.
    pub fn healthz_json(&self) -> String {
        let mut out = format!(
            "{{\"status\":\"ok\",\"position\":{},\"trace_sample_every\":{},\"shards\":[",
            self.next_global,
            self.tracer.sample_every()
        );
        for (si, shard) in self.shards.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let mut modes: BTreeMap<&'static str, u64> = BTreeMap::new();
            let mut matches = 0u64;
            for rt in shard.runtimes.values() {
                let mode = match rt.mode() {
                    dlacep_core::RuntimeMode::Filtering => "filtering",
                    dlacep_core::RuntimeMode::DegradedExact => "degraded_exact",
                };
                *modes.entry(mode).or_insert(0) += 1;
                matches += rt.matches_so_far().len() as u64;
            }
            out.push_str(&format!(
                "{{\"shard\":{si},\"keys\":{},\"high_water\":{},\"lag\":{},\"matches\":{matches},\
                 \"events_routed\":{},\"wal_appends\":{},\"wal_syncs\":{},\"checkpoints\":{},\
                 \"refeed_skipped\":{},\"models_drained\":{},\"modes\":{{",
                shard.runtimes.len(),
                shard.high_water,
                self.next_global - shard.high_water.min(self.next_global),
                shard.stats.events_routed,
                shard.stats.wal_appends,
                shard.stats.wal_syncs,
                shard.stats.checkpoints,
                shard.stats.refeed_skipped,
                shard.stats.models_drained,
            ));
            for (mi, (mode, n)) in modes.iter().enumerate() {
                if mi > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{mode}\":{n}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// The fleet's sampled trace ring as Chrome trace-event JSON — load
    /// the body in `chrome://tracing` or Perfetto.
    pub fn traces_json(&self) -> String {
        self.tracer.snapshot().chrome_trace_json()
    }

    /// The tail of every key runtime's journal as one JSON array, each
    /// entry stamped with its hosting shard and key. `max_per_key` bounds
    /// how many of each key's most recent entries are included. Requires
    /// `obs: true`; an un-instrumented fleet yields `[]`.
    pub fn journal_json(&self, max_per_key: usize) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for (si, shard) in self.shards.iter().enumerate() {
            for (key, rt) in &shard.runtimes {
                let Some(snap) = rt.obs_snapshot() else {
                    continue;
                };
                let entries = &snap.journal.entries;
                let skip = entries.len().saturating_sub(max_per_key);
                for e in &entries[skip..] {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!(
                        "{{\"shard\":{si},\"key\":{key},\"seq\":{},\"at_nanos\":{},\"kind\":{},\"fields\":{{",
                        e.seq,
                        e.at_nanos,
                        json_string(&e.kind)
                    ));
                    for (fi, (name, value)) in e.fields.iter().enumerate() {
                        if fi > 0 {
                            out.push(',');
                        }
                        out.push_str(&json_string(name));
                        out.push(':');
                        out.push_str(&json_field(value));
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push(']');
        out
    }

    /// Finish every key runtime (evaluating trailing windows) and merge
    /// the fleet report. Consumes the fleet without a final checkpoint —
    /// call [`checkpoint_now`](Self::checkpoint_now) first to persist.
    pub fn finish(self) -> FleetReport {
        let mut keys = Vec::new();
        let mut shards = Vec::new();
        for (si, shard) in self.shards.into_iter().enumerate() {
            let mut summary = ShardSummary {
                index: si as u32,
                keys: shard.runtimes.len() as u64,
                matches: 0,
                stats: shard.stats,
            };
            for (key, rt) in shard.runtimes {
                let report = rt.finish();
                summary.matches += report.matches.len() as u64;
                keys.push(KeyReport {
                    key,
                    shard: si as u32,
                    report,
                });
            }
            shards.push(summary);
        }
        keys.sort_by_key(|k| k.key);
        FleetReport::new(keys, shards, self.next_global)
    }

    /// Tear down without finishing, returning the shard stores (e.g. the
    /// crashed disk images in a recovery test).
    pub fn into_stores(self) -> Vec<S> {
        self.shards.into_iter().map(|s| s.store).collect()
    }
}

// ---------------------------------------------------------------------------
// Persistent record encodings
// ---------------------------------------------------------------------------

struct ShardCheckpoint {
    high_water: u64,
    keys: Vec<(u64, Vec<u8>)>,
}

fn encode_shard_checkpoint(ckpt: &ShardCheckpoint) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(ckpt.high_water);
    e.put_u64(ckpt.keys.len() as u64);
    for (key, bytes) in &ckpt.keys {
        e.put_u64(*key);
        e.put_u64(bytes.len() as u64);
        e.put_bytes(bytes);
    }
    e.into_bytes()
}

fn decode_shard_checkpoint(payload: &[u8]) -> Result<ShardCheckpoint, CodecError> {
    let mut d = Decoder::new(payload);
    let high_water = d.take_u64()?;
    let n = d.take_u64()? as usize;
    let mut keys = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let key = d.take_u64()?;
        let len = d.take_u64()? as usize;
        keys.push((key, d.take_bytes(len)?.to_vec()));
    }
    d.finish()?;
    Ok(ShardCheckpoint { high_water, keys })
}

/// WAL record: `g | key | offer`, where `offer` is the durable tier's
/// exact offer encoding ([`encode_offer`]).
fn encode_offer_record(g: u64, key: u64, type_id: TypeId, ts: u64, attrs: &[AttrValue]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(g);
    e.put_u64(key);
    e.put_bytes(&encode_offer(type_id, ts, attrs));
    e.into_bytes()
}

fn decode_offer_record(
    payload: &[u8],
) -> Result<(u64, u64, TypeId, u64, Vec<AttrValue>), CodecError> {
    let mut d = Decoder::new(payload);
    let g = d.take_u64()?;
    let key = d.take_u64()?;
    let rest = d.take_bytes(d.remaining())?;
    let (type_id, ts, attrs) = decode_offer(rest)?;
    Ok((g, key, type_id, ts, attrs))
}
