//! The hardened TCP front door speaking the `DMSV` wire protocol.
//!
//! [`WireServer::run`] accepts connections until its [`ShutdownHandle`]
//! is signalled, serving each connection on its own thread as a FIFO of
//! frames feeding the shared [`ServeHandle`]. Ordering *across*
//! connections is whatever the channel interleaving produces — keyed
//! determinism holds per connection, which is the deployment shape the
//! tests pin (one producer per key group).
//!
//! ## Connection lifecycle
//!
//! Every accepted socket gets read/write timeouts
//! ([`ServerConfig::read_timeout`], env `DLACEP_SERVE_READ_TIMEOUT_MS`);
//! the read timeout doubles as the poll tick on which a connection
//! notices shutdown. A connection that stays silent past
//! [`ServerConfig::idle_timeout`] is *reaped* — told why with a
//! best-effort [`WireMsg::Error`], then closed. The
//! [`ServerConfig::max_conns`] cap (env `DLACEP_SERVE_MAX_CONNS`)
//! refuses the (N+1)th connection with a typed [`WireMsg::Error`]
//! instead of letting accept backlog grow unbounded.
//!
//! ## Overload shedding
//!
//! When the pump's `queue_depth` crosses
//! [`ServerConfig::shed_high_water`], a connection stops forwarding
//! ingests and replies [`WireMsg::Overloaded`] instead of blocking the
//! socket thread on the bounded channel. Shedding is *sticky per
//! connection*: once one event is shed, every later ingest on that
//! connection is shed too, so the events the fleet applied are always an
//! exact prefix of what the client sent — the invariant the
//! `resume_seq` re-feed protocol needs. The client re-syncs with
//! [`WireMsg::Hello`], which (once the queue has drained below half the
//! high-water mark) clears the shed state and reports the position to
//! re-feed from.
//!
//! ## Graceful shutdown
//!
//! [`ShutdownHandle::signal`] stops the accept loop, lets in-flight
//! connections drain until they go quiet (or
//! [`ServerConfig::drain_deadline`] passes, after which sockets are
//! force-closed — crash-only beyond the deadline), joins every worker,
//! then forces a final `sync()` + `checkpoint()` barrier so nothing
//! acknowledged is lost. [`ShutdownHandle::signal_hard`] is the
//! crash-only variant: no drain, no final barrier — what a `kill -9`
//! would leave behind, for recovery drills.
//!
//! A malformed frame gets a best-effort [`WireMsg::Error`] reply and
//! closes that connection; the fleet and the other connections are
//! unaffected. A fleet error (the pump is poisoned) is likewise
//! diagnosed to the peer before the connection drops, never silently.

use crate::channel::{ServeError, ServeHandle, TeleKind};
use crate::wire::{write_msg, FrameReader, WireError, WireMsg, MAX_WIRE_PAYLOAD};
use dlacep_obs::{FieldValue, Registry};
use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable naming the TCP listen address.
pub const SERVE_ADDR_ENV: &str = "DLACEP_SERVE_ADDR";
/// Environment variable for [`ServerConfig::max_conns`].
pub const MAX_CONNS_ENV: &str = "DLACEP_SERVE_MAX_CONNS";
/// Environment variable for [`ServerConfig::read_timeout`] (milliseconds).
pub const READ_TIMEOUT_ENV: &str = "DLACEP_SERVE_READ_TIMEOUT_MS";
/// Environment variable for [`ServerConfig::idle_timeout`] (milliseconds).
pub const IDLE_TIMEOUT_ENV: &str = "DLACEP_SERVE_IDLE_TIMEOUT_MS";
/// Environment variable for [`ServerConfig::drain_deadline`] (milliseconds).
pub const DRAIN_ENV: &str = "DLACEP_SERVE_DRAIN_MS";
/// Environment variable for [`ServerConfig::shed_high_water`].
pub const SHED_HIGH_WATER_ENV: &str = "DLACEP_SERVE_SHED_HIGH_WATER";
/// Environment variable for [`ServerConfig::shed_retry_after_ms`].
pub const SHED_RETRY_AFTER_ENV: &str = "DLACEP_SERVE_RETRY_AFTER_MS";

/// Listen address from `DLACEP_SERVE_ADDR`, or `default` when unset/empty.
pub fn serve_addr_from_env(default: &str) -> String {
    std::env::var(SERVE_ADDR_ENV)
        .ok()
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| default.to_string())
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Front-door tuning. Every knob has an environment override (see the
/// `DLACEP_SERVE_*` constants) read by [`ServerConfig::from_env`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Connections served concurrently; the (N+1)th is refused with a
    /// typed [`WireMsg::Error`]. Default 64.
    pub max_conns: usize,
    /// Socket read/write timeout; also the poll tick on which workers
    /// notice shutdown and accumulate idleness. Default 500 ms.
    pub read_timeout: Duration,
    /// A connection silent for this long is reaped. Default 30 s.
    pub idle_timeout: Duration,
    /// How long graceful shutdown waits for in-flight connections to
    /// drain before force-closing their sockets. Default 5 s.
    pub drain_deadline: Duration,
    /// Pump queue depth at which ingests are shed with
    /// [`WireMsg::Overloaded`] instead of blocking. Keep this *below* the
    /// pump channel capacity or the gate never fires before the channel
    /// blocks. `0` disables shedding (pure backpressure). Default 1024.
    pub shed_high_water: u64,
    /// Back-off hint carried in [`WireMsg::Overloaded`]. Default 50 ms.
    pub shed_retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 64,
            read_timeout: Duration::from_millis(500),
            idle_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            shed_high_water: 1024,
            shed_retry_after_ms: 50,
        }
    }
}

impl ServerConfig {
    /// Defaults with every `DLACEP_SERVE_*` environment override applied.
    pub fn from_env() -> Self {
        let d = ServerConfig::default();
        ServerConfig {
            max_conns: env_u64(MAX_CONNS_ENV, d.max_conns as u64).max(1) as usize,
            read_timeout: Duration::from_millis(
                env_u64(READ_TIMEOUT_ENV, d.read_timeout.as_millis() as u64).max(1),
            ),
            idle_timeout: Duration::from_millis(env_u64(
                IDLE_TIMEOUT_ENV,
                d.idle_timeout.as_millis() as u64,
            )),
            drain_deadline: Duration::from_millis(env_u64(
                DRAIN_ENV,
                d.drain_deadline.as_millis() as u64,
            )),
            shed_high_water: env_u64(SHED_HIGH_WATER_ENV, d.shed_high_water),
            shed_retry_after_ms: env_u64(SHED_RETRY_AFTER_ENV, d.shed_retry_after_ms),
        }
    }
}

// ---------------------------------------------------------------------------
// Shutdown plumbing
// ---------------------------------------------------------------------------

struct ShutdownState {
    stop: AtomicBool,
    hard: AtomicBool,
    addr: SocketAddr,
}

/// Cloneable signal that stops a running [`WireServer`]. Obtained from
/// [`WireServer::shutdown_handle`] (or [`RunningServer::shutdown_handle`]).
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ShutdownState>,
}

impl ShutdownHandle {
    /// Begin graceful shutdown: stop accepting, drain in-flight
    /// connections under the deadline, run the final sync + checkpoint
    /// barrier. Idempotent.
    pub fn signal(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
        self.poke();
    }

    /// Crash-only shutdown: stop accepting, force-close every connection
    /// immediately, skip the final durability barrier. What survives is
    /// exactly what the fleet's own cadence already made durable — the
    /// recovery drill path.
    pub fn signal_hard(&self) {
        self.state.hard.store(true, Ordering::SeqCst);
        self.signal();
    }

    /// Whether shutdown has been requested.
    pub fn is_signalled(&self) -> bool {
        self.state.stop.load(Ordering::SeqCst)
    }

    fn is_hard(&self) -> bool {
        self.state.hard.load(Ordering::SeqCst)
    }

    /// Wake the accept loop so it observes the stop flag: accept(2) has no
    /// timeout, so we connect-and-drop a throwaway socket to it.
    fn poke(&self) {
        if let Ok(stream) = TcpStream::connect(self.state.addr) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

// ---------------------------------------------------------------------------
// Connection table (drain bookkeeping)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ConnTable {
    inner: Mutex<HashMap<u64, TcpStream>>,
    emptied: Condvar,
}

impl ConnTable {
    fn active(&self) -> usize {
        self.inner.lock().expect("conn table").len()
    }

    fn insert(&self, id: u64, stream: TcpStream) {
        self.inner.lock().expect("conn table").insert(id, stream);
    }

    fn remove(&self, id: u64) {
        let mut t = self.inner.lock().expect("conn table");
        t.remove(&id);
        if t.is_empty() {
            self.emptied.notify_all();
        }
    }

    /// Wait until no connections remain or `deadline` passes. Returns
    /// whether the table emptied in time.
    fn wait_empty_until(&self, deadline: Instant) -> bool {
        let mut t = self.inner.lock().expect("conn table");
        while !t.is_empty() {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, timeout) = self.emptied.wait_timeout(t, left).expect("conn table wait");
            t = guard;
            if timeout.timed_out() && !t.is_empty() {
                return false;
            }
        }
        true
    }

    /// Force-close every remaining socket (both directions), unblocking
    /// its worker. Returns how many were cut.
    fn force_close_all(&self) -> u64 {
        let t = self.inner.lock().expect("conn table");
        for stream in t.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        t.len() as u64
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// What a completed [`WireServer::run`] observed.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Connections accepted and served.
    pub conns_accepted: u64,
    /// Connections refused at the [`ServerConfig::max_conns`] cap.
    pub conns_refused: u64,
    /// In-flight connections still open when the drain deadline passed
    /// (force-closed), or cut immediately by a hard shutdown.
    pub conns_forced: u64,
    /// Whether every connection drained before the deadline (vacuously
    /// true for a hard shutdown, which does not drain).
    pub drained: bool,
    /// Whether this was a hard (crash-only) shutdown.
    pub hard: bool,
    /// Error from the final sync + checkpoint barrier, if it failed (or
    /// `None` for a hard shutdown, which skips the barrier).
    pub final_barrier_error: Option<String>,
}

/// Accept loop over a bound listener, forwarding frames into a fleet's
/// [`ServeHandle`]. See the [module docs](self) for the lifecycle,
/// shedding, and shutdown model.
pub struct WireServer {
    listener: TcpListener,
    handle: ServeHandle,
    cfg: ServerConfig,
    shutdown: ShutdownHandle,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) with
    /// [`ServerConfig::from_env`].
    pub fn bind(addr: impl ToSocketAddrs, handle: ServeHandle) -> io::Result<WireServer> {
        Self::bind_with(addr, handle, ServerConfig::from_env())
    }

    /// Bind with an explicit configuration.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        handle: ServeHandle,
        cfg: ServerConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(WireServer {
            listener,
            handle,
            cfg,
            shutdown: ShutdownHandle {
                state: Arc::new(ShutdownState {
                    stop: AtomicBool::new(false),
                    hard: AtomicBool::new(false),
                    addr: local,
                }),
            },
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server (cloneable; wire it to your signal
    /// handler of choice).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Serve on a background thread, returning a [`RunningServer`] that
    /// owns the join handle.
    pub fn spawn(self) -> io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_handle();
        let thread = std::thread::spawn(move || self.run());
        Ok(RunningServer {
            addr,
            shutdown,
            thread,
        })
    }

    /// Accept and serve connections until the [`ShutdownHandle`] is
    /// signalled, then drain, join, and run the final durability barrier.
    /// Blocks the calling thread for the server's whole life.
    pub fn run(self) -> io::Result<ServerReport> {
        let WireServer {
            listener,
            handle,
            cfg,
            shutdown,
        } = self;
        let obs = Arc::clone(handle.obs());
        // Register every front-door series up front so scrapes expose a
        // zero-valued counter instead of a missing one.
        for name in [
            "serve_conn_accepted",
            "serve_conn_refused",
            "serve_conn_closed",
            "serve_conn_errors",
            "serve_conn_reaped",
            "serve_conn_forced",
            "serve_shed_enters",
            "serve_shed_events",
            "serve_tele_truncated",
        ] {
            obs.counter(name).add(0);
        }
        let conns = Arc::new(ConnTable::default());
        let next_id = AtomicU64::new(0);
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        let mut accepted = 0u64;
        let mut refused = 0u64;

        for conn in listener.incoming() {
            if shutdown.is_signalled() {
                break; // `conn` is the shutdown poke (or a late arrival): drop it.
            }
            let Ok(stream) = conn else { continue };
            if conns.active() >= cfg.max_conns {
                refused += 1;
                obs.counter("serve_conn_refused").inc();
                obs.record(
                    "serve_conn",
                    &[("event", FieldValue::Str("refused".into()))],
                );
                refuse_conn(stream, &cfg);
                continue;
            }
            accepted += 1;
            obs.counter("serve_conn_accepted").inc();
            obs.record(
                "serve_conn",
                &[("event", FieldValue::Str("accepted".into()))],
            );
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                conns.insert(id, clone);
            }
            let worker_handle = handle.clone();
            let worker_conns = Arc::clone(&conns);
            let worker_shutdown = shutdown.clone();
            let worker_obs = Arc::clone(&obs);
            workers.push(std::thread::spawn(move || {
                let outcome =
                    serve_conn(stream, &worker_handle, &cfg, &worker_shutdown, &worker_obs);
                worker_conns.remove(id);
                match outcome {
                    Ok(()) => worker_obs.counter("serve_conn_closed").inc(),
                    Err(_) => {
                        worker_obs.counter("serve_conn_errors").inc();
                        worker_obs
                            .record("serve_conn", &[("event", FieldValue::Str("error".into()))]);
                    }
                }
            }));
            workers.retain(|w| !w.is_finished());
        }
        drop(listener); // stop accepting before draining

        let hard = shutdown.is_hard();
        obs.record(
            "serve_shutdown",
            &[
                ("phase", FieldValue::Str("signalled".into())),
                ("hard", FieldValue::Bool(hard)),
                ("active_conns", FieldValue::U64(conns.active() as u64)),
            ],
        );
        let (drained, forced) = if hard {
            (true, conns.force_close_all())
        } else {
            let deadline = Instant::now() + cfg.drain_deadline;
            let drained = conns.wait_empty_until(deadline);
            let forced = if drained { 0 } else { conns.force_close_all() };
            (drained, forced)
        };
        if forced > 0 {
            obs.counter("serve_conn_forced").add(forced);
        }
        for w in workers {
            let _ = w.join();
        }

        // The final barrier: everything any connection acknowledged is
        // fsynced and checkpointed before run() returns. Skipped on hard
        // shutdown — that path simulates a crash.
        let final_barrier_error = if hard {
            None
        } else {
            handle
                .sync()
                .and_then(|()| handle.checkpoint())
                .err()
                .map(|e| e.to_string())
        };
        obs.record(
            "serve_shutdown",
            &[
                ("phase", FieldValue::Str("complete".into())),
                ("drained", FieldValue::Bool(drained)),
                ("forced_conns", FieldValue::U64(forced)),
                (
                    "barrier_ok",
                    FieldValue::Bool(!hard && final_barrier_error.is_none()),
                ),
            ],
        );
        Ok(ServerReport {
            conns_accepted: accepted,
            conns_refused: refused,
            conns_forced: forced,
            drained,
            hard,
            final_barrier_error,
        })
    }
}

/// A [`WireServer`] running on its own thread.
pub struct RunningServer {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    thread: JoinHandle<io::Result<ServerReport>>,
}

impl RunningServer {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shutdown signal for this server.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Graceful stop: signal, then join, returning the server's report.
    pub fn stop(self) -> io::Result<ServerReport> {
        self.shutdown.signal();
        self.join()
    }

    /// Crash-only stop: cut every connection, skip the final barrier.
    pub fn stop_hard(self) -> io::Result<ServerReport> {
        self.shutdown.signal_hard();
        self.join()
    }

    /// Join without signalling (something else owns the shutdown handle).
    pub fn join(self) -> io::Result<ServerReport> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Best-effort typed refusal for a connection over the cap.
fn refuse_conn(stream: TcpStream, cfg: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(cfg.read_timeout));
    let mut w = BufWriter::new(stream);
    let _ = write_msg(
        &mut w,
        &WireMsg::Error {
            message: "server at max connections; retry later".into(),
        },
    );
    let _ = w.flush();
}

fn serve_err(e: ServeError) -> WireError {
    WireError::Protocol(e.to_string())
}

/// Map a wire telemetry endpoint name to its pump-side document kind.
/// The names mirror the HTTP scrape listener's paths.
pub(crate) fn tele_kind(endpoint: &str) -> Option<TeleKind> {
    match endpoint.trim_start_matches('/') {
        "metrics" => Some(TeleKind::Metrics),
        "healthz" => Some(TeleKind::Healthz),
        "traces" => Some(TeleKind::Traces),
        "journal" => Some(TeleKind::Journal),
        _ => None,
    }
}

/// The marker appended to a clipped telemetry body — grep for it before
/// trusting a `TeleBody` to be the whole document.
pub const TELE_TRUNCATION_MARKER: &str = "# DLACEP-TELE-TRUNCATED";

/// Truncate `body` so the whole `TeleBody` frame stays under the payload
/// cap (UTF-8 boundary-safe; headroom covers the endpoint + frame
/// fields). A clipped body ends with an explicit
/// [`TELE_TRUNCATION_MARKER`] line carrying the dropped byte count, so it
/// cannot be mistaken for a complete document. Returns the body and how
/// many bytes were dropped (0 = intact).
fn clamp_tele_body(mut body: String) -> (String, u64) {
    let cap = (MAX_WIRE_PAYLOAD as usize).saturating_sub(4096);
    if body.len() <= cap {
        return (body, 0);
    }
    let mut cut = cap.saturating_sub(64); // room for the marker line
    while cut > 0 && !body.is_char_boundary(cut) {
        cut -= 1;
    }
    let dropped = (body.len() - cut) as u64;
    body.truncate(cut);
    body.push_str(&format!(
        "\n{TELE_TRUNCATION_MARKER} dropped_bytes={dropped}\n"
    ));
    (body, dropped)
}

/// Whether an i/o error is a socket-timeout poll tick rather than a real
/// transport failure.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn serve_conn(
    stream: TcpStream,
    handle: &ServeHandle,
    cfg: &ServerConfig,
    shutdown: &ShutdownHandle,
    obs: &Registry,
) -> Result<(), WireError> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.read_timeout))?;
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // Sticky shed state: once one ingest is shed, everything after it on
    // this connection is shed until a Hello re-sync — the applied events
    // must stay an exact prefix of the client's send order.
    let mut shedding = false;
    let mut shed_replies = 0u64;
    let mut last_activity = Instant::now();
    loop {
        let buffered_before = reader.buffered_len();
        match reader.read_msg() {
            Ok(None) => return Ok(()), // clean close
            Ok(Some(msg)) => {
                last_activity = Instant::now();
                match msg {
                    WireMsg::Ingest { type_id, ts, attrs } => {
                        if !shedding
                            && cfg.shed_high_water > 0
                            && handle.queue_depth() >= cfg.shed_high_water
                        {
                            shedding = true;
                            shed_replies = 0;
                            obs.counter("serve_shed_enters").inc();
                            obs.record(
                                "serve_shed",
                                &[
                                    ("event", FieldValue::Str("enter".into())),
                                    ("queue_depth", FieldValue::U64(handle.queue_depth())),
                                ],
                            );
                        }
                        if shedding {
                            obs.counter("serve_shed_events").inc();
                            // Reply on the first shed and then sparsely: a
                            // streaming client that never reads would
                            // otherwise fill its receive buffer and block
                            // the writer here.
                            if shed_replies.is_multiple_of(64) {
                                write_msg(
                                    &mut writer,
                                    &WireMsg::Overloaded {
                                        retry_after_ms: cfg.shed_retry_after_ms,
                                    },
                                )?;
                                writer.flush()?;
                            }
                            shed_replies += 1;
                            continue;
                        }
                        if let Err(e) = handle.ingest(type_id, ts, attrs) {
                            // Diagnose before dropping the connection — a
                            // peer must never see a silent close while its
                            // ingests are being rejected.
                            let msg = e.to_string();
                            let _ = write_msg(&mut writer, &WireMsg::Error { message: msg });
                            let _ = writer.flush();
                            return Err(serve_err(e));
                        }
                    }
                    WireMsg::Flush => {
                        let reply = if shedding {
                            WireMsg::Overloaded {
                                retry_after_ms: cfg.shed_retry_after_ms,
                            }
                        } else {
                            match handle.sync().and_then(|()| handle.stats()) {
                                Ok(stats) => WireMsg::Summary {
                                    offered: stats.offered,
                                    matches: stats.matches,
                                    keys: stats.keys,
                                    refeed_skipped: stats.refeed_skipped,
                                    prune_to: stats.prune_horizon,
                                },
                                Err(e) => WireMsg::Error {
                                    message: e.to_string(),
                                },
                            }
                        };
                        write_msg(&mut writer, &reply)?;
                        writer.flush()?;
                    }
                    WireMsg::Hello => {
                        // Clear shed state only once the queue has drained
                        // below half the high-water mark; otherwise the
                        // client would immediately shed again. A `Hello` is
                        // always answered with `Resume` (or `Error`) — never
                        // `Overloaded` — so a client can skip stale shed
                        // replies until the `Resume` arrives. If shedding
                        // persists, the refed events are shed again and the
                        // next `Flush` tells the client to keep backing off.
                        if shedding && handle.queue_depth() < cfg.shed_high_water.div_ceil(2) {
                            shedding = false;
                            obs.record("serve_shed", &[("event", FieldValue::Str("exit".into()))]);
                        }
                        // stats() is a pump barrier: every ingest this
                        // connection already forwarded is applied before
                        // the position is read, so resume_seq is exact.
                        let reply = match handle.stats() {
                            Ok(stats) => WireMsg::Resume {
                                resume_seq: stats.offered + 1,
                            },
                            Err(e) => WireMsg::Error {
                                message: e.to_string(),
                            },
                        };
                        write_msg(&mut writer, &reply)?;
                        writer.flush()?;
                    }
                    WireMsg::Tele { endpoint } => {
                        let reply = match tele_kind(&endpoint) {
                            Some(kind) => match handle.telemetry(kind) {
                                Ok(body) => {
                                    let (body, dropped) = clamp_tele_body(body);
                                    if dropped > 0 {
                                        obs.counter("serve_tele_truncated").inc();
                                    }
                                    WireMsg::TeleBody { endpoint, body }
                                }
                                Err(e) => WireMsg::Error {
                                    message: e.to_string(),
                                },
                            },
                            None => WireMsg::Error {
                                message: format!("unknown telemetry endpoint: {endpoint}"),
                            },
                        };
                        write_msg(&mut writer, &reply)?;
                        writer.flush()?;
                    }
                    other => {
                        let reply = WireMsg::Error {
                            message: format!("unexpected client message: {other:?}"),
                        };
                        write_msg(&mut writer, &reply)?;
                        writer.flush()?;
                        return Err(WireError::Protocol("unexpected client message".into()));
                    }
                }
            }
            Err(WireError::Io(ref e)) if is_timeout(e) => {
                if reader.buffered_len() > buffered_before {
                    // Bytes arrived mid-frame: the peer is slow, not idle.
                    last_activity = Instant::now();
                    continue;
                }
                if shutdown.is_signalled() && reader.buffered_len() == 0 {
                    // Draining and the connection is quiet on a frame
                    // boundary: this stream is drained.
                    return Ok(());
                }
                if last_activity.elapsed() >= cfg.idle_timeout {
                    obs.counter("serve_conn_reaped").inc();
                    obs.record("serve_conn", &[("event", FieldValue::Str("reaped".into()))]);
                    let _ = write_msg(
                        &mut writer,
                        &WireMsg::Error {
                            message: format!(
                                "idle connection reaped after {} ms",
                                cfg.idle_timeout.as_millis()
                            ),
                        },
                    );
                    let _ = writer.flush();
                    return Ok(());
                }
            }
            Err(e) => {
                // Best-effort diagnosis to the peer, then drop the
                // connection: after a framing error the stream position is
                // unknowable.
                let _ = write_msg(
                    &mut writer,
                    &WireMsg::Error {
                        message: e.to_string(),
                    },
                );
                let _ = writer.flush();
                return Err(e);
            }
        }
    }
}

/// Blocking client for the wire protocol. One shot, no retry — the
/// resilient wrapper is [`crate::ResilientClient`].
pub struct WireClient {
    reader: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl WireClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream (e.g. one opened with a connect
    /// timeout).
    pub fn from_stream(stream: TcpStream) -> io::Result<WireClient> {
        Ok(WireClient {
            reader: FrameReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Set read/write timeouts on the underlying socket.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Send one raw protocol message (buffered until [`flush_wire`]).
    ///
    /// [`flush_wire`]: Self::flush_wire
    pub fn send(&mut self, msg: &WireMsg) -> Result<(), WireError> {
        write_msg(&mut self.writer, msg)
    }

    /// Flush buffered frames to the socket.
    pub fn flush_wire(&mut self) -> Result<(), WireError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Read the next message (`None` = clean close).
    pub fn recv(&mut self) -> Result<Option<WireMsg>, WireError> {
        self.reader.read_msg()
    }

    /// Offer one event (buffered; framed on the wire, flushed with
    /// [`flush`](Self::flush)).
    pub fn ingest(
        &mut self,
        type_id: dlacep_events::TypeId,
        ts: u64,
        attrs: Vec<f64>,
    ) -> Result<(), WireError> {
        self.send(&WireMsg::Ingest { type_id, ts, attrs })
    }

    /// Flush buffered ingests, ask the server for a durability barrier,
    /// and return its [`WireMsg::Summary`] counters as
    /// `(offered, matches, keys, refeed_skipped)`.
    pub fn flush(&mut self) -> Result<(u64, u64, u64, u64), WireError> {
        self.send(&WireMsg::Flush)?;
        self.flush_wire()?;
        match self.recv()? {
            Some(WireMsg::Summary {
                offered,
                matches,
                keys,
                refeed_skipped,
                ..
            }) => Ok((offered, matches, keys, refeed_skipped)),
            Some(WireMsg::Overloaded { retry_after_ms }) => Err(WireError::Protocol(format!(
                "server overloaded; retry after {retry_after_ms} ms"
            ))),
            Some(WireMsg::Error { message }) => Err(WireError::Protocol(message)),
            Some(other) => Err(WireError::Protocol(format!(
                "expected Summary, got {other:?}"
            ))),
            None => Err(WireError::Protocol("server closed before Summary".into())),
        }
    }

    /// Handshake: ask the server which fleet-global sequence number to
    /// feed from. The server always answers a `Hello` with `Resume` (or
    /// `Error`), so any [`WireMsg::Overloaded`] frames read here are stale
    /// replies to previously shed ingests and are skipped (bounded, to
    /// keep a misbehaving peer from pinning the thread).
    pub fn hello(&mut self) -> Result<u64, WireError> {
        self.send(&WireMsg::Hello)?;
        self.flush_wire()?;
        for _ in 0..4096 {
            match self.recv()? {
                Some(WireMsg::Resume { resume_seq }) => return Ok(resume_seq),
                Some(WireMsg::Overloaded { .. }) => continue, // stale shed reply
                Some(WireMsg::Error { message }) => return Err(WireError::Protocol(message)),
                Some(other) => {
                    return Err(WireError::Protocol(format!(
                        "expected Resume, got {other:?}"
                    )))
                }
                None => return Err(WireError::Protocol("server closed before Resume".into())),
            }
        }
        Err(WireError::Protocol(
            "no Resume after 4096 frames; peer is flooding".into(),
        ))
    }

    /// Ask the server for one live telemetry document (`"metrics"`,
    /// `"healthz"`, `"traces"`, or `"journal"`) and return its body.
    pub fn telemetry(&mut self, endpoint: &str) -> Result<String, WireError> {
        self.send(&WireMsg::Tele {
            endpoint: endpoint.to_string(),
        })?;
        self.flush_wire()?;
        match self.recv()? {
            Some(WireMsg::TeleBody { body, .. }) => Ok(body),
            Some(WireMsg::Error { message }) => Err(WireError::Protocol(message)),
            Some(other) => Err(WireError::Protocol(format!(
                "expected TeleBody, got {other:?}"
            ))),
            None => Err(WireError::Protocol("server closed before TeleBody".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_leaves_small_bodies_alone() {
        let (body, dropped) = clamp_tele_body("hello".into());
        assert_eq!(body, "hello");
        assert_eq!(dropped, 0);
    }

    #[test]
    fn clamp_marks_truncated_bodies() {
        let big = "x".repeat(MAX_WIRE_PAYLOAD as usize + 100);
        let original_len = big.len();
        let (body, dropped) = clamp_tele_body(big);
        assert!(dropped > 0);
        assert!(body.len() <= (MAX_WIRE_PAYLOAD as usize).saturating_sub(4096));
        let marker_at = body
            .find(TELE_TRUNCATION_MARKER)
            .expect("clipped body must carry the truncation marker");
        assert!(body[marker_at..].contains(&format!("dropped_bytes={dropped}")));
        let kept = body[..marker_at].trim_end().len();
        assert_eq!(kept as u64 + dropped, original_len as u64);
    }

    #[test]
    fn clamp_respects_utf8_boundaries() {
        // 4-byte scalars straddling the cut point must not split.
        let big = "𝄞".repeat((MAX_WIRE_PAYLOAD as usize / 4) + 100);
        let (body, dropped) = clamp_tele_body(big);
        assert!(dropped > 0);
        assert!(body.contains(TELE_TRUNCATION_MARKER));
        // String integrity: constructing the assert above would have
        // panicked on an invalid boundary; also re-validate explicitly.
        assert!(std::str::from_utf8(body.as_bytes()).is_ok());
    }
}
