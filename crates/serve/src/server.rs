//! Minimal TCP front door speaking the `DMSV` wire protocol.
//!
//! One accept loop, one thread per connection, each connection a FIFO of
//! frames feeding the shared [`ServeHandle`]. Ordering *across*
//! connections is whatever the channel interleaving produces — keyed
//! determinism holds per connection, which is the deployment shape the
//! tests pin (one producer). A malformed frame gets a best-effort
//! [`WireMsg::Error`] reply and closes that connection; the fleet and the
//! other connections are unaffected.

use crate::channel::{ServeError, ServeHandle, TeleKind};
use crate::wire::{write_msg, FrameReader, WireError, WireMsg, MAX_WIRE_PAYLOAD};
use std::io::{self, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::thread::JoinHandle;

/// Environment variable naming the TCP listen address.
pub const SERVE_ADDR_ENV: &str = "DLACEP_SERVE_ADDR";

/// Listen address from `DLACEP_SERVE_ADDR`, or `default` when unset/empty.
pub fn serve_addr_from_env(default: &str) -> String {
    std::env::var(SERVE_ADDR_ENV)
        .ok()
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| default.to_string())
}

/// Accept loop over a bound listener, forwarding frames into a fleet's
/// [`ServeHandle`].
pub struct WireServer {
    listener: TcpListener,
    handle: ServeHandle,
}

impl WireServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port).
    pub fn bind(addr: impl ToSocketAddrs, handle: ServeHandle) -> io::Result<WireServer> {
        Ok(WireServer {
            listener: TcpListener::bind(addr)?,
            handle,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept exactly `n` connections, serving each on its own thread, and
    /// wait for all of them to finish. A bounded accept count keeps the
    /// server test-friendly — no shutdown flag or signal plumbing.
    pub fn serve_connections(self, n: usize) -> io::Result<()> {
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (stream, _) = self.listener.accept()?;
            let handle = self.handle.clone();
            workers.push(std::thread::spawn(move || {
                let _ = handle_conn(stream, handle);
            }));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

fn serve_err(e: ServeError) -> WireError {
    WireError::Protocol(e.to_string())
}

/// Map a wire telemetry endpoint name to its pump-side document kind.
/// The names mirror the HTTP scrape listener's paths.
pub(crate) fn tele_kind(endpoint: &str) -> Option<TeleKind> {
    match endpoint.trim_start_matches('/') {
        "metrics" => Some(TeleKind::Metrics),
        "healthz" => Some(TeleKind::Healthz),
        "traces" => Some(TeleKind::Traces),
        "journal" => Some(TeleKind::Journal),
        _ => None,
    }
}

/// Truncate `body` so the whole `TeleBody` frame stays under the payload
/// cap (UTF-8 boundary-safe; headroom covers the endpoint + frame fields).
fn clamp_tele_body(mut body: String) -> String {
    let cap = (MAX_WIRE_PAYLOAD as usize).saturating_sub(4096);
    if body.len() > cap {
        let mut cut = cap;
        while cut > 0 && !body.is_char_boundary(cut) {
            cut -= 1;
        }
        body.truncate(cut);
    }
    body
}

fn handle_conn(stream: TcpStream, handle: ServeHandle) -> Result<(), WireError> {
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        match reader.read_msg() {
            Ok(None) => return Ok(()), // clean close
            Ok(Some(WireMsg::Ingest { type_id, ts, attrs })) => {
                handle.ingest(type_id, ts, attrs).map_err(serve_err)?;
            }
            Ok(Some(WireMsg::Flush)) => {
                let reply = match handle.sync().and_then(|()| handle.stats()) {
                    Ok(stats) => WireMsg::Summary {
                        offered: stats.offered,
                        matches: stats.matches,
                        keys: stats.keys,
                        refeed_skipped: stats.refeed_skipped,
                    },
                    Err(e) => WireMsg::Error {
                        message: e.to_string(),
                    },
                };
                write_msg(&mut writer, &reply)?;
                writer.flush()?;
            }
            Ok(Some(WireMsg::Tele { endpoint })) => {
                let reply = match tele_kind(&endpoint) {
                    Some(kind) => match handle.telemetry(kind) {
                        Ok(body) => WireMsg::TeleBody {
                            endpoint,
                            body: clamp_tele_body(body),
                        },
                        Err(e) => WireMsg::Error {
                            message: e.to_string(),
                        },
                    },
                    None => WireMsg::Error {
                        message: format!("unknown telemetry endpoint: {endpoint}"),
                    },
                };
                write_msg(&mut writer, &reply)?;
                writer.flush()?;
            }
            Ok(Some(other)) => {
                let reply = WireMsg::Error {
                    message: format!("unexpected client message: {other:?}"),
                };
                write_msg(&mut writer, &reply)?;
                writer.flush()?;
                return Err(WireError::Protocol("unexpected client message".into()));
            }
            Err(e) => {
                // Best-effort diagnosis to the peer, then drop the
                // connection: after a framing error the stream position is
                // unknowable.
                let _ = write_msg(
                    &mut writer,
                    &WireMsg::Error {
                        message: e.to_string(),
                    },
                );
                let _ = writer.flush();
                return Err(e);
            }
        }
    }
}

/// Blocking client for the wire protocol.
pub struct WireClient {
    reader: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl WireClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        Ok(WireClient {
            reader: FrameReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Offer one event (buffered; framed on the wire, flushed with
    /// [`flush`](Self::flush)).
    pub fn ingest(
        &mut self,
        type_id: dlacep_events::TypeId,
        ts: u64,
        attrs: Vec<f64>,
    ) -> Result<(), WireError> {
        write_msg(&mut self.writer, &WireMsg::Ingest { type_id, ts, attrs })
    }

    /// Flush buffered ingests, ask the server for a durability barrier,
    /// and return its [`WireMsg::Summary`] counters as
    /// `(offered, matches, keys, refeed_skipped)`.
    pub fn flush(&mut self) -> Result<(u64, u64, u64, u64), WireError> {
        write_msg(&mut self.writer, &WireMsg::Flush)?;
        self.writer.flush()?;
        match self.reader.read_msg()? {
            Some(WireMsg::Summary {
                offered,
                matches,
                keys,
                refeed_skipped,
            }) => Ok((offered, matches, keys, refeed_skipped)),
            Some(WireMsg::Error { message }) => Err(WireError::Protocol(message)),
            Some(other) => Err(WireError::Protocol(format!(
                "expected Summary, got {other:?}"
            ))),
            None => Err(WireError::Protocol("server closed before Summary".into())),
        }
    }

    /// Ask the server for one live telemetry document (`"metrics"`,
    /// `"healthz"`, `"traces"`, or `"journal"`) and return its body.
    pub fn telemetry(&mut self, endpoint: &str) -> Result<String, WireError> {
        write_msg(
            &mut self.writer,
            &WireMsg::Tele {
                endpoint: endpoint.to_string(),
            },
        )?;
        self.writer.flush()?;
        match self.reader.read_msg()? {
            Some(WireMsg::TeleBody { body, .. }) => Ok(body),
            Some(WireMsg::Error { message }) => Err(WireError::Protocol(message)),
            Some(other) => Err(WireError::Protocol(format!(
                "expected TeleBody, got {other:?}"
            ))),
            None => Err(WireError::Protocol("server closed before TeleBody".into())),
        }
    }
}
