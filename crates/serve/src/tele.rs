//! Plaintext-HTTP telemetry scrape listener.
//!
//! A deliberately minimal HTTP/1.0-style responder — enough for
//! `curl`, Prometheus scrape jobs, and load-balancer health probes,
//! with no HTTP library dependency. Each connection gets one request
//! parsed (method + path only), one response, `Connection: close`.
//! Telemetry documents are rendered by the fleet pump thread via
//! [`ServeHandle::telemetry`], so a scrape sees a consistent in-memory
//! snapshot without racing ingest.
//!
//! Endpoints:
//!
//! | Path        | Content-Type              | Body |
//! |-------------|---------------------------|------|
//! | `/metrics`  | `text/plain; version=0.0.4` | Prometheus scrape: per-shard `serve_*` counters, live key-runtime metrics, queue-depth gauge |
//! | `/healthz`  | `application/json`        | fleet position, per-shard lag / keys / mode census |
//! | `/traces`   | `application/json`        | sampled trace ring as Chrome trace-event JSON |
//! | `/journal`  | `application/json`        | bounded tail of every key runtime's journal |
//!
//! Listen address comes from [`TELE_ADDR_ENV`] (`DLACEP_TELE_ADDR`);
//! bind port 0 for an ephemeral test port.

use crate::channel::{ServeError, ServeHandle};
use crate::server::tele_kind;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable naming the telemetry HTTP listen address.
pub const TELE_ADDR_ENV: &str = "DLACEP_TELE_ADDR";

/// Telemetry listen address from `DLACEP_TELE_ADDR`, or `None` when
/// unset/empty (telemetry over HTTP stays off by default).
pub fn tele_addr_from_env() -> Option<String> {
    std::env::var(TELE_ADDR_ENV)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Cap on the request head read from a scrape connection; anything
/// longer is answered 400 without further buffering.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Socket i/o timeout on scrape connections. A probe that connects and
/// never sends a request (or never drains the response) would otherwise
/// pin its handler thread forever.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The telemetry scrape listener: an accept-loop thread answering HTTP
/// GETs against a fleet's [`ServeHandle`]. Runs until [`shutdown`]
/// (or drop, which also shuts it down).
///
/// [`shutdown`]: TeleServer::shutdown
pub struct TeleServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TeleServer {
    /// Bind `addr` and start serving scrapes on a background thread.
    pub fn bind(addr: impl ToSocketAddrs, handle: ServeHandle) -> io::Result<TeleServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let handle = handle.clone();
                std::thread::spawn(move || {
                    let _ = serve_one(stream, &handle);
                });
            }
        });
        Ok(TeleServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. In-flight responses
    /// finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = thread.join();
    }
}

impl Drop for TeleServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Parse one request head and write one response.
fn serve_one(mut stream: TcpStream, handle: &ServeHandle) -> io::Result<()> {
    stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    let path = match read_request_path(&mut stream)? {
        Some(path) => path,
        None => return Ok(()), // shutdown poke or empty request
    };
    let (status, content_type, body) = respond(&path, handle);
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request head and return the GET path.
/// Non-GET methods and oversized heads yield a path that routes to an
/// error response rather than an i/o failure.
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let got = stream.read(&mut chunk)?;
        if got == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..got]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Ok(Some("\u{0}oversized".into()));
        }
    }
    if buf.is_empty() {
        return Ok(None);
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(Some("\u{0}bad-method".into())),
    }
}

fn respond(path: &str, handle: &ServeHandle) -> (&'static str, &'static str, String) {
    if path.starts_with('\u{0}') {
        return (
            "400 Bad Request",
            "text/plain",
            "only GET requests are served\n".into(),
        );
    }
    let path = path.split('?').next().unwrap_or(path);
    let Some(kind) = tele_kind(path) else {
        return (
            "404 Not Found",
            "text/plain",
            "endpoints: /metrics /healthz /traces /journal\n".into(),
        );
    };
    match handle.telemetry(kind) {
        Ok(body) => {
            let content_type = if path.trim_start_matches('/') == "metrics" {
                "text/plain; version=0.0.4"
            } else {
                "application/json"
            };
            ("200 OK", content_type, body)
        }
        Err(ServeError::Closed) => (
            "503 Service Unavailable",
            "text/plain",
            "fleet pump is closed\n".into(),
        ),
        Err(e) => ("500 Internal Server Error", "text/plain", format!("{e}\n")),
    }
}
