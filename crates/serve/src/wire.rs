//! The `DMSV` wire protocol: length-prefixed binary frames over a byte
//! stream, reusing the dur codec's CRC framing.
//!
//! Every message is one frame: `magic "DMSV" (4) | version (2 LE) |
//! payload len (4 LE) | crc32 (4 LE) | payload` — exactly the layout of
//! checkpoint and manifest frames ([`dlacep_dur::codec::encode_frame`]),
//! so the same failure taxonomy applies on the wire: a connection cut
//! mid-frame decodes as [`CodecError::Truncated`], a flipped bit as
//! [`CodecError::ChecksumMismatch`] — always a typed [`WireError`], never
//! a panic and never a silently skipped message.
//!
//! [`FrameReader`] additionally validates the length prefix **before**
//! allocating or waiting for the body: a frame announcing more than
//! [`MAX_WIRE_PAYLOAD`] bytes is rejected as [`WireError::Oversized`], so
//! a corrupt or malicious length field cannot make the server buffer
//! gigabytes. The reader is incremental and tolerates arbitrarily
//! fragmented reads (one byte at a time is fine), as sockets deliver.

use dlacep_dur::codec::{self, CodecError, Dec, Decoder, Enc, Encoder, FRAME_HEADER_BYTES};
use dlacep_events::{AttrValue, TypeId};
use std::io::{self, Read, Write};

/// Magic tag of wire frames ("DLACEP multi-shard serve").
pub const WIRE_MAGIC: [u8; 4] = *b"DMSV";
/// Current wire format version.
pub const WIRE_VERSION: u16 = 1;
/// Hard cap on a frame's payload length; larger length prefixes are
/// rejected before any allocation.
pub const MAX_WIRE_PAYLOAD: u32 = 1 << 20;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Client → server: offer one event to the fleet.
    Ingest {
        type_id: TypeId,
        ts: u64,
        attrs: Vec<AttrValue>,
    },
    /// Client → server: make everything offered so far durable and reply
    /// with a [`WireMsg::Summary`].
    Flush,
    /// Server → client: fleet counters at the time the flush completed.
    Summary {
        /// Events offered to the fleet so far (all connections).
        offered: u64,
        /// Matches emitted across all keys so far.
        matches: u64,
        /// Distinct keys with a live runtime.
        keys: u64,
        /// Events skipped as already-applied during post-recovery re-feed.
        refeed_skipped: u64,
        /// `min(high_water)` across shards at the barrier: the source may
        /// prune its send buffer at or below this sequence number — no
        /// future recovery can ask for a re-feed from further back, and
        /// re-feeds must start exactly at `resume_seq` to keep the
        /// fleet-global numbering positional.
        prune_to: u64,
    },
    /// Server → client: the request failed; the connection stays usable.
    Error { message: String },
    /// Client → server: ask for one live telemetry document by endpoint
    /// name (`"metrics"`, `"healthz"`, `"traces"`, `"journal"` — the same
    /// names the HTTP scrape listener serves as paths).
    Tele { endpoint: String },
    /// Server → client: the requested telemetry document. Bodies are
    /// truncated to fit [`MAX_WIRE_PAYLOAD`] (a clipped body carries an
    /// explicit truncation marker); scrape the HTTP listener for
    /// unbounded documents.
    TeleBody { endpoint: String, body: String },
    /// Client → server: (re)synchronization handshake. The server replies
    /// [`WireMsg::Resume`] with the position the client should feed from,
    /// and clears any overload-shedding state on the connection.
    Hello,
    /// Server → client: reply to [`WireMsg::Hello`]. `resume_seq` is the
    /// first fleet-global sequence number (1-based) the server has *not*
    /// durably applied — a single producer re-feeds its send buffer from
    /// here; events a shard already applied are deduplicated as
    /// `refeed_skipped`.
    Resume { resume_seq: u64 },
    /// Server → client: the ingest queue crossed its high-water mark and
    /// this request was shed instead of applied. The connection is in
    /// shedding state until the client re-syncs with [`WireMsg::Hello`];
    /// back off at least `retry_after_ms` before doing so.
    Overloaded { retry_after_ms: u64 },
}

const TAG_INGEST: u8 = 0;
const TAG_FLUSH: u8 = 1;
const TAG_SUMMARY: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_TELE: u8 = 4;
const TAG_TELE_BODY: u8 = 5;
const TAG_HELLO: u8 = 6;
const TAG_RESUME: u8 = 7;
const TAG_OVERLOADED: u8 = 8;

impl Enc for WireMsg {
    fn enc(&self, e: &mut Encoder) {
        match self {
            WireMsg::Ingest { type_id, ts, attrs } => {
                e.put_u8(TAG_INGEST);
                e.put_u32(type_id.0);
                e.put_u64(*ts);
                e.put(attrs);
            }
            WireMsg::Flush => e.put_u8(TAG_FLUSH),
            WireMsg::Summary {
                offered,
                matches,
                keys,
                refeed_skipped,
                prune_to,
            } => {
                e.put_u8(TAG_SUMMARY);
                e.put_u64(*offered);
                e.put_u64(*matches);
                e.put_u64(*keys);
                e.put_u64(*refeed_skipped);
                e.put_u64(*prune_to);
            }
            WireMsg::Error { message } => {
                e.put_u8(TAG_ERROR);
                e.put(message);
            }
            WireMsg::Tele { endpoint } => {
                e.put_u8(TAG_TELE);
                e.put(endpoint);
            }
            WireMsg::TeleBody { endpoint, body } => {
                e.put_u8(TAG_TELE_BODY);
                e.put(endpoint);
                e.put(body);
            }
            WireMsg::Hello => e.put_u8(TAG_HELLO),
            WireMsg::Resume { resume_seq } => {
                e.put_u8(TAG_RESUME);
                e.put_u64(*resume_seq);
            }
            WireMsg::Overloaded { retry_after_ms } => {
                e.put_u8(TAG_OVERLOADED);
                e.put_u64(*retry_after_ms);
            }
        }
    }
}

impl Dec for WireMsg {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            TAG_INGEST => Ok(WireMsg::Ingest {
                type_id: TypeId(d.take_u32()?),
                ts: d.take_u64()?,
                attrs: d.get()?,
            }),
            TAG_FLUSH => Ok(WireMsg::Flush),
            TAG_SUMMARY => Ok(WireMsg::Summary {
                offered: d.take_u64()?,
                matches: d.take_u64()?,
                keys: d.take_u64()?,
                refeed_skipped: d.take_u64()?,
                prune_to: d.take_u64()?,
            }),
            TAG_ERROR => Ok(WireMsg::Error { message: d.get()? }),
            TAG_TELE => Ok(WireMsg::Tele { endpoint: d.get()? }),
            TAG_TELE_BODY => Ok(WireMsg::TeleBody {
                endpoint: d.get()?,
                body: d.get()?,
            }),
            TAG_HELLO => Ok(WireMsg::Hello),
            TAG_RESUME => Ok(WireMsg::Resume {
                resume_seq: d.take_u64()?,
            }),
            TAG_OVERLOADED => Ok(WireMsg::Overloaded {
                retry_after_ms: d.take_u64()?,
            }),
            other => Err(CodecError::Malformed(format!("wire message tag {other}"))),
        }
    }
}

/// Wire protocol failures. Every decode problem is a value of this type —
/// the reader never panics on hostile bytes.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed.
    Io(io::Error),
    /// The frame or its payload did not validate/decode (torn tail →
    /// [`CodecError::Truncated`], bit flip → [`CodecError::ChecksumMismatch`],
    /// wrong magic/version/payload shape → their respective variants).
    Codec(CodecError),
    /// The length prefix announced a payload above [`MAX_WIRE_PAYLOAD`];
    /// rejected before allocation.
    Oversized { len: u32, max: u32 },
    /// A structurally valid message arrived where the protocol does not
    /// allow it (e.g. a client receiving `Ingest`).
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Codec(e) => write!(f, "wire frame: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "wire frame announces {len} payload bytes (cap {max})")
            }
            WireError::Protocol(msg) => write!(f, "wire protocol: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Encode one message as a complete `DMSV` frame.
pub fn encode_msg(msg: &WireMsg) -> Vec<u8> {
    let mut payload = Encoder::new();
    payload.put(msg);
    codec::encode_frame(WIRE_MAGIC, WIRE_VERSION, payload.bytes())
}

/// Write one message to `w` (no flush; the caller owns buffering policy).
pub fn write_msg<W: Write>(w: &mut W, msg: &WireMsg) -> Result<(), WireError> {
    w.write_all(&encode_msg(msg))?;
    Ok(())
}

/// Incremental frame reader over any [`Read`]. Handles partial reads (a
/// socket delivering one byte at a time), multiple frames per read, and
/// leftover bytes between calls.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// The wrapped transport (e.g. to shut a socket down).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Bytes buffered but not yet consumed as a complete frame. Non-zero
    /// after a timed-out read means the peer stopped mid-frame — the
    /// server's drain logic uses this to tell an idle connection from one
    /// that still owes bytes.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// Read until at least `target` bytes are buffered or the transport
    /// reports EOF. Returns the buffered length.
    fn fill(&mut self, target: usize) -> Result<usize, io::Error> {
        let mut chunk = [0u8; 4096];
        while self.buf.len() < target {
            let got = self.inner.read(&mut chunk)?;
            if got == 0 {
                break;
            }
            self.buf.extend_from_slice(&chunk[..got]);
        }
        Ok(self.buf.len())
    }

    /// Read the next message. `Ok(None)` is a clean EOF — the transport
    /// closed exactly on a frame boundary. EOF anywhere *inside* a frame is
    /// a torn frame: `Err(Codec(Truncated))`.
    pub fn read_msg(&mut self) -> Result<Option<WireMsg>, WireError> {
        let have = self.fill(FRAME_HEADER_BYTES)?;
        if have == 0 {
            return Ok(None);
        }
        if have < FRAME_HEADER_BYTES {
            return Err(CodecError::Truncated {
                needed: FRAME_HEADER_BYTES,
                remaining: have,
            }
            .into());
        }
        // Pre-validate the prefix before committing to buffer the body:
        // magic and version identify the stream, the length field bounds
        // the allocation. CRC validation follows once the body is here.
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&self.buf[0..4]);
        if magic != WIRE_MAGIC {
            return Err(CodecError::BadMagic {
                expected: WIRE_MAGIC,
                got: magic,
            }
            .into());
        }
        let version = u16::from_le_bytes(self.buf[4..6].try_into().expect("2 bytes"));
        if version > WIRE_VERSION {
            return Err(CodecError::UnsupportedVersion {
                got: version,
                max: WIRE_VERSION,
            }
            .into());
        }
        let len = u32::from_le_bytes(self.buf[6..10].try_into().expect("4 bytes"));
        if len > MAX_WIRE_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_WIRE_PAYLOAD,
            });
        }
        let total = FRAME_HEADER_BYTES + len as usize;
        let have = self.fill(total)?;
        if have < total {
            return Err(CodecError::Truncated {
                needed: total,
                remaining: have,
            }
            .into());
        }
        let msg = {
            let (_, payload, consumed) = codec::scan_frame(WIRE_MAGIC, WIRE_VERSION, &self.buf)?;
            debug_assert_eq!(consumed, total);
            let mut d = Decoder::new(payload);
            let msg = d.get::<WireMsg>()?;
            d.finish()?;
            msg
        };
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_variants() {
        let msgs = vec![
            WireMsg::Ingest {
                type_id: TypeId(7),
                ts: 99,
                attrs: vec![1.5, -0.25],
            },
            WireMsg::Flush,
            WireMsg::Summary {
                offered: 10,
                matches: 3,
                keys: 2,
                refeed_skipped: 0,
                prune_to: 8,
            },
            WireMsg::Error {
                message: "nope".into(),
            },
            WireMsg::Tele {
                endpoint: "metrics".into(),
            },
            WireMsg::TeleBody {
                endpoint: "metrics".into(),
                body: "# TYPE x counter\nx_total 1\n".into(),
            },
            WireMsg::Hello,
            WireMsg::Resume { resume_seq: 4242 },
            WireMsg::Overloaded {
                retry_after_ms: 250,
            },
        ];
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&encode_msg(m));
        }
        let mut reader = FrameReader::new(&bytes[..]);
        for m in &msgs {
            assert_eq!(reader.read_msg().unwrap().as_ref(), Some(m));
        }
        assert!(reader.read_msg().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut frame = encode_msg(&WireMsg::Flush);
        frame[6..10].copy_from_slice(&(MAX_WIRE_PAYLOAD + 1).to_le_bytes());
        let mut reader = FrameReader::new(&frame[..]);
        match reader.read_msg() {
            Err(WireError::Oversized { len, .. }) => {
                assert_eq!(len, MAX_WIRE_PAYLOAD + 1)
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
