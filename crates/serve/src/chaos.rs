//! Wire-level fault injection: a chaos TCP proxy.
//!
//! [`ChaosProxy`] sits between a client and a [`WireServer`] and injects
//! transport faults into the client→server byte stream on a seeded
//! [`Schedule`] (the same deterministic trigger machinery `dlacep-dur`
//! uses for torn-write and crash-tick injection):
//!
//! - **cut** — forward bytes up to the scheduled offset, then shut both
//!   sockets down. The cut lands wherever the schedule says, including
//!   mid-frame, so the server sees a torn tail and the client sees a
//!   dead connection.
//! - **delay** — sleep [`ChaosPlan::delay`] before forwarding the chunk
//!   that covers the scheduled offset; exercises read-timeout and
//!   idle-reaping paths without killing the connection.
//! - **duplicate** — re-send a short prefix of the chunk before the
//!   chunk itself. The duplicated slice is capped at 7 bytes — strictly
//!   smaller than the 14-byte `DMSV` frame header — so a duplicate can
//!   *never* form a complete frame and silently double-apply an event;
//!   it always surfaces as a framing/CRC error that kills the
//!   connection, which the reconnecting client then repairs.
//!
//! Schedules index **cumulative client→server bytes forwarded through
//! the proxy across all connections**, so a plan like
//! `Schedule::never().every(4096)` keeps firing as the client reconnects
//! and re-feeds. Each fault consumes its firing offset (a fault that
//! fired at byte `f` next fires strictly after `f`), which keeps
//! `Every`-style triggers from re-killing every successor connection at
//! the same cumulative offset.
//!
//! The upstream address is mutable at runtime ([`ChaosProxy::set_upstream`])
//! so a test can hard-kill a server, recover the fleet onto a fresh
//! ephemeral port, and point the proxy there — the client keeps dialing
//! the one stable address it knows: the proxy's.
//!
//! [`WireServer`]: crate::server::WireServer

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dlacep_dur::Schedule;

/// Largest byte run the duplicate fault will replay. Must stay below the
/// 14-byte wire frame header so a duplicate can never be a whole frame.
pub const MAX_DUP_BYTES: usize = 7;

/// Poll tick for the proxy's pump threads; bounds shutdown latency.
const PUMP_TICK: Duration = Duration::from_millis(20);

/// What to inject and when. Offsets index cumulative client→server
/// bytes; [`Schedule::never`] disables a fault.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Kill the connection (both directions) at these offsets.
    pub cut: Schedule,
    /// Stall forwarding for [`delay`](Self::delay) at these offsets.
    pub delay_at: Schedule,
    /// How long a fired delay stalls.
    pub delay: Duration,
    /// Duplicate a ≤[`MAX_DUP_BYTES`] prefix at these offsets.
    pub duplicate: Schedule,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            cut: Schedule::never(),
            delay_at: Schedule::never(),
            delay: Duration::from_millis(50),
            duplicate: Schedule::never(),
        }
    }
}

impl ChaosPlan {
    /// A plan that injects nothing (a transparent proxy).
    pub fn quiet() -> Self {
        ChaosPlan::default()
    }
}

/// Monotonic counters for what the proxy actually did.
#[derive(Debug, Default)]
struct ChaosCounters {
    conns: AtomicU64,
    cuts: AtomicU64,
    delays: AtomicU64,
    dups: AtomicU64,
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
}

/// Snapshot of [`ChaosProxy`] activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStats {
    /// Client connections accepted (whether or not upstream dial worked).
    pub conns: u64,
    /// Connections killed by the cut fault.
    pub cuts: u64,
    /// Delay faults fired.
    pub delays: u64,
    /// Duplicate faults fired.
    pub dups: u64,
    /// Client→server bytes forwarded.
    pub bytes_up: u64,
    /// Server→client bytes forwarded.
    pub bytes_down: u64,
}

struct ProxyShared {
    stop: AtomicBool,
    upstream: Mutex<SocketAddr>,
    plan: ChaosPlan,
    /// Cumulative client→server bytes forwarded (the fault index space).
    fwd: AtomicU64,
    /// Next offset each fault may fire at (each firing consumes itself).
    cut_cursor: AtomicU64,
    delay_cursor: AtomicU64,
    dup_cursor: AtomicU64,
    counters: ChaosCounters,
}

/// A running chaos proxy. Dropping it does *not* stop the threads; call
/// [`shutdown`](Self::shutdown).
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind an ephemeral loopback port and start proxying to `upstream`
    /// under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            stop: AtomicBool::new(false),
            upstream: Mutex::new(upstream),
            plan,
            fwd: AtomicU64::new(0),
            cut_cursor: AtomicU64::new(0),
            delay_cursor: AtomicU64::new(0),
            dup_cursor: AtomicU64::new(0),
            counters: ChaosCounters::default(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ChaosProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The stable front address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Repoint the proxy at a new upstream (e.g. a restarted server on a
    /// fresh ephemeral port). Only affects connections dialed after the
    /// call; live ones keep their old upstream until they die.
    pub fn set_upstream(&self, upstream: SocketAddr) {
        *self.shared.upstream.lock().expect("upstream lock") = upstream;
    }

    /// Activity counters so far.
    pub fn stats(&self) -> ChaosStats {
        let c = &self.shared.counters;
        ChaosStats {
            conns: c.conns.load(Ordering::Relaxed),
            cuts: c.cuts.load(Ordering::Relaxed),
            delays: c.delays.load(Ordering::Relaxed),
            dups: c.dups.load(Ordering::Relaxed),
            bytes_up: c.bytes_up.load(Ordering::Relaxed),
            bytes_down: c.bytes_down.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, wake the accept loop, and join it. Live pump
    /// threads notice the stop flag within one poll tick and exit.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    loop {
        let (client, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        shared.counters.conns.fetch_add(1, Ordering::Relaxed);
        let upstream = *shared.upstream.lock().expect("upstream lock");
        let server = match TcpStream::connect_timeout(&upstream, Duration::from_millis(500)) {
            Ok(s) => s,
            Err(_) => {
                // Upstream down (e.g. restarting): refuse by closing, the
                // resilient client backs off and retries.
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        let _ = client.set_read_timeout(Some(PUMP_TICK));
        let _ = server.set_read_timeout(Some(PUMP_TICK));
        let up = (client.try_clone(), server.try_clone());
        if let (Ok(c2), Ok(s2)) = up {
            let s_up = Arc::clone(&shared);
            let s_down = Arc::clone(&shared);
            let _ = thread::Builder::new()
                .name("chaos-up".into())
                .spawn(move || pump_up(c2, s2, s_up));
            let _ = thread::Builder::new()
                .name("chaos-down".into())
                .spawn(move || pump_down(server, client, s_down));
        } else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
        }
    }
}

/// Whether an i/o error is a read-timeout poll tick.
fn is_tick(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Client→server pump: the faulted direction.
fn pump_up(mut from: TcpStream, mut to: TcpStream, shared: Arc<ProxyShared>) {
    let mut buf = [0u8; 4096];
    'outer: loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if is_tick(&e) => continue,
            Err(_) => break,
        };
        let start = shared.fwd.load(Ordering::SeqCst);
        let end = start + n as u64;

        // Delay: stall before any bytes of this chunk move.
        let dcur = shared.delay_cursor.load(Ordering::SeqCst);
        if let Some(f) = shared.plan.delay_at.first_fire_in(start.max(dcur), end) {
            shared.delay_cursor.store(f + 1, Ordering::SeqCst);
            shared.counters.delays.fetch_add(1, Ordering::Relaxed);
            thread::sleep(shared.plan.delay);
        }

        // Duplicate: replay a sub-header-sized prefix ahead of the chunk.
        let pcur = shared.dup_cursor.load(Ordering::SeqCst);
        if let Some(f) = shared.plan.duplicate.first_fire_in(start.max(pcur), end) {
            shared.dup_cursor.store(f + 1, Ordering::SeqCst);
            shared.counters.dups.fetch_add(1, Ordering::Relaxed);
            let k = n.min(MAX_DUP_BYTES);
            if to.write_all(&buf[..k]).is_err() {
                break;
            }
        }

        // Cut: forward the prefix up to the fault offset, then die.
        let ccur = shared.cut_cursor.load(Ordering::SeqCst);
        if let Some(f) = shared.plan.cut.first_fire_in(start.max(ccur), end) {
            shared.cut_cursor.store(f + 1, Ordering::SeqCst);
            shared.counters.cuts.fetch_add(1, Ordering::Relaxed);
            let keep = (f - start) as usize;
            if keep > 0 {
                let _ = to.write_all(&buf[..keep]);
                shared.fwd.fetch_add(keep as u64, Ordering::SeqCst);
                shared
                    .counters
                    .bytes_up
                    .fetch_add(keep as u64, Ordering::Relaxed);
            }
            break 'outer;
        }

        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        shared.fwd.fetch_add(n as u64, Ordering::SeqCst);
        shared
            .counters
            .bytes_up
            .fetch_add(n as u64, Ordering::Relaxed);
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Server→client pump: transparent copy.
fn pump_down(mut from: TcpStream, mut to: TcpStream, shared: Arc<ProxyShared>) {
    let mut buf = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                shared
                    .counters
                    .bytes_down
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e) if is_tick(&e) => continue,
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server: reads bytes, writes them back.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let t = thread::spawn(move || {
            // One connection per test is enough.
            if let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 1024];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, t)
    }

    #[test]
    fn quiet_proxy_is_transparent() {
        let (upstream, echo) = echo_server();
        let proxy = ChaosProxy::spawn(upstream, ChaosPlan::quiet()).expect("spawn proxy");
        let mut c = TcpStream::connect(proxy.addr()).expect("dial proxy");
        c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        c.write_all(b"ping").unwrap();
        let mut got = [0u8; 4];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"ping");
        let stats = proxy.stats();
        assert_eq!(stats.conns, 1);
        assert_eq!(stats.cuts, 0);
        assert!(stats.bytes_up >= 4);
        drop(c);
        proxy.shutdown();
        let _ = echo.join();
    }

    #[test]
    fn cut_kills_the_connection_at_offset() {
        let (upstream, echo) = echo_server();
        let plan = ChaosPlan {
            cut: Schedule::never().at(2),
            ..ChaosPlan::quiet()
        };
        let proxy = ChaosProxy::spawn(upstream, plan).expect("spawn proxy");
        let mut c = TcpStream::connect(proxy.addr()).expect("dial proxy");
        c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        c.write_all(b"abcdef").unwrap();
        // At most the 2-byte prefix crosses before the pipe dies; the
        // echoed reply races the bidirectional shutdown, so only the
        // upper bound is deterministic.
        let mut got = Vec::new();
        let _ = c.read_to_end(&mut got);
        assert!(got.len() <= 2, "bytes past the cut leaked: {got:?}");
        assert!(b"ab".starts_with(&got[..]));
        assert_eq!(proxy.stats().cuts, 1);
        assert_eq!(proxy.stats().bytes_up, 2, "exactly the prefix forwards");
        proxy.shutdown();
        let _ = echo.join();
    }

    #[test]
    fn duplicate_replays_a_short_prefix() {
        let (upstream, echo) = echo_server();
        let plan = ChaosPlan {
            duplicate: Schedule::never().at(0),
            ..ChaosPlan::quiet()
        };
        let proxy = ChaosProxy::spawn(upstream, plan).expect("spawn proxy");
        let mut c = TcpStream::connect(proxy.addr()).expect("dial proxy");
        c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        c.write_all(b"0123456789AB").unwrap();
        // Expect MAX_DUP_BYTES prefix, then the original 12 bytes.
        let mut got = [0u8; 19];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got[..7], b"0123456");
        assert_eq!(&got[7..], b"0123456789AB");
        assert_eq!(proxy.stats().dups, 1);
        drop(c);
        proxy.shutdown();
        let _ = echo.join();
    }

    #[test]
    fn upstream_down_refuses_cleanly() {
        // Dead upstream: use a bound-then-dropped port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let proxy = ChaosProxy::spawn(dead, ChaosPlan::quiet()).expect("spawn proxy");
        let mut c = TcpStream::connect(proxy.addr()).expect("dial proxy");
        c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut got = Vec::new();
        let n = c.read_to_end(&mut got).unwrap_or(0);
        assert_eq!(n, 0, "proxy must close when upstream is down");
        proxy.shutdown();
    }
}
