//! In-process ingest front door: a bounded mpsc command channel feeding a
//! single pump thread that owns the fleet.
//!
//! This is the primary tested path of the serving tier. The channel is
//! *bounded* ([`std::sync::mpsc::sync_channel`]) so a slow fleet pushes
//! back on producers instead of buffering without limit — admission
//! control composes with the runtime-level shed/budget machinery rather
//! than hiding behind an unbounded queue. A single pump thread applies
//! commands in channel order, which keeps the fleet's global sequence
//! numbering deterministic for any one producer.
//!
//! ## Failure visibility
//!
//! The first fleet error the pump hits *poisons* the front door: the
//! error is stored, later ingests are rejected at the handle with the
//! stored message, and every later `sync`/`checkpoint`/`stats` barrier
//! reports it instead of pretending the fleet is healthy. A client can
//! therefore never read a clean [`FleetStats`] summary while its ingests
//! are being dropped on the floor.

use crate::fleet::{FleetError, FleetStats, ShardedDlacep};
use crate::report::FleetReport;
use dlacep_core::Filter;
use dlacep_dur::Store;
use dlacep_events::{AttrValue, TypeId};
use dlacep_obs::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Journal entries per key included in a [`TeleKind::Journal`] reply.
const JOURNAL_TAIL_PER_KEY: usize = 64;

/// Journal capacity of the serving-tier registry created by [`spawn`]
/// (connection lifecycle + shed/shutdown events, not per-event traffic).
const SERVE_JOURNAL_CAPACITY: usize = 256;

/// Which live telemetry document a [`ServeHandle::telemetry`] call asks
/// the pump for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TeleKind {
    /// Prometheus text scrape: per-shard `serve_*` counters, live key
    /// runtime metrics, the ingest queue depth gauge, and the serving
    /// tier's own `serve_conn_*`/`serve_shed_*` counters.
    Metrics,
    /// JSON liveness document (fleet position, per-shard lag and modes).
    Healthz,
    /// Chrome trace-event JSON of the sampled trace ring.
    Traces,
    /// JSON tail of every key runtime's journal plus the serving tier's
    /// own journal (connection lifecycle, shedding, shutdown).
    Journal,
}

enum Command {
    Ingest {
        type_id: TypeId,
        ts: u64,
        attrs: Vec<AttrValue>,
    },
    Sync {
        done: SyncSender<Result<(), String>>,
    },
    Checkpoint {
        done: SyncSender<Result<(), String>>,
    },
    Stats {
        reply: SyncSender<Result<FleetStats, String>>,
    },
    Telemetry {
        kind: TeleKind,
        reply: SyncSender<String>,
    },
}

/// Serving-tier failures surfaced to front-end callers.
#[derive(Debug)]
pub enum ServeError {
    /// The pump thread is gone (fleet already finished or panicked).
    Closed,
    /// The fleet rejected an operation; the message is the rendered
    /// [`FleetError`] (errors cross the thread as strings).
    Fleet(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "serve: ingest pump is closed"),
            ServeError::Fleet(msg) => write!(f, "serve: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Cloneable ingest handle. Sends block when the channel is full
/// (backpressure) and fail with [`ServeError::Closed`] once the pump is
/// finished, or with the stored fleet error once the pump is poisoned.
#[derive(Clone)]
pub struct ServeHandle {
    tx: SyncSender<Command>,
    /// Ingest commands sent but not yet applied by the pump — the live
    /// backpressure signal exported as `dlacep_serve_queue_depth`.
    depth: Arc<AtomicU64>,
    /// First fleet error the pump hit, if any. Set once by the pump,
    /// checked by every later ingest so a failing fleet rejects instead
    /// of silently dropping.
    poison: Arc<Mutex<Option<String>>>,
    /// Serving-tier metrics/journal (connection lifecycle, shedding,
    /// shutdown phases) — shared by the front ends, rendered by the pump.
    obs: Arc<Registry>,
}

impl ServeHandle {
    /// Offer one event to the fleet (asynchronous: durability follows the
    /// fleet cadence; call [`sync`](Self::sync) for a barrier).
    pub fn ingest(
        &self,
        type_id: TypeId,
        ts: u64,
        attrs: Vec<AttrValue>,
    ) -> Result<(), ServeError> {
        if let Some(msg) = self.poisoned() {
            return Err(ServeError::Fleet(msg));
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Command::Ingest { type_id, ts, attrs })
            .map_err(|_| {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                ServeError::Closed
            })
    }

    /// Ingest commands currently queued ahead of the pump.
    pub fn queue_depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The stored first fleet error, if the pump has been poisoned.
    pub fn poisoned(&self) -> Option<String> {
        self.poison.lock().expect("poison lock").clone()
    }

    /// The serving-tier registry (connection/shed counters + journal).
    /// Front ends record into it; the pump renders it into telemetry.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Ask the pump to render one live telemetry document. Replies come
    /// from the fleet's current in-memory state — no sync or checkpoint
    /// is forced.
    pub fn telemetry(&self, kind: TeleKind) -> Result<String, ServeError> {
        let (reply, wait) = sync_channel(1);
        self.tx
            .send(Command::Telemetry { kind, reply })
            .map_err(|_| ServeError::Closed)?;
        wait.recv().map_err(|_| ServeError::Closed)
    }

    /// Block until everything offered so far is fsynced in every shard.
    /// Reports the stored fleet error if the pump is poisoned.
    pub fn sync(&self) -> Result<(), ServeError> {
        self.barrier(|done| Command::Sync { done })
    }

    /// Block until a fleet-wide checkpoint has landed. Reports the stored
    /// fleet error if the pump is poisoned.
    pub fn checkpoint(&self) -> Result<(), ServeError> {
        self.barrier(|done| Command::Checkpoint { done })
    }

    fn barrier(
        &self,
        mk: impl FnOnce(SyncSender<Result<(), String>>) -> Command,
    ) -> Result<(), ServeError> {
        let (done, wait) = sync_channel(1);
        self.tx.send(mk(done)).map_err(|_| ServeError::Closed)?;
        match wait.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(msg)) => Err(ServeError::Fleet(msg)),
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Fleet counters after everything sent on this handle so far.
    /// Reports the stored fleet error if the pump is poisoned — a client
    /// must never mistake a partially-applied stream for a healthy one.
    pub fn stats(&self) -> Result<FleetStats, ServeError> {
        let (reply, wait) = sync_channel(1);
        self.tx
            .send(Command::Stats { reply })
            .map_err(|_| ServeError::Closed)?;
        match wait.recv() {
            Ok(Ok(stats)) => Ok(stats),
            Ok(Err(msg)) => Err(ServeError::Fleet(msg)),
            Err(_) => Err(ServeError::Closed),
        }
    }
}

/// Owner side of the pump: join it to obtain the merged fleet report, or
/// take the fleet back out ([`into_fleet`](Self::into_fleet)) to recover
/// or restart it.
pub struct ServePump<F: Filter, S: Store> {
    thread: JoinHandle<(ShardedDlacep<F, S>, Option<FleetError>)>,
    tx: SyncSender<Command>,
}

/// Start the pump thread over `fleet` with a channel of `capacity`
/// in-flight commands. Returns the cloneable ingest handle and the pump.
pub fn spawn<F, S>(fleet: ShardedDlacep<F, S>, capacity: usize) -> (ServeHandle, ServePump<F, S>)
where
    F: Filter + Send + 'static,
    S: Store + Send + 'static,
{
    let (tx, rx) = sync_channel(capacity.max(1));
    let depth = Arc::new(AtomicU64::new(0));
    let poison = Arc::new(Mutex::new(None));
    let obs = Arc::new(Registry::with_journal_capacity(SERVE_JOURNAL_CAPACITY));
    let pump_depth = Arc::clone(&depth);
    let pump_poison = Arc::clone(&poison);
    let pump_obs = Arc::clone(&obs);
    let thread = std::thread::spawn(move || pump(fleet, rx, pump_depth, pump_poison, pump_obs));
    (
        ServeHandle {
            tx: tx.clone(),
            depth,
            poison,
            obs,
        },
        ServePump { thread, tx },
    )
}

fn pump<F: Filter, S: Store>(
    mut fleet: ShardedDlacep<F, S>,
    rx: Receiver<Command>,
    depth: Arc<AtomicU64>,
    poison: Arc<Mutex<Option<String>>>,
    obs: Arc<Registry>,
) -> (ShardedDlacep<F, S>, Option<FleetError>) {
    let mut first_err: Option<FleetError> = None;
    let fail = |e: FleetError, slot: &mut Option<FleetError>| {
        let msg = e.to_string();
        *poison.lock().expect("poison lock") = Some(msg.clone());
        if slot.is_none() {
            *slot = Some(e);
        }
        msg
    };
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Ingest { type_id, ts, attrs } => {
                depth.fetch_sub(1, Ordering::Relaxed);
                if first_err.is_none() {
                    if let Err(e) = fleet.ingest(type_id, ts, attrs) {
                        fail(e, &mut first_err);
                    }
                }
            }
            Command::Sync { done } => {
                let r = match &first_err {
                    Some(e) => Err(e.to_string()),
                    None => match fleet.sync() {
                        Ok(()) => Ok(()),
                        Err(e) => Err(fail(e, &mut first_err)),
                    },
                };
                let _ = done.send(r);
            }
            Command::Checkpoint { done } => {
                let r = match &first_err {
                    Some(e) => Err(e.to_string()),
                    None => match fleet.checkpoint_now() {
                        Ok(()) => Ok(()),
                        Err(e) => Err(fail(e, &mut first_err)),
                    },
                };
                let _ = done.send(r);
            }
            Command::Stats { reply } => {
                let r = match &first_err {
                    Some(e) => Err(e.to_string()),
                    None => Ok(fleet.stats()),
                };
                let _ = reply.send(r);
            }
            Command::Telemetry { kind, reply } => {
                let body = render_telemetry(&fleet, kind, &depth, &obs);
                let _ = reply.send(body);
            }
        }
    }
    (fleet, first_err)
}

/// Render one telemetry document from the pump's consistent view of the
/// fleet, merging in the serving-tier registry where it belongs.
fn render_telemetry<F: Filter, S: Store>(
    fleet: &ShardedDlacep<F, S>,
    kind: TeleKind,
    depth: &AtomicU64,
    obs: &Registry,
) -> String {
    match kind {
        TeleKind::Metrics => {
            let mut scrape = fleet.render_live_prometheus();
            let queued = depth.load(Ordering::Relaxed);
            scrape.push_str(
                "# HELP dlacep_serve_queue_depth Ingest commands queued ahead of the pump.\n\
                 # TYPE dlacep_serve_queue_depth gauge\n",
            );
            scrape.push_str(&format!("dlacep_serve_queue_depth {queued}\n"));
            // The serving tier's own counters (connection lifecycle,
            // shedding, telemetry truncation) ride the same scrape.
            scrape.push_str(&obs.render_prometheus());
            scrape
        }
        TeleKind::Healthz => fleet.healthz_json(),
        TeleKind::Traces => fleet.traces_json(),
        TeleKind::Journal => {
            let mut out = fleet.journal_json(JOURNAL_TAIL_PER_KEY);
            let serve = serve_journal_items(obs);
            if !serve.is_empty() {
                // Splice the serving-tier entries into the fleet's array.
                out.truncate(out.len() - 1);
                if out.len() > 1 {
                    out.push(',');
                }
                out.push_str(&serve.join(","));
                out.push(']');
            }
            out
        }
    }
}

/// The serving-tier journal as JSON objects shaped like the fleet's
/// per-key entries, tagged `"scope":"serve"` instead of a shard/key.
fn serve_journal_items(obs: &Registry) -> Vec<String> {
    use dlacep_obs::{json_field, json_string};
    let snap = obs.snapshot();
    snap.journal
        .entries
        .iter()
        .map(|e| {
            let mut item = format!(
                "{{\"scope\":\"serve\",\"seq\":{},\"at_nanos\":{},\"kind\":{},\"fields\":{{",
                e.seq,
                e.at_nanos,
                json_string(&e.kind)
            );
            for (fi, (name, value)) in e.fields.iter().enumerate() {
                if fi > 0 {
                    item.push(',');
                }
                item.push_str(&json_string(name));
                item.push(':');
                item.push_str(&json_field(value));
            }
            item.push_str("}}");
            item
        })
        .collect()
}

impl<F: Filter, S: Store> ServePump<F, S> {
    /// Close this side of the command channel and join the pump, returning
    /// the merged fleet report (or the first ingest error the pump
    /// stored). The pump drains only once every outstanding
    /// [`ServeHandle`] clone is dropped too — drop them before calling
    /// this, or `finish` blocks waiting for them.
    pub fn finish(self) -> Result<FleetReport, ServeError> {
        drop(self.tx);
        match self.thread.join() {
            Ok((fleet, None)) => Ok(fleet.finish()),
            Ok((_, Some(e))) => Err(ServeError::Fleet(e.to_string())),
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Close the channel, join the pump, and hand the fleet back *without*
    /// finishing it — the restart path: the caller can
    /// [`checkpoint`](ShardedDlacep::checkpoint_now) it, tear it down via
    /// [`into_stores`](ShardedDlacep::into_stores), or re-[`spawn`] it.
    /// The stored first error (if any) rides along instead of masking the
    /// fleet.
    pub fn into_fleet(self) -> Result<(ShardedDlacep<F, S>, Option<FleetError>), ServeError> {
        drop(self.tx);
        match self.thread.join() {
            Ok((fleet, err)) => Ok((fleet, err)),
            Err(_) => Err(ServeError::Closed),
        }
    }
}
