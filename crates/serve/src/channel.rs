//! In-process ingest front door: a bounded mpsc command channel feeding a
//! single pump thread that owns the fleet.
//!
//! This is the primary tested path of the serving tier. The channel is
//! *bounded* ([`std::sync::mpsc::sync_channel`]) so a slow fleet pushes
//! back on producers instead of buffering without limit — admission
//! control composes with the runtime-level shed/budget machinery rather
//! than hiding behind an unbounded queue. A single pump thread applies
//! commands in channel order, which keeps the fleet's global sequence
//! numbering deterministic for any one producer.

use crate::fleet::{FleetError, FleetStats, ShardedDlacep};
use crate::report::FleetReport;
use dlacep_core::Filter;
use dlacep_dur::Store;
use dlacep_events::{AttrValue, TypeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Journal entries per key included in a [`TeleKind::Journal`] reply.
const JOURNAL_TAIL_PER_KEY: usize = 64;

/// Which live telemetry document a [`ServeHandle::telemetry`] call asks
/// the pump for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TeleKind {
    /// Prometheus text scrape: per-shard `serve_*` counters, live key
    /// runtime metrics, and the ingest queue depth gauge.
    Metrics,
    /// JSON liveness document (fleet position, per-shard lag and modes).
    Healthz,
    /// Chrome trace-event JSON of the sampled trace ring.
    Traces,
    /// JSON tail of every key runtime's journal.
    Journal,
}

enum Command {
    Ingest {
        type_id: TypeId,
        ts: u64,
        attrs: Vec<AttrValue>,
    },
    Sync {
        done: SyncSender<Result<(), String>>,
    },
    Checkpoint {
        done: SyncSender<Result<(), String>>,
    },
    Stats {
        reply: SyncSender<FleetStats>,
    },
    Telemetry {
        kind: TeleKind,
        reply: SyncSender<String>,
    },
}

/// Serving-tier failures surfaced to front-end callers.
#[derive(Debug)]
pub enum ServeError {
    /// The pump thread is gone (fleet already finished or panicked).
    Closed,
    /// The fleet rejected an operation; the message is the rendered
    /// [`FleetError`] (errors cross the thread as strings).
    Fleet(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "serve: ingest pump is closed"),
            ServeError::Fleet(msg) => write!(f, "serve: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Cloneable ingest handle. Sends block when the channel is full
/// (backpressure) and fail with [`ServeError::Closed`] once the pump is
/// finished.
#[derive(Clone)]
pub struct ServeHandle {
    tx: SyncSender<Command>,
    /// Ingest commands sent but not yet applied by the pump — the live
    /// backpressure signal exported as `dlacep_serve_queue_depth`.
    depth: Arc<AtomicU64>,
}

impl ServeHandle {
    /// Offer one event to the fleet (asynchronous: durability follows the
    /// fleet cadence; call [`sync`](Self::sync) for a barrier).
    pub fn ingest(
        &self,
        type_id: TypeId,
        ts: u64,
        attrs: Vec<AttrValue>,
    ) -> Result<(), ServeError> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Command::Ingest { type_id, ts, attrs })
            .map_err(|_| {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                ServeError::Closed
            })
    }

    /// Ingest commands currently queued ahead of the pump.
    pub fn queue_depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Ask the pump to render one live telemetry document. Replies come
    /// from the fleet's current in-memory state — no sync or checkpoint
    /// is forced.
    pub fn telemetry(&self, kind: TeleKind) -> Result<String, ServeError> {
        let (reply, wait) = sync_channel(1);
        self.tx
            .send(Command::Telemetry { kind, reply })
            .map_err(|_| ServeError::Closed)?;
        wait.recv().map_err(|_| ServeError::Closed)
    }

    /// Block until everything offered so far is fsynced in every shard.
    pub fn sync(&self) -> Result<(), ServeError> {
        self.barrier(|done| Command::Sync { done })
    }

    /// Block until a fleet-wide checkpoint has landed.
    pub fn checkpoint(&self) -> Result<(), ServeError> {
        self.barrier(|done| Command::Checkpoint { done })
    }

    fn barrier(
        &self,
        mk: impl FnOnce(SyncSender<Result<(), String>>) -> Command,
    ) -> Result<(), ServeError> {
        let (done, wait) = sync_channel(1);
        self.tx.send(mk(done)).map_err(|_| ServeError::Closed)?;
        match wait.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(msg)) => Err(ServeError::Fleet(msg)),
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Fleet counters after everything sent on this handle so far.
    pub fn stats(&self) -> Result<FleetStats, ServeError> {
        let (reply, wait) = sync_channel(1);
        self.tx
            .send(Command::Stats { reply })
            .map_err(|_| ServeError::Closed)?;
        wait.recv().map_err(|_| ServeError::Closed)
    }
}

/// Owner side of the pump: join it to obtain the merged fleet report.
pub struct ServePump<F: Filter, S: Store> {
    thread: JoinHandle<Result<FleetReport, FleetError>>,
    tx: SyncSender<Command>,
    _marker: std::marker::PhantomData<(F, S)>,
}

/// Start the pump thread over `fleet` with a channel of `capacity`
/// in-flight commands. Returns the cloneable ingest handle and the pump.
pub fn spawn<F, S>(fleet: ShardedDlacep<F, S>, capacity: usize) -> (ServeHandle, ServePump<F, S>)
where
    F: Filter + Send + 'static,
    S: Store + Send + 'static,
{
    let (tx, rx) = sync_channel(capacity.max(1));
    let depth = Arc::new(AtomicU64::new(0));
    let pump_depth = Arc::clone(&depth);
    let thread = std::thread::spawn(move || pump(fleet, rx, pump_depth));
    (
        ServeHandle {
            tx: tx.clone(),
            depth,
        },
        ServePump {
            thread,
            tx,
            _marker: std::marker::PhantomData,
        },
    )
}

fn pump<F: Filter, S: Store>(
    mut fleet: ShardedDlacep<F, S>,
    rx: Receiver<Command>,
    depth: Arc<AtomicU64>,
) -> Result<FleetReport, FleetError> {
    let mut first_err: Option<FleetError> = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Ingest { type_id, ts, attrs } => {
                depth.fetch_sub(1, Ordering::Relaxed);
                if first_err.is_none() {
                    if let Err(e) = fleet.ingest(type_id, ts, attrs) {
                        first_err = Some(e);
                    }
                }
            }
            Command::Sync { done } => {
                let r = fleet.sync().map_err(|e| e.to_string());
                let _ = done.send(r);
            }
            Command::Checkpoint { done } => {
                let r = fleet.checkpoint_now().map_err(|e| e.to_string());
                let _ = done.send(r);
            }
            Command::Stats { reply } => {
                let _ = reply.send(fleet.stats());
            }
            Command::Telemetry { kind, reply } => {
                let body = match kind {
                    TeleKind::Metrics => {
                        let mut scrape = fleet.render_live_prometheus();
                        let queued = depth.load(Ordering::Relaxed);
                        scrape.push_str(
                            "# HELP dlacep_serve_queue_depth Ingest commands queued ahead of the pump.\n\
                             # TYPE dlacep_serve_queue_depth gauge\n",
                        );
                        scrape.push_str(&format!("dlacep_serve_queue_depth {queued}\n"));
                        scrape
                    }
                    TeleKind::Healthz => fleet.healthz_json(),
                    TeleKind::Traces => fleet.traces_json(),
                    TeleKind::Journal => fleet.journal_json(JOURNAL_TAIL_PER_KEY),
                };
                let _ = reply.send(body);
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(fleet.finish()),
    }
}

impl<F: Filter, S: Store> ServePump<F, S> {
    /// Close this side of the command channel and join the pump, returning
    /// the merged fleet report (or the first ingest error the pump
    /// swallowed). The pump drains only once every outstanding
    /// [`ServeHandle`] clone is dropped too — drop them before calling
    /// this, or `finish` blocks waiting for them.
    pub fn finish(self) -> Result<FleetReport, ServeError> {
        drop(self.tx);
        match self.thread.join() {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(e)) => Err(ServeError::Fleet(e.to_string())),
            Err(_) => Err(ServeError::Closed),
        }
    }
}
