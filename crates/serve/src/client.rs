//! Reconnecting wire client with crash-recovery re-feed.
//!
//! [`ResilientClient`] wraps [`WireClient`] with the three behaviours a
//! long-lived producer needs against a server that restarts, sheds load,
//! or sits behind a flaky network:
//!
//! - **Timeouts + capped backoff.** Connects with a deadline, stamps
//!   read/write timeouts on the socket, and retries failed operations
//!   under capped exponential backoff with deterministic jitter (a seeded
//!   xorshift64 — no system clock, no system randomness — so a test run
//!   with a fixed [`ClientConfig::jitter_seed`] replays bit-identically).
//! - **Send buffer + resume re-feed.** Every offered event is stamped
//!   with the fleet-global sequence number `g` it will receive on the
//!   server (the client is the fleet's single producer, so its send order
//!   *is* the global order) and held in a buffer until a `Summary`'s
//!   `prune_to` horizon covers it (`g <= min(high_water)` — acked events
//!   above the horizon stay buffered, because a future recovery's
//!   `resume_seq` can reach back exactly that far and re-feeds must be
//!   positional). On reconnect — or after an `Overloaded` shed —
//!   the client sends [`WireMsg::Hello`], learns the server's
//!   `resume_seq`, and re-feeds every buffered event with `g >=
//!   resume_seq`. Events a shard already applied are dropped server-side
//!   as `refeed_skipped`, so ingestion stays exactly-once-observable
//!   across server restarts.
//! - **Overload etiquette.** An `Overloaded { retry_after_ms }` reply is
//!   honoured: the client backs off at least that long before the
//!   `Hello` re-sync, instead of hammering a shedding server.
//!
//! The buffer is unbounded by design: the producer owns durability of
//! unacked events, and callers that need bounds should `flush()`
//! periodically (a successful flush prunes everything acked).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use dlacep_events::TypeId;

use crate::server::WireClient;
use crate::wire::{WireError, WireMsg};

/// Env override for [`ClientConfig::connect_timeout`] (milliseconds).
pub const CLIENT_CONNECT_TIMEOUT_ENV: &str = "DLACEP_CLIENT_CONNECT_TIMEOUT_MS";
/// Env override for [`ClientConfig::io_timeout`] (milliseconds).
pub const CLIENT_IO_TIMEOUT_ENV: &str = "DLACEP_CLIENT_IO_TIMEOUT_MS";
/// Env override for [`ClientConfig::backoff_base`] (milliseconds).
pub const CLIENT_BACKOFF_BASE_ENV: &str = "DLACEP_CLIENT_BACKOFF_BASE_MS";
/// Env override for [`ClientConfig::backoff_max`] (milliseconds).
pub const CLIENT_BACKOFF_MAX_ENV: &str = "DLACEP_CLIENT_BACKOFF_MAX_MS";
/// Env override for [`ClientConfig::max_retries`].
pub const CLIENT_MAX_RETRIES_ENV: &str = "DLACEP_CLIENT_MAX_RETRIES";

/// Tuning knobs for [`ResilientClient`]. All durations are wall-clock;
/// the jitter source is seeded and deterministic.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for each TCP connect attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout stamped on the connected socket.
    pub io_timeout: Duration,
    /// First backoff delay; doubles each consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling (the cap of the exponential).
    pub backoff_max: Duration,
    /// Consecutive failed attempts tolerated per operation before the
    /// operation surfaces [`ClientError::RetriesExhausted`].
    pub max_retries: u32,
    /// Seed for the deterministic jitter PRNG. Two clients with the same
    /// seed and the same failure sequence back off identically.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(1000),
            io_timeout: Duration::from_millis(2000),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            max_retries: 16,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl ClientConfig {
    /// Defaults with `DLACEP_CLIENT_*` env overrides applied. Unset or
    /// unparsable variables keep the default.
    pub fn from_env() -> Self {
        let mut cfg = ClientConfig::default();
        if let Some(ms) = env_u64(CLIENT_CONNECT_TIMEOUT_ENV) {
            cfg.connect_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = env_u64(CLIENT_IO_TIMEOUT_ENV) {
            cfg.io_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = env_u64(CLIENT_BACKOFF_BASE_ENV) {
            cfg.backoff_base = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = env_u64(CLIENT_BACKOFF_MAX_ENV) {
            cfg.backoff_max = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = env_u64(CLIENT_MAX_RETRIES_ENV) {
            cfg.max_retries = n.min(u64::from(u32::MAX)) as u32;
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Why a [`ResilientClient`] operation gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The configured address resolved to nothing.
    NoAddr(String),
    /// A wire/transport failure that is not retried (protocol violation).
    Wire(WireError),
    /// Every retry budgeted by [`ClientConfig::max_retries`] failed;
    /// `last` is the final attempt's rendered error. A server whose
    /// state was wiped underneath an established session surfaces here
    /// too: its summaries can never ack the buffered tail, so each flush
    /// retry reports how many events stayed buffered.
    RetriesExhausted { attempts: u32, last: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoAddr(addr) => write!(f, "client: no usable address in {addr:?}"),
            ClientError::Wire(e) => write!(f, "client: {e}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "client: gave up after {attempts} attempts; last: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Counters a [`ResilientClient`] keeps about its own resilience work.
/// All monotonic; read them after a run to see what the client survived.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful (re)connections, including the first.
    pub connects: u64,
    /// Connections declared dead after an i/o failure.
    pub conn_drops: u64,
    /// Backoff sleeps taken.
    pub backoffs: u64,
    /// `Overloaded` replies observed.
    pub overloaded_seen: u64,
    /// `Hello`/`Resume` re-sync handshakes completed.
    pub resyncs: u64,
    /// Buffered events re-fed after a resume.
    pub refed_events: u64,
    /// Events pruned from the buffer after a `Summary` ack.
    pub acked_events: u64,
}

/// One unacked event parked in the send buffer, stamped with the
/// fleet-global sequence number the server assigns it.
#[derive(Debug, Clone)]
struct Pending {
    g: u64,
    type_id: TypeId,
    ts: u64,
    attrs: Vec<f64>,
}

/// A [`WireClient`] that survives disconnects, server restarts, and
/// overload shedding. See the module docs for the resume protocol.
pub struct ResilientClient {
    addr: String,
    cfg: ClientConfig,
    conn: Option<WireClient>,
    buf: VecDeque<Pending>,
    /// Fleet-global sequence number the *next* offered event receives.
    next_g: u64,
    /// Consecutive failures feeding the exponential backoff; reset on
    /// any successful round trip.
    strikes: u32,
    rng: u64,
    stats: ClientStats,
}

impl ResilientClient {
    /// Create a client for `addr` and establish the first session
    /// (connect + `Hello`), retrying under backoff.
    pub fn connect(addr: impl Into<String>, cfg: ClientConfig) -> Result<Self, ClientError> {
        let mut c = ResilientClient {
            addr: addr.into(),
            // xorshift64 must not start at 0; fold the seed through a
            // odd constant so even seed 0 yields a live stream.
            rng: cfg.jitter_seed | 1,
            cfg,
            conn: None,
            buf: VecDeque::new(),
            next_g: 1,
            strikes: 0,
            stats: ClientStats::default(),
        };
        c.ensure_session()?;
        Ok(c)
    }

    /// Resilience counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Unacked events currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Fleet-global sequence number the next offered event will carry.
    pub fn position(&self) -> u64 {
        self.next_g
    }

    /// Offer one event. Always succeeds locally: the event is stamped
    /// and buffered, then opportunistically written to the live
    /// connection. A dead connection is noted and repaired on the next
    /// [`flush`](Self::flush) — ingest never blocks on reconnection.
    pub fn ingest(&mut self, type_id: TypeId, ts: u64, attrs: Vec<f64>) {
        let g = self.next_g;
        self.next_g += 1;
        self.buf.push_back(Pending {
            g,
            type_id,
            ts,
            attrs: attrs.clone(),
        });
        if let Some(conn) = self.conn.as_mut() {
            if conn.ingest(type_id, ts, attrs).is_err() {
                self.drop_conn();
            }
        }
    }

    /// Flush everything offered so far to a durable, acked position:
    /// drives reconnect + `Hello`/`Resume` re-feed until the server
    /// returns a `Summary` acking the full buffer, then returns that
    /// summary as `(offered, matches, keys, refeed_skipped)`.
    pub fn flush(&mut self) -> Result<(u64, u64, u64, u64), ClientError> {
        let mut attempts = 0u32;
        let mut last = String::from("no attempt made");
        while attempts <= self.cfg.max_retries {
            attempts += 1;
            if let Err(e) = self.ensure_session() {
                match e {
                    ClientError::RetriesExhausted { .. } | ClientError::Wire(_) => {
                        last = e.to_string();
                        continue;
                    }
                    other => return Err(other),
                }
            }
            match self.flush_once() {
                Ok(summary) => {
                    self.strikes = 0;
                    return Ok(summary);
                }
                Err(FlushFail::Overloaded { retry_after_ms }) => {
                    self.stats.overloaded_seen += 1;
                    last = format!("server overloaded (retry after {retry_after_ms} ms)");
                    self.backoff_at_least(Duration::from_millis(retry_after_ms));
                    // Same connection is still good — re-sync clears the
                    // server's shed latch and tells us where to re-feed.
                    if let Err(e) = self.resync() {
                        last = e.to_string();
                    }
                }
                Err(FlushFail::Gone(msg)) => {
                    last = msg;
                    self.drop_conn();
                    self.backoff();
                }
                Err(FlushFail::Fatal(e)) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    /// Fetch one telemetry document over the live session (reconnecting
    /// first if needed).
    pub fn telemetry(&mut self, endpoint: &str) -> Result<String, ClientError> {
        self.ensure_session()?;
        let conn = self.conn.as_mut().expect("ensure_session leaves a conn");
        match conn.telemetry(endpoint) {
            Ok(body) => Ok(body),
            Err(e) => {
                self.drop_conn();
                Err(ClientError::Wire(e))
            }
        }
    }

    // ---- internals -----------------------------------------------------

    fn drop_conn(&mut self) {
        if self.conn.take().is_some() {
            self.stats.conn_drops += 1;
        }
    }

    /// Dial + handshake until a session exists, under backoff.
    fn ensure_session(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut attempts = 0u32;
        let mut last = String::from("no attempt made");
        while attempts <= self.cfg.max_retries {
            attempts += 1;
            match self.try_connect() {
                Ok(()) => return Ok(()),
                Err(ClientError::Wire(e)) => {
                    last = e.to_string();
                    self.drop_conn();
                    self.backoff();
                }
                Err(other) => return Err(other),
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    /// One dial + `Hello` + re-feed attempt.
    fn try_connect(&mut self) -> Result<(), ClientError> {
        let target = resolve(&self.addr)?;
        let stream = TcpStream::connect_timeout(&target, self.cfg.connect_timeout)
            .map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        let conn =
            WireClient::from_stream(stream).map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        conn.set_io_timeout(Some(self.cfg.io_timeout))
            .map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        self.conn = Some(conn);
        self.stats.connects += 1;
        self.resync()?;
        self.strikes = 0;
        Ok(())
    }

    /// `Hello` → `Resume { resume_seq }` → re-feed the buffer from
    /// `resume_seq` on the current connection.
    fn resync(&mut self) -> Result<(), ClientError> {
        let conn = match self.conn.as_mut() {
            Some(c) => c,
            None => {
                return Err(ClientError::Wire(WireError::Protocol(
                    "no connection".into(),
                )))
            }
        };
        let resume_seq = match conn.hello() {
            Ok(r) => r,
            Err(e) => {
                self.drop_conn();
                return Err(ClientError::Wire(e));
            }
        };
        self.align(resume_seq)?;
        let conn = self.conn.as_mut().expect("alive above");
        let mut refed = 0u64;
        for p in self.buf.iter().filter(|p| p.g >= resume_seq) {
            if let Err(e) = conn.send(&WireMsg::Ingest {
                type_id: p.type_id,
                ts: p.ts,
                attrs: p.attrs.clone(),
            }) {
                self.drop_conn();
                return Err(ClientError::Wire(e));
            }
            refed += 1;
        }
        if let Some(conn) = self.conn.as_mut() {
            if let Err(e) = conn.flush_wire() {
                self.drop_conn();
                return Err(ClientError::Wire(e));
            }
        }
        self.stats.resyncs += 1;
        self.stats.refed_events += refed;
        Ok(())
    }

    /// Validate the server's resume point against the local buffer.
    ///
    /// The prune-horizon contract makes the legal window exact: the
    /// buffer head is `prune_to + 1` of the last ack, every future
    /// `resume_seq` is `min(high_water) + 1 >= prune_to + 1`, and a
    /// single producer can never see a resume point ahead of its own
    /// position. Anything outside `[buffer head, next_g]` means the
    /// server's state was reset or belongs to a different producer.
    fn align(&mut self, resume_seq: u64) -> Result<(), ClientError> {
        if resume_seq > self.next_g {
            if self.buf.is_empty() && self.stats.acked_events == 0 {
                // Fresh producer joining a fleet with history: adopt the
                // server's position as our own.
                self.next_g = resume_seq;
                return Ok(());
            }
            return Err(ClientError::Wire(WireError::Protocol(format!(
                "server resume_seq {resume_seq} is ahead of producer position {}",
                self.next_g
            ))));
        }
        let floor = self.buf.front().map_or(self.next_g, |p| p.g);
        if resume_seq < floor {
            return Err(ClientError::Wire(WireError::Protocol(format!(
                "server resume_seq {resume_seq} regressed below the prune horizon {floor}; \
                 acked events were lost server-side"
            ))));
        }
        Ok(())
    }

    /// One `Flush` round trip on the live connection.
    fn flush_once(&mut self) -> Result<(u64, u64, u64, u64), FlushFail> {
        let conn = match self.conn.as_mut() {
            Some(c) => c,
            None => return Err(FlushFail::Gone("no connection".into())),
        };
        if let Err(e) = conn.send(&WireMsg::Flush).and_then(|()| conn.flush_wire()) {
            return Err(FlushFail::Gone(e.to_string()));
        }
        // Frames before the Summary may be stale Overloaded replies to
        // shed ingests; any one of them means part of the stream was
        // dropped, so surface the overload and re-sync.
        match conn.recv() {
            Ok(Some(WireMsg::Summary {
                offered,
                matches,
                keys,
                refeed_skipped,
                prune_to,
            })) => {
                // Prune only to the server's horizon, not to `offered`:
                // re-feeds must start exactly at a future `resume_seq`,
                // which can reach back to min(high_water) + 1 — everything
                // above the horizon stays buffered even though it is
                // acked and durable.
                let before = self.buf.len();
                while self.buf.front().is_some_and(|p| p.g <= prune_to) {
                    self.buf.pop_front();
                }
                self.stats.acked_events += (before - self.buf.len()) as u64;
                if offered + 1 >= self.next_g {
                    Ok((offered, matches, keys, refeed_skipped))
                } else {
                    // The fleet position never caught up to what this
                    // producer offered — a wiped or foreign server. Retry
                    // (and ultimately surface) rather than ack silently.
                    Err(FlushFail::Gone(format!(
                        "summary position {} below producer position {}",
                        offered,
                        self.next_g - 1
                    )))
                }
            }
            Ok(Some(WireMsg::Overloaded { retry_after_ms })) => {
                Err(FlushFail::Overloaded { retry_after_ms })
            }
            // A server Error reply condemns the *connection* (framing
            // diagnosis, rejected ingest), not the session: reconnect and
            // re-feed. A persistent server-side failure keeps producing
            // the same Error and surfaces as RetriesExhausted carrying it.
            Ok(Some(WireMsg::Error { message })) => {
                Err(FlushFail::Gone(format!("server error: {message}")))
            }
            Ok(Some(other)) => Err(FlushFail::Fatal(ClientError::Wire(WireError::Protocol(
                format!("expected Summary, got {other:?}"),
            )))),
            Ok(None) => Err(FlushFail::Gone("server closed before Summary".into())),
            Err(e) => Err(FlushFail::Gone(e.to_string())),
        }
    }

    /// Deterministic xorshift64 step.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Capped exponential backoff with jitter in `[delay/2, delay]`.
    fn backoff_delay(&mut self) -> Duration {
        let exp = self.strikes.min(16);
        self.strikes = self.strikes.saturating_add(1);
        let base = self.cfg.backoff_base.as_millis() as u64;
        let cap = self.cfg.backoff_max.as_millis() as u64;
        let full = base.saturating_mul(1u64 << exp).min(cap.max(1));
        let half = (full / 2).max(1);
        let jittered = half + self.next_rand() % (full - half + 1);
        Duration::from_millis(jittered)
    }

    fn backoff(&mut self) {
        let d = self.backoff_delay();
        self.stats.backoffs += 1;
        std::thread::sleep(d);
    }

    /// Backoff, honouring the server's `retry_after_ms` as a floor.
    fn backoff_at_least(&mut self, floor: Duration) {
        let d = self.backoff_delay().max(floor);
        self.stats.backoffs += 1;
        std::thread::sleep(d);
    }
}

/// Internal classification of a flush attempt's failure.
enum FlushFail {
    /// Server shed the flush (or a prior ingest); back off + re-sync.
    Overloaded { retry_after_ms: u64 },
    /// Connection is unusable; reconnect and retry.
    Gone(String),
    /// Not retryable.
    Fatal(ClientError),
}

fn resolve(addr: &str) -> Result<SocketAddr, ClientError> {
    match addr.to_socket_addrs() {
        Ok(mut it) => it.next().ok_or_else(|| ClientError::NoAddr(addr.into())),
        Err(e) => Err(ClientError::Wire(WireError::Io(e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            max_retries: 3,
            jitter_seed: 42,
        }
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let mk = || ResilientClient {
            addr: "127.0.0.1:1".into(),
            cfg: test_cfg(),
            conn: None,
            buf: VecDeque::new(),
            next_g: 1,
            strikes: 0,
            rng: test_cfg().jitter_seed | 1,
            stats: ClientStats::default(),
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..32 {
            assert_eq!(a.backoff_delay(), b.backoff_delay());
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut c = ResilientClient {
            addr: "127.0.0.1:1".into(),
            cfg: ClientConfig {
                backoff_base: Duration::from_millis(10),
                backoff_max: Duration::from_millis(100),
                ..test_cfg()
            },
            conn: None,
            buf: VecDeque::new(),
            next_g: 1,
            strikes: 0,
            rng: 42 | 1,
            stats: ClientStats::default(),
        };
        let first = c.backoff_delay();
        assert!(first >= Duration::from_millis(5) && first <= Duration::from_millis(10));
        for _ in 0..10 {
            let d = c.backoff_delay();
            assert!(d <= Duration::from_millis(100), "cap violated: {d:?}");
        }
        // After many strikes the delay sits in [cap/2, cap].
        let late = c.backoff_delay();
        assert!(late >= Duration::from_millis(50));
    }

    #[test]
    fn connect_to_dead_addr_exhausts_retries() {
        // Port 1 refuses immediately on loopback, so this is fast.
        let err = ResilientClient::connect("127.0.0.1:1", test_cfg())
            .err()
            .expect("must not connect");
        match err {
            ClientError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 4),
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn align_adopts_fresh_position_and_rejects_ahead() {
        let mut c = ResilientClient {
            addr: "127.0.0.1:1".into(),
            cfg: test_cfg(),
            conn: None,
            buf: VecDeque::new(),
            next_g: 1,
            strikes: 0,
            rng: 43,
            stats: ClientStats::default(),
        };
        // Fresh producer adopts server history.
        c.align(7).unwrap();
        assert_eq!(c.position(), 7);
        c.buf.push_back(Pending {
            g: 7,
            type_id: TypeId(1),
            ts: 0,
            attrs: vec![],
        });
        c.next_g = 8;
        // Resume below the buffer head violates the prune-horizon
        // contract (the head *is* the last ack's prune_to + 1).
        assert!(matches!(c.align(3), Err(ClientError::Wire(_))));
        // Resume ahead of an established producer is a protocol error.
        assert!(matches!(c.align(9), Err(ClientError::Wire(_))));
        // In-window resumes are fine.
        c.align(7).unwrap();
        c.align(8).unwrap();
    }
}
