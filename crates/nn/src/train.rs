//! Generic training-loop utilities: mini-batching, the paper's batch-size
//! schedule, and its convergence criterion (§5.1: training stops at the first
//! epoch where the loss stays within a 0.01 band for 5 consecutive epochs).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The paper's convergence rule: stop once the epoch loss has stayed within
/// `threshold` of its running reference for `patience` consecutive epochs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceDetector {
    threshold: f32,
    patience: usize,
    reference: Option<f32>,
    stable: usize,
}

impl ConvergenceDetector {
    /// Custom threshold/patience.
    pub fn new(threshold: f32, patience: usize) -> Self {
        Self {
            threshold,
            patience,
            reference: None,
            stable: 0,
        }
    }

    /// The paper's values: 0.01 band, 5 epochs.
    pub fn paper_default() -> Self {
        Self::new(0.01, 5)
    }

    /// Feed one epoch loss; returns `true` once converged.
    pub fn observe(&mut self, loss: f32) -> bool {
        match self.reference {
            Some(r) if (loss - r).abs() <= self.threshold => {
                self.stable += 1;
            }
            _ => {
                self.reference = Some(loss);
                self.stable = 0;
            }
        }
        self.stable >= self.patience
    }

    /// Epochs the loss has currently been stable.
    pub fn stable_epochs(&self) -> usize {
        self.stable
    }
}

/// The paper's batch-size schedule: 512 for the first half of training,
/// 256 afterwards (§5.1 "batch size varied from 512 to 256"). At the reduced
/// scales used in this reproduction the sizes are configurable.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchSchedule {
    /// Batch size early in training.
    pub initial: usize,
    /// Batch size after `switch_epoch`.
    pub later: usize,
    /// Epoch at which to switch.
    pub switch_epoch: usize,
}

impl BatchSchedule {
    /// Constant batch size.
    pub fn constant(size: usize) -> Self {
        Self {
            initial: size,
            later: size,
            switch_epoch: usize::MAX,
        }
    }

    /// The paper's 512 → 256 schedule, switching at `switch_epoch`.
    pub fn paper_default(switch_epoch: usize) -> Self {
        Self {
            initial: 512,
            later: 256,
            switch_epoch,
        }
    }

    /// Batch size at a (0-based) epoch.
    pub fn at(&self, epoch: usize) -> usize {
        if epoch < self.switch_epoch {
            self.initial
        } else {
            self.later
        }
    }
}

/// Deterministic mini-batch index sampler: shuffles `0..n` each epoch and
/// yields chunks. The trailing short batch is included.
#[derive(Debug)]
pub struct BatchSampler {
    rng: StdRng,
    n: usize,
}

impl BatchSampler {
    /// Sampler over `n` examples with a fixed seed.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            n,
        }
    }

    /// Shuffled batches for one epoch.
    pub fn epoch(&mut self, batch_size: usize) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(&mut self.rng);
        idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
    /// Whether the convergence criterion fired (vs. hitting the epoch cap).
    pub converged: bool,
    /// Number of epochs actually run.
    pub epochs_run: usize,
}

/// Result of one optimizer step: the batch loss plus the pre-clip global
/// gradient norm, so training loops can surface both to observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStep {
    /// Mean batch loss.
    pub loss: f32,
    /// Global gradient norm before clipping.
    pub grad_norm: f32,
}

/// Record one training epoch into `registry`: gauges `train.loss`,
/// `train.grad_norm` and `train.lr` track the latest values, and a
/// `train.epoch` journal entry captures the full tuple for post-hoc
/// inspection. A no-op on a disabled registry.
pub fn record_epoch(
    registry: &dlacep_obs::Registry,
    epoch: usize,
    loss: f32,
    grad_norm: f32,
    lr: f32,
) {
    registry.gauge("train.loss").set(f64::from(loss));
    registry.gauge("train.grad_norm").set(f64::from(grad_norm));
    registry.gauge("train.lr").set(f64::from(lr));
    registry.record(
        "train.epoch",
        &[
            ("epoch", epoch.into()),
            ("loss", loss.into()),
            ("grad_norm", grad_norm.into()),
            ("lr", lr.into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_fires_after_patience() {
        let mut d = ConvergenceDetector::new(0.01, 3);
        assert!(!d.observe(1.0));
        assert!(!d.observe(0.995));
        assert!(!d.observe(1.004));
        assert!(d.observe(0.999));
    }

    #[test]
    fn convergence_resets_on_jump() {
        let mut d = ConvergenceDetector::new(0.01, 2);
        assert!(!d.observe(1.0));
        assert!(!d.observe(1.001));
        assert!(!d.observe(0.5)); // big improvement resets the reference
        assert!(!d.observe(0.501));
        assert!(d.observe(0.5005));
    }

    #[test]
    fn batch_schedule_switches() {
        let s = BatchSchedule::paper_default(10);
        assert_eq!(s.at(0), 512);
        assert_eq!(s.at(9), 512);
        assert_eq!(s.at(10), 256);
        let c = BatchSchedule::constant(64);
        assert_eq!(c.at(1_000_000), 64);
    }

    #[test]
    fn sampler_covers_all_indices() {
        let mut s = BatchSampler::new(10, 0);
        let batches = s.epoch(3);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let a: Vec<_> = BatchSampler::new(8, 5).epoch(4);
        let b: Vec<_> = BatchSampler::new(8, 5).epoch(4);
        assert_eq!(a, b);
    }

    #[test]
    fn record_epoch_sets_gauges_and_journals() {
        let reg = dlacep_obs::Registry::enabled();
        record_epoch(&reg, 3, 0.25, 1.5, 0.01);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.get("train.loss"), Some(&0.25));
        assert_eq!(snap.gauges.get("train.grad_norm"), Some(&1.5));
        assert_eq!(snap.gauges.get("train.lr"), Some(&f64::from(0.01f32)));
        let entries = &snap.journal.entries;
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, "train.epoch");
    }

    #[test]
    fn record_epoch_is_inert_when_disabled() {
        let reg = dlacep_obs::Registry::disabled();
        record_epoch(&reg, 0, 1.0, 2.0, 0.1);
        let snap = reg.snapshot();
        assert!(snap.gauges.is_empty());
        assert!(snap.journal.entries.is_empty());
    }

    #[test]
    fn sampler_epochs_differ() {
        let mut s = BatchSampler::new(32, 1);
        let a = s.epoch(32);
        let b = s.epoch(32);
        assert_ne!(a, b, "two epochs should shuffle differently");
    }
}
