//! Linear-chain conditional random fields, and the bidirectional BI-CRF head
//! the event-network uses (paper §2.2, §4.3, Fig. 7).
//!
//! Exact inference throughout: the partition function via the forward
//! algorithm, gradients via forward–backward marginals, decoding via Viterbi.
//! The gradient w.r.t. the emissions is returned to the caller, which seeds
//! it back into the autodiff tape ([`crate::graph::Graph::backward_seeded`]);
//! the transition/start/end gradients accumulate directly into the
//! [`ParamStore`].

use crate::init::Initializer;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};

fn log_sum_exp(xs: &[f32]) -> f32 {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if m == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f32>().ln()
}

/// A linear-chain CRF over `num_labels` labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Crf {
    /// Number of labels (2 for DLACEP event marking).
    pub num_labels: usize,
    trans: ParamId,
    start: ParamId,
    end: ParamId,
}

impl Crf {
    /// Allocate transition (`L×L`), start and end (`1×L`) scores.
    pub fn new(store: &mut ParamStore, init: &mut Initializer, num_labels: usize) -> Self {
        assert!(num_labels >= 2, "CRF needs at least two labels");
        let trans = store.register(init.uniform(num_labels, num_labels, -0.1, 0.1));
        let start = store.register(init.uniform(1, num_labels, -0.1, 0.1));
        let end = store.register(init.uniform(1, num_labels, -0.1, 0.1));
        Self {
            num_labels,
            trans,
            start,
            end,
        }
    }

    /// Parameter handles `(transition, start, end)` (read access for e.g.
    /// the quantized-inference head, which keeps the CRF in f32).
    pub fn params(&self) -> (ParamId, ParamId, ParamId) {
        (self.trans, self.start, self.end)
    }

    /// Unnormalized score of a label path.
    pub fn path_score(&self, store: &ParamStore, emissions: &Matrix, path: &[usize]) -> f32 {
        debug_assert_eq!(emissions.rows(), path.len());
        let trans = store.value(self.trans);
        let start = store.value(self.start);
        let end = store.value(self.end);
        let mut s = start.get(0, path[0]) + emissions.get(0, path[0]);
        for t in 1..path.len() {
            s += trans.get(path[t - 1], path[t]) + emissions.get(t, path[t]);
        }
        s + end.get(0, path[path.len() - 1])
    }

    fn forward_alphas(&self, store: &ParamStore, emissions: &Matrix) -> Matrix {
        let (t_len, l) = emissions.shape();
        let trans = store.value(self.trans);
        let start = store.value(self.start);
        let mut alpha = Matrix::zeros(t_len, l);
        for j in 0..l {
            alpha.set(0, j, start.get(0, j) + emissions.get(0, j));
        }
        let mut scratch = vec![0.0_f32; l];
        for t in 1..t_len {
            for j in 0..l {
                for (i, s) in scratch.iter_mut().enumerate() {
                    *s = alpha.get(t - 1, i) + trans.get(i, j);
                }
                alpha.set(t, j, log_sum_exp(&scratch) + emissions.get(t, j));
            }
        }
        alpha
    }

    fn backward_betas(&self, store: &ParamStore, emissions: &Matrix) -> Matrix {
        let (t_len, l) = emissions.shape();
        let trans = store.value(self.trans);
        let end = store.value(self.end);
        let mut beta = Matrix::zeros(t_len, l);
        for i in 0..l {
            beta.set(t_len - 1, i, end.get(0, i));
        }
        let mut scratch = vec![0.0_f32; l];
        for t in (0..t_len - 1).rev() {
            for i in 0..l {
                for (j, s) in scratch.iter_mut().enumerate() {
                    *s = trans.get(i, j) + emissions.get(t + 1, j) + beta.get(t + 1, j);
                }
                beta.set(t, i, log_sum_exp(&scratch));
            }
        }
        beta
    }

    /// Log partition function.
    pub fn log_z(&self, store: &ParamStore, emissions: &Matrix) -> f32 {
        let alpha = self.forward_alphas(store, emissions);
        let end = store.value(self.end);
        let t_last = emissions.rows() - 1;
        let finals: Vec<f32> = (0..self.num_labels)
            .map(|l| alpha.get(t_last, l) + end.get(0, l))
            .collect();
        log_sum_exp(&finals)
    }

    /// Negative log-likelihood of the gold path.
    pub fn nll(&self, store: &ParamStore, emissions: &Matrix, gold: &[usize]) -> f32 {
        self.log_z(store, emissions) - self.path_score(store, emissions, gold)
    }

    /// Posterior unary marginals `P(y_t = l)` as a `T×L` matrix.
    pub fn marginals(&self, store: &ParamStore, emissions: &Matrix) -> Matrix {
        let alpha = self.forward_alphas(store, emissions);
        let beta = self.backward_betas(store, emissions);
        let logz = {
            let end = store.value(self.end);
            let t_last = emissions.rows() - 1;
            let finals: Vec<f32> = (0..self.num_labels)
                .map(|l| alpha.get(t_last, l) + end.get(0, l))
                .collect();
            log_sum_exp(&finals)
        };
        let (t_len, l) = emissions.shape();
        Matrix::from_fn(t_len, l, |t, j| {
            (alpha.get(t, j) + beta.get(t, j) - logz).exp()
        })
    }

    /// NLL plus its gradients: returns `(nll, d nll / d emissions)` and
    /// accumulates the transition/start/end gradients (scaled by `scale`)
    /// into the store. The emission gradient is *also* scaled by `scale` so
    /// callers can average over a batch.
    pub fn nll_backward(
        &self,
        store: &mut ParamStore,
        emissions: &Matrix,
        gold: &[usize],
        scale: f32,
    ) -> (f32, Matrix) {
        let (t_len, l) = emissions.shape();
        assert_eq!(gold.len(), t_len, "gold length mismatch");
        assert!(gold.iter().all(|&g| g < l), "gold label out of range");
        let alpha = self.forward_alphas(store, emissions);
        let beta = self.backward_betas(store, emissions);
        let end_v = store.value(self.end).clone();
        let trans_v = store.value(self.trans).clone();
        let t_last = t_len - 1;
        let finals: Vec<f32> = (0..l)
            .map(|j| alpha.get(t_last, j) + end_v.get(0, j))
            .collect();
        let logz = log_sum_exp(&finals);
        let nll = logz - self.path_score(store, emissions, gold);

        // d logZ / d e[t][j] = P(y_t = j); subtract gold indicators.
        let mut de = Matrix::from_fn(t_len, l, |t, j| {
            (alpha.get(t, j) + beta.get(t, j) - logz).exp()
        });
        for (t, &g) in gold.iter().enumerate() {
            *de.get_mut(t, g) -= 1.0;
        }
        de.map_inplace(|v| v * scale);

        // Transition gradient via pairwise marginals.
        {
            let mut dtrans = Matrix::zeros(l, l);
            for t in 0..t_len - 1 {
                for i in 0..l {
                    for j in 0..l {
                        let p = (alpha.get(t, i)
                            + trans_v.get(i, j)
                            + emissions.get(t + 1, j)
                            + beta.get(t + 1, j)
                            - logz)
                            .exp();
                        *dtrans.get_mut(i, j) += p;
                    }
                }
                *dtrans.get_mut(gold[t], gold[t + 1]) -= 1.0;
            }
            store.grad_mut(self.trans).axpy(scale, &dtrans);
        }
        // Start gradient: P(y_0 = l) - indicator.
        {
            let mut dstart = Matrix::zeros(1, l);
            for j in 0..l {
                dstart.set(0, j, (alpha.get(0, j) + beta.get(0, j) - logz).exp());
            }
            *dstart.get_mut(0, gold[0]) -= 1.0;
            store.grad_mut(self.start).axpy(scale, &dstart);
        }
        // End gradient: P(y_{T-1} = l) - indicator.
        {
            let mut dend = Matrix::zeros(1, l);
            for j in 0..l {
                dend.set(
                    0,
                    j,
                    (alpha.get(t_last, j) + beta.get(t_last, j) - logz).exp(),
                );
            }
            *dend.get_mut(0, gold[t_last]) -= 1.0;
            store.grad_mut(self.end).axpy(scale, &dend);
        }
        (nll, de)
    }

    /// Most probable label path (Viterbi).
    pub fn decode(&self, store: &ParamStore, emissions: &Matrix) -> Vec<usize> {
        let (t_len, l) = emissions.shape();
        if t_len == 0 {
            return Vec::new();
        }
        let trans = store.value(self.trans);
        let start = store.value(self.start);
        let end = store.value(self.end);
        let mut score = vec![0.0_f32; l];
        for (j, s) in score.iter_mut().enumerate() {
            *s = start.get(0, j) + emissions.get(0, j);
        }
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(t_len);
        for t in 1..t_len {
            let mut next = vec![f32::NEG_INFINITY; l];
            let mut arg = vec![0usize; l];
            for j in 0..l {
                for (i, &si) in score.iter().enumerate() {
                    let cand = si + trans.get(i, j);
                    if cand > next[j] {
                        next[j] = cand;
                        arg[j] = i;
                    }
                }
                next[j] += emissions.get(t, j);
            }
            score = next;
            back.push(arg);
        }
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (j, &sj) in score.iter().enumerate() {
            let s = sj + end.get(0, j);
            if s > best_score {
                best_score = s;
                best = j;
            }
        }
        let mut path = vec![best; t_len];
        for t in (1..t_len).rev() {
            best = back[t - 1][best];
            path[t - 1] = best;
        }
        path
    }
}

/// BI-CRF (paper [58]): a forward CRF over the emissions and a second CRF
/// over the *reversed* sequence, trained with the sum of both likelihoods.
/// Decoding combines both CRFs' posterior marginals per position.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiCrf {
    fwd: Crf,
    bwd: Crf,
}

fn reverse_rows(m: &Matrix) -> Matrix {
    let (r, c) = m.shape();
    Matrix::from_fn(r, c, |i, j| m.get(r - 1 - i, j))
}

impl BiCrf {
    /// Allocate both directional CRFs.
    pub fn new(store: &mut ParamStore, init: &mut Initializer, num_labels: usize) -> Self {
        Self {
            fwd: Crf::new(store, init, num_labels),
            bwd: Crf::new(store, init, num_labels),
        }
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.fwd.num_labels
    }

    /// The directional CRFs `(forward, backward)`.
    pub fn directions(&self) -> (&Crf, &Crf) {
        (&self.fwd, &self.bwd)
    }

    /// Summed NLL of both directions.
    pub fn nll(&self, store: &ParamStore, emissions: &Matrix, gold: &[usize]) -> f32 {
        let rev_gold: Vec<usize> = gold.iter().rev().copied().collect();
        let rev_e = reverse_rows(emissions);
        self.fwd.nll(store, emissions, gold) + self.bwd.nll(store, &rev_e, &rev_gold)
    }

    /// Summed NLL and its emission gradient; CRF-parameter gradients
    /// accumulate into the store scaled by `scale`.
    pub fn nll_backward(
        &self,
        store: &mut ParamStore,
        emissions: &Matrix,
        gold: &[usize],
        scale: f32,
    ) -> (f32, Matrix) {
        let (nf, mut de) = self.fwd.nll_backward(store, emissions, gold, scale);
        let rev_gold: Vec<usize> = gold.iter().rev().copied().collect();
        let rev_e = reverse_rows(emissions);
        let (nb, de_rev) = self.bwd.nll_backward(store, &rev_e, &rev_gold, scale);
        de.axpy(1.0, &reverse_rows(&de_rev));
        (nf + nb, de)
    }

    /// Decode by combining posterior marginals of both directions and taking
    /// the per-position argmax.
    pub fn decode(&self, store: &ParamStore, emissions: &Matrix) -> Vec<usize> {
        let mf = self.fwd.marginals(store, emissions);
        let mb_rev = self.bwd.marginals(store, &reverse_rows(emissions));
        let mb = reverse_rows(&mb_rev);
        let (t_len, l) = emissions.shape();
        (0..t_len)
            .map(|t| {
                (0..l)
                    .max_by(|&a, &b| {
                        let sa = mf.get(t, a) + mb.get(t, a);
                        let sb = mf.get(t, b) + mb.get(t, b);
                        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Combined (averaged) posterior marginals, `T×L`.
    pub fn marginals(&self, store: &ParamStore, emissions: &Matrix) -> Matrix {
        let mf = self.fwd.marginals(store, emissions);
        let mb = reverse_rows(&self.bwd.marginals(store, &reverse_rows(emissions)));
        let mut out = mf;
        out.axpy(1.0, &mb);
        out.map_inplace(|v| v * 0.5);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(l: usize) -> (ParamStore, Crf) {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(42);
        let crf = Crf::new(&mut store, &mut init, l);
        (store, crf)
    }

    /// Enumerate all label paths (brute force) for validation.
    fn all_paths(t: usize, l: usize) -> Vec<Vec<usize>> {
        let mut out = vec![vec![]];
        for _ in 0..t {
            let mut next = Vec::new();
            for p in &out {
                for j in 0..l {
                    let mut q = p.clone();
                    q.push(j);
                    next.push(q);
                }
            }
            out = next;
        }
        out
    }

    #[test]
    fn log_z_matches_brute_force() {
        let (store, crf) = setup(3);
        let e = Matrix::from_fn(4, 3, |t, j| ((t * 3 + j) as f32 * 0.37).sin());
        let brute = log_sum_exp(
            &all_paths(4, 3)
                .iter()
                .map(|p| crf.path_score(&store, &e, p))
                .collect::<Vec<_>>(),
        );
        assert!((crf.log_z(&store, &e) - brute).abs() < 1e-4);
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let (store, crf) = setup(2);
        let e = Matrix::from_fn(5, 2, |t, j| ((t * 2 + j) as f32 * 0.91).cos());
        let best_brute = all_paths(5, 2)
            .into_iter()
            .max_by(|a, b| {
                crf.path_score(&store, &e, a)
                    .partial_cmp(&crf.path_score(&store, &e, b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(crf.decode(&store, &e), best_brute);
    }

    #[test]
    fn marginals_sum_to_one() {
        let (store, crf) = setup(3);
        let e = Matrix::from_fn(6, 3, |t, j| ((t + j) as f32 * 0.53).sin());
        let m = crf.marginals(&store, &e);
        for t in 0..6 {
            let s: f32 = (0..3).map(|j| m.get(t, j)).sum();
            assert!((s - 1.0).abs() < 1e-4, "row {t} sums to {s}");
        }
    }

    #[test]
    fn nll_nonnegative_and_zero_only_for_certain_path() {
        let (store, crf) = setup(2);
        let e = Matrix::from_fn(3, 2, |t, j| ((t * 2 + j) as f32).sin());
        let gold = vec![0, 1, 0];
        let nll = crf.nll(&store, &e, &gold);
        assert!(nll > 0.0);
    }

    #[test]
    fn emission_gradient_matches_finite_difference() {
        let (mut store, crf) = setup(2);
        let mut e = Matrix::from_fn(4, 2, |t, j| ((t * 2 + j) as f32 * 0.7).sin());
        let gold = vec![0, 1, 1, 0];
        let (_, de) = crf.nll_backward(&mut store, &e, &gold, 1.0);
        let eps = 1e-2;
        for t in 0..4 {
            for j in 0..2 {
                let orig = e.get(t, j);
                e.set(t, j, orig + eps);
                let hi = crf.nll(&store, &e, &gold);
                e.set(t, j, orig - eps);
                let lo = crf.nll(&store, &e, &gold);
                e.set(t, j, orig);
                let num = (hi - lo) / (2.0 * eps);
                assert!(
                    (num - de.get(t, j)).abs() < 1e-2,
                    "({t},{j}): numeric {num} vs analytic {}",
                    de.get(t, j)
                );
            }
        }
    }

    #[test]
    fn transition_gradient_matches_finite_difference() {
        let (mut store, crf) = setup(2);
        let e = Matrix::from_fn(5, 2, |t, j| ((t + 2 * j) as f32 * 0.3).cos());
        let gold = vec![1, 0, 0, 1, 1];
        store.zero_grads();
        let _ = crf.nll_backward(&mut store, &e, &gold, 1.0);
        let analytic = store.grad(crf.trans).clone();
        let eps = 1e-2;
        for i in 0..2 {
            for j in 0..2 {
                let orig = store.value(crf.trans).get(i, j);
                store.value_mut(crf.trans).set(i, j, orig + eps);
                let hi = crf.nll(&store, &e, &gold);
                store.value_mut(crf.trans).set(i, j, orig - eps);
                let lo = crf.nll(&store, &e, &gold);
                store.value_mut(crf.trans).set(i, j, orig);
                let num = (hi - lo) / (2.0 * eps);
                assert!(
                    (num - analytic.get(i, j)).abs() < 1e-2,
                    "trans ({i},{j}): numeric {num} vs analytic {}",
                    analytic.get(i, j)
                );
            }
        }
    }

    #[test]
    fn training_fits_a_simple_tagging_rule() {
        // Emissions are informative; CRF should learn transitions that favor
        // the gold alternating pattern and decode it exactly.
        let (mut store, crf) = setup(2);
        let gold = vec![0, 1, 0, 1, 0, 1];
        let e = Matrix::from_fn(6, 2, |t, j| if gold[t] == j { 1.0 } else { -1.0 });
        for _ in 0..50 {
            store.zero_grads();
            let _ = crf.nll_backward(&mut store, &e, &gold, 1.0);
            store.update_each(|_, v, g| v.axpy(-0.5, g));
        }
        assert_eq!(crf.decode(&store, &e), gold);
        assert!(crf.nll(&store, &e, &gold) < 0.5);
    }

    #[test]
    fn bicrf_nll_is_sum_of_directions() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(5);
        let bi = BiCrf::new(&mut store, &mut init, 2);
        let e = Matrix::from_fn(4, 2, |t, j| ((t * 2 + j) as f32 * 0.41).sin());
        let gold = vec![0, 0, 1, 1];
        let rev_gold: Vec<usize> = gold.iter().rev().copied().collect();
        let expect =
            bi.fwd.nll(&store, &e, &gold) + bi.bwd.nll(&store, &reverse_rows(&e), &rev_gold);
        assert!((bi.nll(&store, &e, &gold) - expect).abs() < 1e-5);
    }

    #[test]
    fn bicrf_emission_grad_matches_finite_difference() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(6);
        let bi = BiCrf::new(&mut store, &mut init, 2);
        let mut e = Matrix::from_fn(3, 2, |t, j| ((t + j) as f32 * 0.9).cos());
        let gold = vec![1, 0, 1];
        let (_, de) = bi.nll_backward(&mut store, &e, &gold, 1.0);
        let eps = 1e-2;
        for t in 0..3 {
            for j in 0..2 {
                let orig = e.get(t, j);
                e.set(t, j, orig + eps);
                let hi = bi.nll(&store, &e, &gold);
                e.set(t, j, orig - eps);
                let lo = bi.nll(&store, &e, &gold);
                e.set(t, j, orig);
                let num = (hi - lo) / (2.0 * eps);
                assert!((num - de.get(t, j)).abs() < 2e-2);
            }
        }
    }

    #[test]
    fn bicrf_decode_on_strong_emissions() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(7);
        let bi = BiCrf::new(&mut store, &mut init, 2);
        let gold = vec![1, 1, 0, 0, 1];
        let e = Matrix::from_fn(5, 2, |t, j| if gold[t] == j { 3.0 } else { -3.0 });
        assert_eq!(bi.decode(&store, &e), gold);
    }

    #[test]
    fn decode_empty_sequence() {
        let (store, crf) = setup(2);
        let e = Matrix::zeros(0, 2);
        assert!(crf.decode(&store, &e).is_empty());
    }
}
