//! Fully connected layer.

use crate::graph::{Graph, Var};
use crate::init::Initializer;
use crate::params::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// A dense layer `y = x · W + b` with `W: in×out`, `b: 1×out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    w: ParamId,
    b: ParamId,
}

impl Linear {
    /// Allocate weights in `store` (Xavier) and biases (zero).
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.register(init.xavier(in_dim, out_dim));
        let b = store.register(init.zeros(1, out_dim));
        Self {
            in_dim,
            out_dim,
            w,
            b,
        }
    }

    /// Forward pass for a batch `x` (rows = batch).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_row_broadcast(xw, b)
    }

    /// Parameter handles `(weight, bias)`, e.g. for regularization.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn forward_shape_and_value() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(0);
        let lin = Linear::new(&mut store, &mut init, 3, 2);
        // Overwrite with known weights.
        *store.value_mut(lin.w) = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        *store.value_mut(lin.b) = Matrix::from_vec(1, 2, vec![10., 20.]);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(1, 3, vec![1., 2., 3.]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y), &Matrix::from_vec(1, 2, vec![14., 25.]));
    }

    #[test]
    fn trains_to_fit_linear_function() {
        // One Adam step should reduce loss on a toy regression-ish target.
        use crate::optim::{Adam, Optimizer};
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(1);
        let lin = Linear::new(&mut store, &mut init, 2, 1);
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let t = Matrix::from_vec(4, 1, vec![0., 1., 1., 1.]); // OR function
        let mut opt = Adam::new(0.05);
        let mut losses = vec![];
        for _ in 0..200 {
            store.zero_grads();
            let mut g = Graph::new();
            let xi = g.input(x.clone());
            let y = lin.forward(&mut g, &store, xi);
            let loss = g.bce_with_logits(y, t.clone());
            losses.push(g.value(loss).get(0, 0));
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(
            losses.last().unwrap() < &0.1,
            "final loss {}",
            losses.last().unwrap()
        );
        assert!(losses.last().unwrap() < &losses[0]);
    }
}

impl Linear {
    /// Tape-free inference: `x · W + b` for a `rows×in` input.
    pub fn infer(
        &self,
        store: &crate::params::ParamStore,
        x: &crate::matrix::Matrix,
    ) -> crate::matrix::Matrix {
        x.matmul(store.value(self.w))
            .add_row_broadcast(store.value(self.b))
    }
}

#[cfg(test)]
mod infer_tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn infer_matches_graph_forward() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(4);
        let lin = Linear::new(&mut store, &mut init, 3, 2);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.4, 0.7, 1.0, 0.0, -1.0]);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = lin.forward(&mut g, &store, xv);
        let fast = lin.infer(&store, &x);
        for (a, b) in g.value(y).as_slice().iter().zip(fast.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
