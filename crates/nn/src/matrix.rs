//! Dense row-major `f32` matrices and the small kernel set the network needs.
//!
//! The DLACEP models are small (3 stacked BiLSTM layers, hidden 75), so a
//! straightforward cache-friendly `gemm` with an unrolled inner loop over the
//! shared dimension is sufficient; no SIMD intrinsics or BLAS dependency.

use dlacep_par::{SendPtr, ThreadPool};
use serde::{Deserialize, Serialize};

/// Minimum `rows * inner * cols` product before a kernel is dispatched to
/// the ambient pool; smaller products run the serial loop (the fork cost
/// would dominate).
pub const PAR_MIN_FLOPS: usize = 32 * 1024;

/// Dimension mismatch for a binary matrix kernel, carrying both operand
/// shapes so the failure is diagnosable from the message alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    /// Kernel name (`"matmul"`, `"matmul_transpose_rhs"`, ...).
    pub op: &'static str,
    /// Left operand shape `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Right operand shape `(rows, cols)`.
    pub rhs: (usize, usize),
    /// The violated constraint, e.g. `"lhs.cols must equal rhs.rows"`.
    pub requirement: &'static str,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} dimension mismatch: lhs is {}x{}, rhs is {}x{} ({})",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1, self.requirement
        )
    }
}

impl std::error::Error for ShapeError {}

/// Pool to use for a kernel of `rows * inner * cols` flops, if any: the
/// ambient pool when one is installed and the product clears
/// [`PAR_MIN_FLOPS`] with at least two rows to split.
fn kernel_pool(rows: usize, inner: usize, cols: usize) -> Option<&'static ThreadPool> {
    if rows < 2 {
        return None;
    }
    let flops = rows.checked_mul(inner)?.checked_mul(cols)?;
    if flops < PAR_MIN_FLOPS {
        return None;
    }
    dlacep_par::ambient()
}

/// Row chunk size for a pool kernel. Only affects which thread computes
/// which rows — each output row's arithmetic is identical to the serial
/// loop, so results are bitwise equal for any chunking.
fn row_chunk(rows: usize, pool: &ThreadPool) -> usize {
    rows.div_ceil(pool.threads() * 4).max(1)
}

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        Self {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Set an element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        *self.get_mut(r, c) = v;
    }

    /// Bounds-checked element accessor: [`Matrix::get`] only asserts in
    /// debug builds, so paths fed by external data (e.g. quantization
    /// calibration) use this to surface malformed shapes as a structured
    /// [`ShapeError`] instead of an out-of-bounds panic in release builds.
    #[inline]
    pub fn try_get(&self, r: usize, c: usize) -> Result<f32, ShapeError> {
        if r < self.rows && c < self.cols {
            Ok(self.data[r * self.cols + c])
        } else {
            Err(ShapeError {
                op: "get",
                lhs: self.shape(),
                rhs: (r, c),
                requirement: "index must be within matrix bounds",
            })
        }
    }

    /// Bounds-checked [`Matrix::set`]; see [`Matrix::try_get`].
    #[inline]
    pub fn try_set(&mut self, r: usize, c: usize, v: f32) -> Result<(), ShapeError> {
        if r < self.rows && c < self.cols {
            self.data[r * self.cols + c] = v;
            Ok(())
        } else {
            Err(ShapeError {
                op: "set",
                lhs: self.shape(),
                rhs: (r, c),
                requirement: "index must be within matrix bounds",
            })
        }
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One output row of `self · rhs`, accumulated into `out_row`. Shared
    /// by the serial and row-blocked parallel kernels so both produce
    /// bitwise-identical results (per-row arithmetic order is the same).
    #[inline]
    fn matmul_row_into(&self, rhs: &Matrix, i: usize, out_row: &mut [f32]) {
        // k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which is the cache-friendly arrangement for
        // row-major data.
        let a_row = self.row(i);
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = rhs.row(k);
            for (o, &b) in out_row.iter_mut().zip(b_row) {
                *o += a * b;
            }
        }
    }

    /// One output row of `self · rhsᵀ`, written into `out_row`.
    #[inline]
    fn matmul_transpose_rhs_row_into(&self, rhs: &Matrix, i: usize, out_row: &mut [f32]) {
        let a_row = self.row(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = rhs.row(j);
            let mut acc = 0.0;
            for (&a, &b) in a_row.iter().zip(b_row) {
                acc += a * b;
            }
            *o = acc;
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// Dispatches to the row-blocked parallel kernel when an ambient pool
    /// is installed (see `dlacep_par::ambient`) and the shape clears
    /// [`PAR_MIN_FLOPS`]; output is bitwise identical either way.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch, naming both shapes.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::matmul`].
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
                requirement: "lhs.cols must equal rhs.rows",
            });
        }
        if let Some(pool) = kernel_pool(self.rows, self.cols, rhs.cols) {
            return Ok(self.par_matmul(pool, rhs));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            self.matmul_row_into(rhs, i, out_row);
        }
        Ok(out)
    }

    /// Row-blocked `self · rhs` on an explicit pool, regardless of shape
    /// thresholds. Bitwise identical to the serial kernel.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch, naming both shapes.
    pub fn par_matmul(&self, pool: &ThreadPool, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "{}",
            ShapeError {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
                requirement: "lhs.cols must equal rhs.rows",
            }
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let cols = rhs.cols;
        let ptr = SendPtr::new(out.data.as_mut_ptr());
        pool.parallel_for(self.rows, row_chunk(self.rows, pool), |range| {
            for i in range {
                // SAFETY: row chunks are disjoint, so each output row is
                // written by exactly one task; `out` outlives the blocking
                // `parallel_for` call.
                let out_row =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(i * cols), cols) };
                self.matmul_row_into(rhs, i, out_row);
            }
        });
        out
    }

    /// `self · rhsᵀ` without materializing the transpose. Parallel above
    /// [`PAR_MIN_FLOPS`] when an ambient pool is installed, like
    /// [`Matrix::matmul`].
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch, naming both shapes.
    pub fn matmul_transpose_rhs(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul_transpose_rhs(rhs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Matrix::matmul_transpose_rhs`].
    pub fn try_matmul_transpose_rhs(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError {
                op: "matmul_transpose_rhs",
                lhs: self.shape(),
                rhs: rhs.shape(),
                requirement: "lhs.cols must equal rhs.cols",
            });
        }
        if let Some(pool) = kernel_pool(self.rows, self.cols, rhs.rows) {
            return Ok(self.par_matmul_transpose_rhs(pool, rhs));
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            self.matmul_transpose_rhs_row_into(rhs, i, out_row);
        }
        Ok(out)
    }

    /// Row-blocked `self · rhsᵀ` on an explicit pool. Bitwise identical to
    /// the serial kernel.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch, naming both shapes.
    pub fn par_matmul_transpose_rhs(&self, pool: &ThreadPool, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.cols,
            "{}",
            ShapeError {
                op: "matmul_transpose_rhs",
                lhs: self.shape(),
                rhs: rhs.shape(),
                requirement: "lhs.cols must equal rhs.cols",
            }
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let cols = rhs.rows;
        let ptr = SendPtr::new(out.data.as_mut_ptr());
        pool.parallel_for(self.rows, row_chunk(self.rows, pool), |range| {
            for i in range {
                // SAFETY: disjoint output rows, buffer outlives the call.
                let out_row =
                    unsafe { std::slice::from_raw_parts_mut(ptr.get().add(i * cols), cols) };
                self.matmul_transpose_rhs_row_into(rhs, i, out_row);
            }
        });
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "transpose_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Add a 1×cols row vector to every row.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        out
    }

    /// Sum over rows into a 1×cols vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Copy of columns `[start, start + len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..start + len]);
        }
        Matrix {
            rows: self.rows,
            cols: len,
            data,
        }
    }

    /// Copy of rows `[start, start + len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "slice_rows out of range");
        let data = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Matrix {
            rows: len,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Reset all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 2., -1., 3., 1., 0.5, 2., -2., 1., 1., 1.]);
        assert_eq!(a.matmul_transpose_rhs(&b), a.matmul(&b.transpose()));
        let c = m(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        assert_eq!(a.transpose_matmul(&c), a.transpose().matmul(&c));
    }

    #[test]
    fn broadcast_bias() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = Matrix::row_vector(vec![10., 20.]);
        assert_eq!(a.add_row_broadcast(&b), m(2, 2, &[11., 22., 13., 24.]));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 1, &[9., 8.]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.slice_cols(0, 2), a);
        assert_eq!(cat.slice_cols(2, 1), b);
    }

    #[test]
    fn slice_rows_copies() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.slice_rows(1, 2), m(2, 2, &[3., 4., 5., 6.]));
    }

    #[test]
    fn sum_rows_and_reductions() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(vec![5., 7., 9.]));
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        a.axpy(2.0, &m(1, 3, &[1., 2., 3.]));
        assert_eq!(a, m(1, 3, &[3., 5., 7.]));
    }

    #[test]
    fn norms() {
        let a = m(1, 2, &[3., 4.]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn try_matmul_reports_both_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
        assert_eq!(err.lhs, (2, 3));
        assert_eq!(err.rhs, (4, 5));
        let msg = err.to_string();
        assert!(msg.contains("matmul dimension mismatch"), "{msg}");
        assert!(msg.contains("2x3") && msg.contains("4x5"), "{msg}");
        assert!(a.try_matmul(&Matrix::zeros(3, 5)).is_ok());
    }

    #[test]
    fn try_matmul_transpose_rhs_reports_both_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 6);
        let err = a.try_matmul_transpose_rhs(&b).unwrap_err();
        assert_eq!(err.op, "matmul_transpose_rhs");
        let msg = err.to_string();
        assert!(
            msg.contains("lhs is 2x3") && msg.contains("rhs is 4x6"),
            "{msg}"
        );
    }

    #[test]
    fn par_kernels_match_serial_bitwise() {
        let pool = ThreadPool::new(4);
        // Irrational-ish values so any reassociation would show up.
        let a = Matrix::from_fn(37, 23, |r, c| ((r * 31 + c * 7) as f32 * 0.137).sin());
        let b = Matrix::from_fn(23, 29, |r, c| ((r * 13 + c * 17) as f32 * 0.291).cos());
        assert_eq!(a.par_matmul(&pool, &b), a.matmul(&b));
        let bt = Matrix::from_fn(29, 23, |r, c| ((r * 5 + c * 3) as f32 * 0.173).sin());
        assert_eq!(
            a.par_matmul_transpose_rhs(&pool, &bt),
            a.matmul_transpose_rhs(&bt)
        );
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn par_matmul_shape_checked() {
        let pool = ThreadPool::new(2);
        let _ = Matrix::zeros(2, 3).par_matmul(&pool, &Matrix::zeros(2, 3));
    }
}
