//! Dense row-major `f32` matrices and the small kernel set the network needs.
//!
//! The DLACEP models are small (3 stacked BiLSTM layers, hidden 75), so a
//! straightforward cache-friendly `gemm` with an unrolled inner loop over the
//! shared dimension is sufficient; no SIMD intrinsics or BLAS dependency.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        Self {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Set an element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        *self.get_mut(r, c) = v;
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which is the cache-friendly arrangement for row-major
        // data.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_transpose_rhs(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose_rhs dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "transpose_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Add a 1×cols row vector to every row.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        out
    }

    /// Sum over rows into a 1×cols vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Copy of columns `[start, start + len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..start + len]);
        }
        Matrix {
            rows: self.rows,
            cols: len,
            data,
        }
    }

    /// Copy of rows `[start, start + len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "slice_rows out of range");
        let data = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Matrix {
            rows: len,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Reset all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 2., -1., 3., 1., 0.5, 2., -2., 1., 1., 1.]);
        assert_eq!(a.matmul_transpose_rhs(&b), a.matmul(&b.transpose()));
        let c = m(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        assert_eq!(a.transpose_matmul(&c), a.transpose().matmul(&c));
    }

    #[test]
    fn broadcast_bias() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = Matrix::row_vector(vec![10., 20.]);
        assert_eq!(a.add_row_broadcast(&b), m(2, 2, &[11., 22., 13., 24.]));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 1, &[9., 8.]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.slice_cols(0, 2), a);
        assert_eq!(cat.slice_cols(2, 1), b);
    }

    #[test]
    fn slice_rows_copies() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.slice_rows(1, 2), m(2, 2, &[3., 4., 5., 6.]));
    }

    #[test]
    fn sum_rows_and_reductions() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(vec![5., 7., 9.]));
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        a.axpy(2.0, &m(1, 3, &[1., 2., 3.]));
        assert_eq!(a, m(1, 3, &[3., 5., 7.]));
    }

    #[test]
    fn norms() {
        let a = m(1, 2, &[3., 4.]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
