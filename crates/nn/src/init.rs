//! Weight initialization.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic weight initializer (Xavier/Glorot uniform and friends).
///
/// All experiments seed this explicitly so runs are reproducible.
#[derive(Debug)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Initializer seeded with `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(&mut self, rows: usize, cols: usize) -> Matrix {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        self.uniform(rows, cols, -a, a)
    }

    /// Uniform `U(lo, hi)`.
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.rng.gen_range(lo..hi))
    }

    /// Zeros (for biases).
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::zeros(rows, cols)
    }

    /// LSTM gate bias: zero everywhere but the forget-gate block, which is
    /// set to 1 — the standard trick letting gradients flow early in
    /// training. Layout must be `[i | f | g | o]`, each block `hidden` wide.
    pub fn lstm_bias(&mut self, hidden: usize) -> Matrix {
        let mut b = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = Initializer::seeded(7).xavier(4, 4);
        let b = Initializer::seeded(7).xavier(4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Initializer::seeded(1).xavier(4, 4);
        let b = Initializer::seeded(2).xavier(4, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_within_bound() {
        let m = Initializer::seeded(3).xavier(10, 10);
        let a = (6.0_f32 / 20.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn lstm_bias_forget_block_is_one() {
        let b = Initializer::seeded(0).lstm_bias(3);
        assert_eq!(b.shape(), (1, 12));
        assert_eq!(b.row(0), &[0., 0., 0., 1., 1., 1., 0., 0., 0., 0., 0., 0.]);
    }
}
