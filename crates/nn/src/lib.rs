//! # dlacep-nn
//!
//! A from-scratch, dependency-light neural-network substrate sufficient to
//! implement the DLACEP paper's models: stacked BiLSTM encoders with either a
//! bidirectional-CRF event-labeling head (the *event-network*) or a pooled
//! classification head (the *window-network*), trained with Adam under the
//! paper's dynamic learning-rate and batch-size schedules.
//!
//! Why from scratch: the reproduction environment has no GPU framework
//! available offline; the paper's networks are small (3 stacked BiLSTM
//! layers, hidden width 75), so exact CPU training is feasible at reduced
//! scale. See DESIGN.md for the substitution note.
//!
//! Layout:
//! * [`matrix`] — dense row-major `f32` matrices and kernels,
//! * [`graph`] — tape-based reverse-mode autodiff,
//! * [`params`] — trainable-parameter store shared by layers and optimizers,
//! * [`init`] — deterministic initializers,
//! * [`linear`], [`lstm`] — layers (Linear, LSTM, BiLSTM, stacked BiLSTM),
//! * [`crf`] — exact linear-chain CRF and BI-CRF heads,
//! * [`quant`] — int8 post-training quantization and the inference fast path,
//! * [`optim`] — SGD/Adam + learning-rate schedules,
//! * [`train`] — batching, convergence detection,
//! * [`metrics`] — precision/recall/F1 (paper §4.3).

pub mod crf;
pub mod graph;
pub mod init;
pub mod linear;
pub mod lstm;
pub mod matrix;
pub mod metrics;
pub mod optim;
pub mod params;
pub mod quant;
pub mod train;

pub use crf::{BiCrf, Crf};
pub use graph::{Graph, Var};
pub use init::Initializer;
pub use linear::Linear;
pub use lstm::{BiLstmLayer, LstmLayer, StackedBiLstm};
pub use matrix::{Matrix, ShapeError};
pub use metrics::Confusion;
pub use optim::{Adam, LrSchedule, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use quant::{
    calibrate_input_scale, QuantError, QuantizedLinear, QuantizedMatrix, QuantizedStackedBiLstm,
    ScratchArena,
};
pub use train::{
    record_epoch, BatchSampler, BatchSchedule, ConvergenceDetector, TrainReport, TrainStep,
};
