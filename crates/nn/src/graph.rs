//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every forward operation on a tape; [`Graph::backward`]
//! (or [`Graph::backward_seeded`] for heads with analytic gradients, like the
//! CRF in [`crate::crf`]) replays it in reverse, accumulating parameter
//! gradients into a [`ParamStore`].
//!
//! The tape is rebuilt per training step — natural for recurrent models where
//! the unrolled graph depends on the sequence length.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// External input; no gradient propagation.
    Input,
    /// Read of a trainable parameter; gradient accumulates into the store.
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Hadamard(Var, Var),
    Scale(Var, f32),
    AddRowBroadcast(Var, Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    ConcatCols(Var, Var),
    SliceCols(Var, usize, usize),
    SliceRows(Var, usize, usize),
    MeanAll(Var),
    /// Binary cross-entropy with logits against fixed targets; produces the
    /// mean loss as a 1×1 matrix.
    BceWithLogits(Var, Matrix),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
}

/// The autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tape with node capacity reserved (`3 layers × T timesteps × ~20 ops`).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
        }
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after a backward pass, if any reached it.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Number of tape nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Record an external input.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Op::Input, value)
    }

    /// Record a parameter read. The value is copied onto the tape once; reuse
    /// the returned `Var` for all uses within this graph.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let value = store.value(id).clone();
        self.push(Op::Param(id), value)
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), value)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), value)
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = {
            let (va, vb) = (self.value(a), self.value(b));
            let mut out = va.clone();
            out.axpy(-1.0, vb);
            out
        };
        self.push(Op::Sub(a, b), value)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        self.push(Op::Hadamard(a, b), value)
    }

    /// `c * a`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|v| c * v);
        self.push(Op::Scale(a, c), value)
    }

    /// Add a 1×n bias row to each row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let value = self.value(a).add_row_broadcast(self.value(bias));
        self.push(Op::AddRowBroadcast(a, bias), value)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(Op::Sigmoid(a), value)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), value)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        self.push(Op::Relu(a), value)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_cols(self.value(b));
        self.push(Op::ConcatCols(a, b), value)
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let value = self.value(a).slice_cols(start, len);
        self.push(Op::SliceCols(a, start, len), value)
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let value = self.value(a).slice_rows(start, len);
        self.push(Op::SliceRows(a, start, len), value)
    }

    /// Mean of all elements as a 1×1 matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(Op::MeanAll(a), value)
    }

    /// Mean binary cross-entropy between `sigmoid(logits)` and fixed
    /// `targets` (same shape), computed in a numerically stable form.
    /// Returns a 1×1 loss node.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Matrix) -> Var {
        let x = self.value(logits);
        assert_eq!(x.shape(), targets.shape(), "bce target shape mismatch");
        let n = x.len().max(1) as f32;
        let mut loss = 0.0_f64;
        for (&xi, &ti) in x.as_slice().iter().zip(targets.as_slice()) {
            // max(x,0) - x*t + ln(1 + e^{-|x|})
            let l = xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln();
            loss += l as f64;
        }
        let value = Matrix::from_vec(1, 1, vec![(loss / n as f64) as f32]);
        self.push(Op::BceWithLogits(logits, targets), value)
    }

    fn accumulate(&mut self, v: Var, delta: &Matrix) {
        let node = &mut self.nodes[v.0];
        match &mut node.grad {
            Some(g) => g.axpy(1.0, delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    /// Backward pass from a scalar (1×1) loss node. Parameter gradients are
    /// accumulated into `store` (they are *not* zeroed first — call
    /// [`ParamStore::zero_grads`] between steps).
    ///
    /// # Panics
    /// Panics if `loss` is not 1×1.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let seed = Matrix::from_vec(1, 1, vec![1.0]);
        self.backward_seeded(&[(loss, seed)], store);
    }

    /// Backward pass from explicit gradient seeds. Used by heads whose
    /// gradient is computed analytically outside the tape (the CRF layer
    /// seeds the emission nodes directly).
    pub fn backward_seeded(&mut self, seeds: &[(Var, Matrix)], store: &mut ParamStore) {
        for (v, g) in seeds {
            assert_eq!(
                self.value(*v).shape(),
                g.shape(),
                "seed gradient shape mismatch"
            );
            self.accumulate(*v, g);
        }
        for idx in (0..self.nodes.len()).rev() {
            let Some(g) = self.nodes[idx].grad.take() else {
                continue;
            };
            let op = self.nodes[idx].op.clone();
            // Put the gradient back so callers can inspect it afterwards.
            self.nodes[idx].grad = Some(g.clone());
            match op {
                Op::Input => {}
                Op::Param(id) => store.grad_mut(id).axpy(1.0, &g),
                Op::MatMul(a, b) => {
                    let ga = g.matmul_transpose_rhs(self.value(b));
                    let gb = self.value(a).transpose_matmul(&g);
                    self.accumulate(a, &ga);
                    self.accumulate(b, &gb);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, &g);
                    self.accumulate(b, &g);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, &g);
                    let neg = g.map(|v| -v);
                    self.accumulate(b, &neg);
                }
                Op::Hadamard(a, b) => {
                    let ga = g.hadamard(self.value(b));
                    let gb = g.hadamard(self.value(a));
                    self.accumulate(a, &ga);
                    self.accumulate(b, &gb);
                }
                Op::Scale(a, c) => {
                    let ga = g.map(|v| c * v);
                    self.accumulate(a, &ga);
                }
                Op::AddRowBroadcast(a, bias) => {
                    self.accumulate(a, &g);
                    let gb = g.sum_rows();
                    self.accumulate(bias, &gb);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let ga = Matrix::from_vec(
                        y.rows(),
                        y.cols(),
                        y.as_slice()
                            .iter()
                            .zip(g.as_slice())
                            .map(|(&y, &g)| g * y * (1.0 - y))
                            .collect(),
                    );
                    self.accumulate(a, &ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let ga = Matrix::from_vec(
                        y.rows(),
                        y.cols(),
                        y.as_slice()
                            .iter()
                            .zip(g.as_slice())
                            .map(|(&y, &g)| g * (1.0 - y * y))
                            .collect(),
                    );
                    self.accumulate(a, &ga);
                }
                Op::Relu(a) => {
                    let x = self.value(a);
                    let ga = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.as_slice()
                            .iter()
                            .zip(g.as_slice())
                            .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                            .collect(),
                    );
                    self.accumulate(a, &ga);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.value(a).cols();
                    let bc = self.value(b).cols();
                    let ga = g.slice_cols(0, ac);
                    let gb = g.slice_cols(ac, bc);
                    self.accumulate(a, &ga);
                    self.accumulate(b, &gb);
                }
                Op::SliceCols(a, start, len) => {
                    let src = self.value(a);
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..g.rows() {
                        let dst = &mut ga.row_mut(r)[start..start + len];
                        for (d, &s) in dst.iter_mut().zip(g.row(r)) {
                            *d += s;
                        }
                    }
                    self.accumulate(a, &ga);
                }
                Op::SliceRows(a, start, len) => {
                    let src = self.value(a);
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..len {
                        let dst = ga.row_mut(start + r);
                        for (d, &s) in dst.iter_mut().zip(g.row(r)) {
                            *d += s;
                        }
                    }
                    self.accumulate(a, &ga);
                }
                Op::MeanAll(a) => {
                    let src = self.value(a);
                    let scale = g.get(0, 0) / src.len().max(1) as f32;
                    let ga = Matrix::full(src.rows(), src.cols(), scale);
                    self.accumulate(a, &ga);
                }
                Op::BceWithLogits(a, ref targets) => {
                    let x = self.value(a);
                    let n = x.len().max(1) as f32;
                    let scale = g.get(0, 0) / n;
                    let ga = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.as_slice()
                            .iter()
                            .zip(targets.as_slice())
                            .map(|(&xi, &ti)| {
                                let y = 1.0 / (1.0 + (-xi).exp());
                                scale * (y - ti)
                            })
                            .collect(),
                    );
                    self.accumulate(a, &ga);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of d loss / d param for a tiny composite graph.
    fn numeric_grad(
        build: &dyn Fn(&mut Graph, &ParamStore, ParamId) -> Var,
        store: &mut ParamStore,
        id: ParamId,
        r: usize,
        c: usize,
    ) -> f32 {
        let eps = 1e-3;
        let orig = store.value(id).get(r, c);
        store.value_mut(id).set(r, c, orig + eps);
        let mut g = Graph::new();
        let v = build(&mut g, store, id);
        let hi = g.value(v).get(0, 0);
        store.value_mut(id).set(r, c, orig - eps);
        let mut g = Graph::new();
        let v = build(&mut g, store, id);
        let lo = g.value(v).get(0, 0);
        store.value_mut(id).set(r, c, orig);
        (hi - lo) / (2.0 * eps)
    }

    fn check_all(build: &dyn Fn(&mut Graph, &ParamStore, ParamId) -> Var, init: Matrix) {
        let mut store = ParamStore::new();
        let id = store.register(init);
        let mut g = Graph::new();
        let loss = build(&mut g, &store, id);
        g.backward(loss, &mut store);
        let (rows, cols) = store.value(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let num = numeric_grad(build, &mut store, id, r, c);
                let ana = store.grad(id).get(r, c);
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn grad_matmul_sigmoid_mean() {
        let x = Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.3]);
        check_all(
            &move |g, store, id| {
                let p = g.param(store, id);
                let xin = g.input(x.clone());
                let y = g.matmul(xin, p);
                let s = g.sigmoid(y);
                g.mean_all(s)
            },
            Matrix::from_vec(2, 2, vec![0.1, -0.2, 0.4, 0.7]),
        );
    }

    #[test]
    fn grad_tanh_hadamard() {
        let x = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        check_all(
            &move |g, store, id| {
                let p = g.param(store, id);
                let xin = g.input(x.clone());
                let t = g.tanh(p);
                let h = g.hadamard(t, xin);
                g.mean_all(h)
            },
            Matrix::from_vec(1, 3, vec![0.3, 0.6, -0.9]),
        );
    }

    #[test]
    fn grad_concat_slice() {
        let x = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        check_all(
            &move |g, store, id| {
                let p = g.param(store, id);
                let xin = g.input(x.clone());
                let cat = g.concat_cols(p, xin);
                let sl = g.slice_cols(cat, 1, 2);
                let t = g.tanh(sl);
                g.mean_all(t)
            },
            Matrix::from_vec(1, 2, vec![0.2, 0.4]),
        );
    }

    #[test]
    fn grad_bias_broadcast() {
        let x = Matrix::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]);
        check_all(
            &move |g, store, id| {
                let p = g.param(store, id);
                let xin = g.input(x.clone());
                let y = g.add_row_broadcast(xin, p);
                let s = g.sigmoid(y);
                g.mean_all(s)
            },
            Matrix::from_vec(1, 2, vec![0.05, -0.15]),
        );
    }

    #[test]
    fn grad_bce_with_logits() {
        let targets = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        check_all(
            &move |g, store, id| {
                let p = g.param(store, id);
                g.bce_with_logits(p, targets.clone())
            },
            Matrix::from_vec(1, 3, vec![0.5, -0.8, 0.1]),
        );
    }

    #[test]
    fn grad_sub_scale_relu() {
        let x = Matrix::from_vec(1, 3, vec![0.5, 1.0, -0.2]);
        check_all(
            &move |g, store, id| {
                let p = g.param(store, id);
                let xin = g.input(x.clone());
                let d = g.sub(p, xin);
                let r = g.relu(d);
                let s = g.scale(r, 2.0);
                g.mean_all(s)
            },
            Matrix::from_vec(1, 3, vec![1.0, 0.5, -0.5]),
        );
    }

    #[test]
    fn grad_slice_rows() {
        check_all(
            &move |g, store, id| {
                let p = g.param(store, id);
                let top = g.slice_rows(p, 0, 1);
                let s = g.sigmoid(top);
                g.mean_all(s)
            },
            Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]),
        );
    }

    #[test]
    fn param_reused_accumulates_grads() {
        // loss = mean(p + p) => dloss/dp = 2/len
        let mut store = ParamStore::new();
        let id = store.register(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let mut g = Graph::new();
        let p = g.param(&store, id);
        let s = g.add(p, p);
        let loss = g.mean_all(s);
        g.backward(loss, &mut store);
        assert!((store.grad(id).get(0, 0) - 1.0).abs() < 1e-6);
        assert!((store.grad(id).get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bce_matches_closed_form() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::from_vec(1, 1, vec![0.0]));
        let loss = g.bce_with_logits(logits, Matrix::from_vec(1, 1, vec![1.0]));
        // -ln(sigmoid(0)) = ln 2
        assert!((g.value(loss).get(0, 0) - std::f32::consts::LN_2).abs() < 1e-6);
    }
}
