//! Trainable parameter storage shared between graphs, layers, and optimizers.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Handle to one trainable tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Values and accumulated gradients of every trainable tensor in a model.
///
/// Layers allocate their weights here at construction; computation graphs
/// read values via [`ParamStore::value`] and accumulate gradients via
/// [`ParamStore::grad_mut`]; optimizers consume the gradients in
/// [`crate::optim`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter with the given initial value.
    pub fn register(&mut self, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        id
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers and initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable accumulated gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Zero all gradients, keeping allocations.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.frobenius_norm().powi(2))
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients so the global norm does not exceed `max_norm`.
    /// Returns the pre-clipping norm. Essential for stable LSTM training
    /// (exploding gradients, paper §2.2).
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for g in &mut self.grads {
                g.map_inplace(|v| v * scale);
            }
        }
        norm
    }

    /// Iterate over `(id, value, grad)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix, &Matrix)> {
        self.values
            .iter()
            .zip(&self.grads)
            .enumerate()
            .map(|(i, (v, g))| (ParamId(i), v, g))
    }

    /// Apply `f(value, grad)` to every parameter (optimizer update hook).
    pub fn update_each(&mut self, mut f: impl FnMut(usize, &mut Matrix, &Matrix)) {
        for (i, (v, g)) in self.values.iter_mut().zip(&self.grads).enumerate() {
            f(i, v, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut ps = ParamStore::new();
        let id = ps.register(Matrix::full(2, 2, 1.0));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_scalars(), 4);
        assert_eq!(ps.value(id).get(0, 0), 1.0);
        assert_eq!(ps.grad(id).get(0, 0), 0.0);
    }

    #[test]
    fn zero_grads_resets() {
        let mut ps = ParamStore::new();
        let id = ps.register(Matrix::zeros(1, 2));
        ps.grad_mut(id).set(0, 0, 5.0);
        ps.zero_grads();
        assert_eq!(ps.grad(id).sum(), 0.0);
    }

    #[test]
    fn clip_reduces_norm() {
        let mut ps = ParamStore::new();
        let id = ps.register(Matrix::zeros(1, 2));
        ps.grad_mut(id).as_mut_slice().copy_from_slice(&[3.0, 4.0]);
        let pre = ps.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut ps = ParamStore::new();
        let id = ps.register(Matrix::zeros(1, 2));
        ps.grad_mut(id).as_mut_slice().copy_from_slice(&[0.3, 0.4]);
        ps.clip_grad_norm(1.0);
        assert!((ps.grad_norm() - 0.5).abs() < 1e-6);
    }
}
