//! Classification metrics: precision, recall, F1 (paper §4.3).

use serde::{Deserialize, Serialize};

/// Confusion counts for binary classification, accumulated incrementally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(predicted, actual)` pair.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Record paired label slices.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn record_all(&mut self, predicted: &[bool], actual: &[bool]) {
        assert_eq!(predicted.len(), actual.len(), "label length mismatch");
        for (&p, &a) in predicted.iter().zip(actual) {
            self.record(p, a);
        }
    }

    /// Merge another confusion into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// `tp / (tp + fp)`; 1.0 when nothing was predicted positive (vacuously
    /// precise).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when there were no actual positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// False-negative percentage out of all actual positives (paper Fig. 11).
    pub fn fn_percent(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            100.0 * self.fn_ as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let mut c = Confusion::new();
        c.record_all(&[true, false, true], &[true, false, true]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.fn_percent(), 0.0);
    }

    #[test]
    fn mixed_prediction() {
        let mut c = Confusion::new();
        // tp=1, fp=1, fn=1, tn=1
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
        assert!((c.fn_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let c = Confusion::new();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.accuracy(), 1.0);

        let mut all_neg = Confusion::new();
        all_neg.record(false, false);
        assert_eq!(all_neg.f1(), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Confusion::new();
        a.record(true, true);
        let mut b = Confusion::new();
        b.record(false, true);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fn_, 1);
        assert!((a.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn record_all_checks_lengths() {
        let mut c = Confusion::new();
        c.record_all(&[true], &[true, false]);
    }
}
