//! Integer GEMM kernels and fast activations for the int8 inference path.
//!
//! Quantized operands are stored as `i16` holding int8-range values
//! (±127): `pmaddwd` multiplies `i16` lanes into `i32` pairs, so widening
//! at pack time instead of per-multiply keeps the inner loop to one
//! multiply-add per lane. Weights are packed transposed (one row per
//! output channel) so every dot product walks both operands contiguously,
//! and the shared dimension is zero-padded to the SIMD lane width so the
//! hot loop has no scalar tail.
//!
//! The SSE2 path and the portable scalar path produce bit-identical
//! accumulators — integer arithmetic is exact — so quantized inference is
//! deterministic across both.

/// SIMD lane width in `i16` elements (one 128-bit SSE2 register).
pub(crate) const LANE: usize = 8;

/// Output-channel block for the cache-blocked GEMM: a block of packed
/// weight rows (`J_BLOCK × k_pad × 2` bytes, ≈ 19 KiB at the marking-stage
/// shape) stays L1-resident while every activation row streams over it.
const J_BLOCK: usize = 32;

/// `k` rounded up to a whole number of lanes.
#[inline]
pub(crate) fn pad_to_lane(k: usize) -> usize {
    k.div_ceil(LANE) * LANE
}

/// Quantize one f32 row into int8-range `i16` values: `q = round(x / scale)`
/// clamped to ±127. `dst` may be longer than `src`; the tail is zeroed so
/// padded lanes contribute nothing to the dot products.
#[inline]
pub(crate) fn quantize_row(src: &[f32], inv_scale: f32, dst: &mut [i16]) {
    debug_assert!(dst.len() >= src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (s * inv_scale).round().clamp(-127.0, 127.0) as i16;
    }
    for d in dst[src.len()..].iter_mut() {
        *d = 0;
    }
}

/// Exact integer dot product of two lane-padded `i16` rows.
#[cfg(target_arch = "x86_64")]
#[inline]
fn dot(a: &[i16], b: &[i16]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % LANE, 0);
    // SAFETY: SSE2 is part of the x86_64 baseline; loads are unaligned-safe
    // (`loadu`) and stay within the equal-length, lane-padded slices.
    unsafe {
        let mut acc = _mm_setzero_si128();
        let mut k = 0;
        while k < a.len() {
            let av = _mm_loadu_si128(a.as_ptr().add(k) as *const __m128i);
            let bv = _mm_loadu_si128(b.as_ptr().add(k) as *const __m128i);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(av, bv));
            k += LANE;
        }
        hsum_epi32(acc)
    }
}

/// Dot products of one lane-padded row against two weight rows at once —
/// the two-column blocking amortizes the activation loads across both
/// accumulators.
#[cfg(target_arch = "x86_64")]
#[inline]
fn dot2(a: &[i16], b0: &[i16], b1: &[i16]) -> (i32, i32) {
    use std::arch::x86_64::*;
    debug_assert!(a.len() == b0.len() && a.len() == b1.len());
    debug_assert_eq!(a.len() % LANE, 0);
    // SAFETY: as in `dot`.
    unsafe {
        let mut acc0 = _mm_setzero_si128();
        let mut acc1 = _mm_setzero_si128();
        let mut k = 0;
        while k < a.len() {
            let av = _mm_loadu_si128(a.as_ptr().add(k) as *const __m128i);
            let b0v = _mm_loadu_si128(b0.as_ptr().add(k) as *const __m128i);
            let b1v = _mm_loadu_si128(b1.as_ptr().add(k) as *const __m128i);
            acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(av, b0v));
            acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(av, b1v));
            k += LANE;
        }
        (hsum_epi32(acc0), hsum_epi32(acc1))
    }
}

/// Dot products of one lane-padded row against four weight rows at once,
/// reduced to a single `[d0, d1, d2, d3]` vector: the unpack ladder sums
/// the four accumulators with no scalar extraction, so the caller can run
/// the scale/bias epilogue in SIMD too.
#[cfg(target_arch = "x86_64")]
#[inline]
fn dot4(a: &[i16], b0: &[i16], b1: &[i16], b2: &[i16], b3: &[i16]) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    debug_assert!(a.len() == b0.len() && a.len() == b1.len());
    debug_assert!(a.len() == b2.len() && a.len() == b3.len());
    debug_assert_eq!(a.len() % LANE, 0);
    // SAFETY: as in `dot`.
    unsafe {
        let mut acc0 = _mm_setzero_si128();
        let mut acc1 = _mm_setzero_si128();
        let mut acc2 = _mm_setzero_si128();
        let mut acc3 = _mm_setzero_si128();
        let mut k = 0;
        while k < a.len() {
            let av = _mm_loadu_si128(a.as_ptr().add(k) as *const __m128i);
            acc0 = _mm_add_epi32(
                acc0,
                _mm_madd_epi16(av, _mm_loadu_si128(b0.as_ptr().add(k) as *const __m128i)),
            );
            acc1 = _mm_add_epi32(
                acc1,
                _mm_madd_epi16(av, _mm_loadu_si128(b1.as_ptr().add(k) as *const __m128i)),
            );
            acc2 = _mm_add_epi32(
                acc2,
                _mm_madd_epi16(av, _mm_loadu_si128(b2.as_ptr().add(k) as *const __m128i)),
            );
            acc3 = _mm_add_epi32(
                acc3,
                _mm_madd_epi16(av, _mm_loadu_si128(b3.as_ptr().add(k) as *const __m128i)),
            );
            k += LANE;
        }
        // Transpose-and-add: four 4-lane partial sums collapse to one
        // vector holding each accumulator's total.
        let t0 = _mm_unpacklo_epi32(acc0, acc1);
        let t1 = _mm_unpackhi_epi32(acc0, acc1);
        let t2 = _mm_unpacklo_epi32(acc2, acc3);
        let t3 = _mm_unpackhi_epi32(acc2, acc3);
        let s01 = _mm_add_epi32(t0, t1);
        let s23 = _mm_add_epi32(t2, t3);
        _mm_add_epi32(_mm_unpacklo_epi64(s01, s23), _mm_unpackhi_epi64(s01, s23))
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn hsum_epi32(v: std::arch::x86_64::__m128i) -> i32 {
    use std::arch::x86_64::*;
    // SAFETY: pure register arithmetic, no memory access.
    unsafe {
        let hi = _mm_shuffle_epi32(v, 0b01_00_11_10);
        let sum2 = _mm_add_epi32(v, hi);
        let hi2 = _mm_shuffle_epi32(sum2, 0b00_00_00_01);
        _mm_cvtsi128_si32(_mm_add_epi32(sum2, hi2))
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn dot(a: &[i16], b: &[i16]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| i32::from(x) * i32::from(y))
        .sum()
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn dot2(a: &[i16], b0: &[i16], b1: &[i16]) -> (i32, i32) {
    (dot(a, b0), dot(a, b1))
}

/// Cache-blocked int8 GEMM: `out[i][j] = dot(a[i], bt[j]) * a_scale *
/// w_scales[j] + bias[j]`, with `a` an `m × k_pad` activation matrix and
/// `bt` an `n × k_pad` transposed weight matrix (row = output channel).
/// `out` must hold `m * n` elements and is overwritten.
// A GEMM signature is its argument list: shapes, operands, and the fused
// scale/bias epilogue. Bundling them into a struct would only move the
// nine names one level down.
#[allow(clippy::too_many_arguments)]
pub(crate) fn qgemm(
    m: usize,
    n: usize,
    k_pad: usize,
    a: &[i16],
    bt: &[i16],
    a_scale: f32,
    w_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k_pad);
    debug_assert_eq!(bt.len(), n * k_pad);
    debug_assert_eq!(w_scales.len(), n);
    debug_assert!(out.len() >= m * n);
    let mut jb = 0;
    while jb < n {
        let j_end = (jb + J_BLOCK).min(n);
        for i in 0..m {
            let a_row = &a[i * k_pad..(i + 1) * k_pad];
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut j = jb;
            #[cfg(target_arch = "x86_64")]
            {
                use std::arch::x86_64::*;
                while j + 3 < j_end {
                    let d = dot4(
                        a_row,
                        &bt[j * k_pad..(j + 1) * k_pad],
                        &bt[(j + 1) * k_pad..(j + 2) * k_pad],
                        &bt[(j + 2) * k_pad..(j + 3) * k_pad],
                        &bt[(j + 3) * k_pad..(j + 4) * k_pad],
                    );
                    // SAFETY: `j + 3 < j_end <= n`, so the 4-wide loads and
                    // store stay inside `w_scales`/`bias`/`out_row` (all
                    // length `n`). Per-lane ops match the scalar epilogue's
                    // order, so results are bit-identical to it.
                    unsafe {
                        let f = _mm_mul_ps(_mm_cvtepi32_ps(d), _mm_set1_ps(a_scale));
                        let mut r = _mm_mul_ps(f, _mm_loadu_ps(w_scales.as_ptr().add(j)));
                        if let Some(b) = bias {
                            r = _mm_add_ps(r, _mm_loadu_ps(b.as_ptr().add(j)));
                        }
                        _mm_storeu_ps(out_row.as_mut_ptr().add(j), r);
                    }
                    j += 4;
                }
            }
            while j + 1 < j_end {
                let (d0, d1) = dot2(
                    a_row,
                    &bt[j * k_pad..(j + 1) * k_pad],
                    &bt[(j + 1) * k_pad..(j + 2) * k_pad],
                );
                let base0 = bias.map_or(0.0, |b| b[j]);
                let base1 = bias.map_or(0.0, |b| b[j + 1]);
                out_row[j] = d0 as f32 * a_scale * w_scales[j] + base0;
                out_row[j + 1] = d1 as f32 * a_scale * w_scales[j + 1] + base1;
                j += 2;
            }
            if j < j_end {
                let d = dot(a_row, &bt[j * k_pad..(j + 1) * k_pad]);
                out_row[j] = d as f32 * a_scale * w_scales[j] + bias.map_or(0.0, |b| b[j]);
            }
        }
        jb = j_end;
    }
}

/// Row-vector GEMM accumulating into `out`: `out[j] += dot(a, bt[j]) *
/// a_scale * w_scales[j]`. Used by the LSTM recurrence, where the gate
/// pre-activations already hold `x·Wx + b` and the hidden contribution is
/// added per step.
pub(crate) fn qgemv_acc(
    n: usize,
    k_pad: usize,
    a: &[i16],
    bt: &[i16],
    a_scale: f32,
    w_scales: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), k_pad);
    debug_assert_eq!(bt.len(), n * k_pad);
    debug_assert!(out.len() >= n && w_scales.len() == n);
    let mut j = 0;
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        while j + 3 < n {
            let d = dot4(
                a,
                &bt[j * k_pad..(j + 1) * k_pad],
                &bt[(j + 1) * k_pad..(j + 2) * k_pad],
                &bt[(j + 2) * k_pad..(j + 3) * k_pad],
                &bt[(j + 3) * k_pad..(j + 4) * k_pad],
            );
            // SAFETY: `j + 3 < n`, so the 4-wide loads and the accumulate
            // store stay inside `w_scales`/`out` (length >= n); per-lane op
            // order matches the scalar tail below.
            unsafe {
                let f = _mm_mul_ps(_mm_cvtepi32_ps(d), _mm_set1_ps(a_scale));
                let r = _mm_mul_ps(f, _mm_loadu_ps(w_scales.as_ptr().add(j)));
                let cur = _mm_loadu_ps(out.as_ptr().add(j));
                _mm_storeu_ps(out.as_mut_ptr().add(j), _mm_add_ps(cur, r));
            }
            j += 4;
        }
    }
    while j + 1 < n {
        let (d0, d1) = dot2(
            a,
            &bt[j * k_pad..(j + 1) * k_pad],
            &bt[(j + 1) * k_pad..(j + 2) * k_pad],
        );
        out[j] += d0 as f32 * a_scale * w_scales[j];
        out[j + 1] += d1 as f32 * a_scale * w_scales[j + 1];
        j += 2;
    }
    if j < n {
        out[j] += dot(a, &bt[j * k_pad..(j + 1) * k_pad]) as f32 * a_scale * w_scales[j];
    }
}

// ---------------------------------------------------------------------------
// Fast activations
// ---------------------------------------------------------------------------

/// Half-width of the tanh interpolation table; `tanh(±8)` differs from ±1
/// by 2.3e-7, far below the int8 quantization error.
const TANH_RANGE: f32 = 8.0;
/// Interpolation intervals across `[-TANH_RANGE, TANH_RANGE]`. At 512
/// intervals the linear-interpolation error is bounded by
/// `max|tanh''| · h² / 8 ≈ 1.2e-4`.
const TANH_INTERVALS: usize = 512;

struct TanhTable {
    knots: [f32; TANH_INTERVALS + 1],
}

fn tanh_table() -> &'static TanhTable {
    use std::sync::OnceLock;
    static TABLE: OnceLock<TanhTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut knots = [0.0_f32; TANH_INTERVALS + 1];
        for (i, k) in knots.iter_mut().enumerate() {
            let x = -TANH_RANGE + 2.0 * TANH_RANGE * i as f32 / TANH_INTERVALS as f32;
            *k = x.tanh();
        }
        TanhTable { knots }
    })
}

/// Borrow the shared activation table once per window so the hot loop
/// avoids the `OnceLock` check per element.
#[derive(Clone, Copy)]
pub(crate) struct ActTable(&'static TanhTable);

impl ActTable {
    pub(crate) fn get() -> Self {
        ActTable(tanh_table())
    }

    /// `tanh` by table lookup with linear interpolation (|err| ≲ 1.2e-4).
    #[inline]
    pub(crate) fn tanh(self, x: f32) -> f32 {
        let t = (x.clamp(-TANH_RANGE, TANH_RANGE) + TANH_RANGE)
            * (TANH_INTERVALS as f32 / (2.0 * TANH_RANGE));
        let i = (t as usize).min(TANH_INTERVALS - 1);
        let frac = t - i as f32;
        let lo = self.0.knots[i];
        lo + (self.0.knots[i + 1] - lo) * frac
    }

    /// `sigmoid(x) = 0.5 + 0.5·tanh(x/2)` through the same table.
    #[inline]
    pub(crate) fn sigmoid(self, x: f32) -> f32 {
        0.5 + 0.5 * self.tanh(0.5 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_dot(a: &[i16], b: &[i16]) -> i32 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum()
    }

    #[test]
    fn dot_kernels_match_scalar_reference() {
        for k in [LANE, 2 * LANE, 5 * LANE] {
            let a: Vec<i16> = (0..k).map(|i| ((i * 37 + 11) % 255) as i16 - 127).collect();
            let b0: Vec<i16> = (0..k).map(|i| ((i * 53 + 7) % 255) as i16 - 127).collect();
            let b1: Vec<i16> = (0..k).map(|i| ((i * 29 + 3) % 255) as i16 - 127).collect();
            assert_eq!(dot(&a, &b0), scalar_dot(&a, &b0));
            let (d0, d1) = dot2(&a, &b0, &b1);
            assert_eq!(d0, scalar_dot(&a, &b0));
            assert_eq!(d1, scalar_dot(&a, &b1));
        }
    }

    #[test]
    fn qgemm_matches_naive_integer_product() {
        let (m, n, k) = (5, 67, 3 * LANE);
        let a: Vec<i16> = (0..m * k).map(|i| ((i * 31) % 255) as i16 - 127).collect();
        let bt: Vec<i16> = (0..n * k).map(|i| ((i * 17) % 255) as i16 - 127).collect();
        let scales: Vec<f32> = (0..n).map(|j| 0.01 + j as f32 * 1e-4).collect();
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.1).collect();
        let a_scale = 0.02_f32;
        let mut out = vec![0.0_f32; m * n];
        qgemm(m, n, k, &a, &bt, a_scale, &scales, Some(&bias), &mut out);
        for i in 0..m {
            for j in 0..n {
                let acc = scalar_dot(&a[i * k..(i + 1) * k], &bt[j * k..(j + 1) * k]);
                let want = acc as f32 * a_scale * scales[j] + bias[j];
                assert_eq!(out[i * n + j], want, "({i},{j})");
            }
        }
    }

    #[test]
    fn qgemv_accumulates() {
        let (n, k) = (9, LANE);
        let a: Vec<i16> = (0..k).map(|i| i as i16 - 3).collect();
        let bt: Vec<i16> = (0..n * k).map(|i| (i % 11) as i16 - 5).collect();
        let scales = vec![0.5_f32; n];
        let mut out = vec![1.0_f32; n];
        qgemv_acc(n, k, &a, &bt, 0.25, &scales, &mut out);
        for j in 0..n {
            let acc = scalar_dot(&a, &bt[j * k..(j + 1) * k]);
            assert_eq!(out[j], 1.0 + acc as f32 * 0.25 * 0.5, "{j}");
        }
    }

    #[test]
    fn quantize_row_clamps_and_pads() {
        let src = [0.0, 1.0, -1.0, 10.0, -10.0];
        let mut dst = vec![99_i16; pad_to_lane(src.len())];
        quantize_row(&src, 127.0, &mut dst); // scale = 1/127
        assert_eq!(&dst[..5], &[0, 127, -127, 127, -127]);
        assert!(dst[5..].iter().all(|&v| v == 0), "padding must be zeroed");
    }

    #[test]
    fn fast_activations_are_accurate() {
        let t = ActTable::get();
        let mut x = -12.0_f32;
        while x <= 12.0 {
            assert!(
                (t.tanh(x) - x.tanh()).abs() < 2e-4,
                "tanh({x}): {} vs {}",
                t.tanh(x),
                x.tanh()
            );
            let sig = 1.0 / (1.0 + (-x).exp());
            assert!(
                (t.sigmoid(x) - sig).abs() < 2e-4,
                "sigmoid({x}): {} vs {sig}",
                t.sigmoid(x)
            );
            x += 0.013;
        }
    }
}
