//! Post-training int8 quantization of the inference fast path.
//!
//! The marking stage is DLACEP's steady-state hot loop: every assembler
//! window pays a stacked-BiLSTM forward pass before the CEP engine sees a
//! single event. The paper runs this on a GPU; on CPU the classic
//! inference-stack answer is symmetric per-channel int8 post-training
//! quantization with integer kernels:
//!
//! * **Weights** are quantized per *output channel* (`scale_j =
//!   max|W[·,j]| / 127`), which keeps the quantization grid tight for every
//!   channel regardless of how the channel magnitudes vary.
//! * **Activations** use a single static scale per tensor: the stacked
//!   encoder's hidden states are `tanh`-bounded in (-1, 1) so their scale
//!   is exactly `1/127`, and only the layer-0 input scale needs
//!   calibration from sample windows (see
//!   [`calibrate_input_scale`]).
//! * **Kernels** accumulate in `i32` over lane-padded `i16` operands (see
//!   [`kernel`](self)); the float result is recovered with one multiply
//!   per output element.
//! * **No allocation in steady state**: every intermediate lives in a
//!   [`ScratchArena`] that grows to the high-water mark of the windows it
//!   has seen and is then reused verbatim.
//!
//! Quantized layers serialize through both `serde` (model bundles) and the
//! `dlacep-dur` binary codec (checkpoint-grade round-trips): the canonical
//! form is the `i8` tensor plus per-channel scales; the packed `i16`
//! inference layout is rebuilt on load.

mod kernel;

use crate::linear::Linear;
use crate::lstm::{BiLstmLayer, LstmLayer, StackedBiLstm};
use crate::matrix::{Matrix, ShapeError};
use crate::params::ParamStore;
use dlacep_dur::{CodecError, Dec, Decoder, Enc, Encoder};
use kernel::{pad_to_lane, qgemm, qgemv_acc, quantize_row, ActTable};
use serde::{DeError, Deserialize, Serialize, Value};

/// Scale of a tanh-bounded activation tensor: hidden states live in
/// (-1, 1), so ±127 maps exactly onto the open unit interval.
pub const UNIT_SCALE: f32 = 1.0 / 127.0;

/// Errors surfaced while quantizing a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuantError {
    /// An operand had an impossible shape (e.g. malformed calibration
    /// windows); carries the structured kernel error instead of panicking.
    Shape(ShapeError),
    /// Calibration needs at least one sample row.
    EmptyCalibration,
    /// A weight or calibration value was NaN/infinite; a scale derived
    /// from it would poison every inference.
    NonFinite {
        /// Which tensor carried the non-finite value.
        what: &'static str,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Shape(e) => write!(f, "quantization shape error: {e}"),
            QuantError::EmptyCalibration => {
                write!(f, "activation calibration needs at least one sample row")
            }
            QuantError::NonFinite { what } => {
                write!(f, "non-finite value in {what}; cannot derive a scale")
            }
        }
    }
}

impl std::error::Error for QuantError {}

impl From<ShapeError> for QuantError {
    fn from(e: ShapeError) -> Self {
        QuantError::Shape(e)
    }
}

/// Grow-only buffer resize: steady state never reallocates because the
/// arena converges to the high-water mark of every dimension it has seen.
pub fn ensure<T: Copy + Default>(buf: &mut Vec<T>, len: usize) {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
}

/// Preallocated scratch buffers for one quantized forward pass.
///
/// All fields are plain buffers with unspecified contents between calls;
/// callers borrow the fields they need (disjoint field borrows keep the
/// whole pass allocation-free). One arena serves one inference at a time —
/// concurrent marking uses an arena pool (one arena per in-flight window).
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Quantized activation rows for the current layer (`T × k_pad`).
    pub xq: Vec<i16>,
    /// Quantized hidden-state row for the recurrence (`k_pad(H)`).
    pub hq: Vec<i16>,
    /// Layer input/output ping-pong buffers (`T × width`).
    pub io_a: Vec<f32>,
    /// Second half of the ping-pong pair.
    pub io_b: Vec<f32>,
    /// Gate pre-activations (`T × 4H`).
    pub gates: Vec<f32>,
    /// LSTM hidden state (`H`).
    pub h: Vec<f32>,
    /// LSTM cell state (`H`).
    pub c: Vec<f32>,
    /// Emission scores (`T × L`).
    pub emit: Vec<f32>,
    /// Per-event positive-label probabilities (`T`).
    pub probs: Vec<f32>,
    /// CRF forward trellis (`T × L`).
    pub crf_alpha: Vec<f32>,
    /// CRF backward trellis (`T × L`).
    pub crf_beta: Vec<f32>,
}

impl ScratchArena {
    /// Fresh, empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Derive a static activation scale from calibration rows: `max|x| / 127`,
/// floored so an all-zero calibration set still yields a usable scale.
pub fn calibrate_input_scale<'a, I>(rows: I) -> Result<f32, QuantError>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut max_abs = 0.0_f32;
    let mut seen = false;
    for row in rows {
        seen = true;
        for &v in row {
            if !v.is_finite() {
                return Err(QuantError::NonFinite {
                    what: "calibration sample",
                });
            }
            max_abs = max_abs.max(v.abs());
        }
    }
    if !seen {
        return Err(QuantError::EmptyCalibration);
    }
    Ok(max_abs.max(1e-6) / 127.0)
}

// ---------------------------------------------------------------------------
// QuantizedMatrix
// ---------------------------------------------------------------------------

/// A weight matrix quantized symmetrically per output channel.
///
/// Canonical storage is transposed relative to the f32 layer layout: row
/// `j` holds output channel `j`'s weights as `i8`, with `scales[j]`
/// recovering the float value (`w ≈ q · scale`). A lane-padded `i16` copy
/// (`packed`) feeds the SIMD kernels; it is derived data, rebuilt on
/// deserialization and excluded from the serialized form.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    out_dim: usize,
    in_dim: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
    packed: Vec<i16>,
}

impl QuantizedMatrix {
    /// Quantize `w` (layer layout: `in_dim × out_dim`, one column per
    /// output channel) with per-channel max-abs scales.
    pub fn from_weights(w: &Matrix) -> Result<Self, QuantError> {
        let (in_dim, out_dim) = w.shape();
        let mut data = vec![0_i8; out_dim * in_dim];
        let mut scales = vec![0.0_f32; out_dim];
        for j in 0..out_dim {
            let mut max_abs = 0.0_f32;
            for k in 0..in_dim {
                let v = w.try_get(k, j)?;
                if !v.is_finite() {
                    return Err(QuantError::NonFinite { what: "weights" });
                }
                max_abs = max_abs.max(v.abs());
            }
            // An all-zero channel quantizes to zeros under any scale; 1.0
            // avoids a 0/0 in the reverse mapping.
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
            scales[j] = scale;
            let inv = 1.0 / scale;
            for k in 0..in_dim {
                data[j * in_dim + k] = (w.try_get(k, j)? * inv).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Ok(Self::assemble(out_dim, in_dim, data, scales))
    }

    fn assemble(out_dim: usize, in_dim: usize, data: Vec<i8>, scales: Vec<f32>) -> Self {
        let k_pad = pad_to_lane(in_dim);
        let mut packed = vec![0_i16; out_dim * k_pad];
        for j in 0..out_dim {
            for k in 0..in_dim {
                packed[j * k_pad + k] = i16::from(data[j * in_dim + k]);
            }
        }
        Self {
            out_dim,
            in_dim,
            data,
            scales,
            packed,
        }
    }

    /// Number of output channels.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Lane-padded input width of the packed layout.
    pub(crate) fn k_pad(&self) -> usize {
        pad_to_lane(self.in_dim)
    }

    /// Per-output-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Packed transposed `i16` rows for the kernels.
    pub(crate) fn packed(&self) -> &[i16] {
        &self.packed
    }

    /// Reconstruct the float weights (layer layout `in_dim × out_dim`).
    /// Per-channel round-trip error is bounded by `scale_j / 2` per
    /// element.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.in_dim, self.out_dim, |k, j| {
            f32::from(self.data[j * self.in_dim + k]) * self.scales[j]
        })
    }
}

impl Serialize for QuantizedMatrix {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("out_dim".into(), self.out_dim.to_value()),
            ("in_dim".into(), self.in_dim.to_value()),
            ("data".into(), self.data.to_value()),
            ("scales".into(), self.scales.to_value()),
        ])
    }
}

impl Deserialize for QuantizedMatrix {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::new("QuantizedMatrix: expected map"))?;
        let out_dim: usize = serde::field(m, "out_dim")?;
        let in_dim: usize = serde::field(m, "in_dim")?;
        let data: Vec<i8> = serde::field(m, "data")?;
        let scales: Vec<f32> = serde::field(m, "scales")?;
        if data.len() != out_dim * in_dim || scales.len() != out_dim {
            return Err(DeError::new("QuantizedMatrix: shape/data mismatch"));
        }
        Ok(Self::assemble(out_dim, in_dim, data, scales))
    }
}

impl Enc for QuantizedMatrix {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.out_dim);
        e.put(&self.in_dim);
        for &b in &self.data {
            e.put_u8(b as u8);
        }
        e.put(&self.scales);
    }
}

impl Dec for QuantizedMatrix {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let out_dim: usize = d.get()?;
        let in_dim: usize = d.get()?;
        let n = out_dim
            .checked_mul(in_dim)
            .ok_or_else(|| CodecError::Malformed("quantized matrix shape overflow".into()))?;
        let data: Vec<i8> = d.take_bytes(n)?.iter().map(|&b| b as i8).collect();
        let scales: Vec<f32> = d.get()?;
        if scales.len() != out_dim {
            return Err(CodecError::Malformed(
                "quantized matrix scale count mismatch".into(),
            ));
        }
        Ok(Self::assemble(out_dim, in_dim, data, scales))
    }
}

// ---------------------------------------------------------------------------
// QuantizedLinear
// ---------------------------------------------------------------------------

/// A dense layer with int8 weights and a static input scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLinear {
    w: QuantizedMatrix,
    bias: Vec<f32>,
    in_scale: f32,
}

impl QuantizedLinear {
    /// Quantize a trained [`Linear`]; `in_scale` is the static scale of the
    /// activations this layer will see.
    pub fn quantize(store: &ParamStore, layer: &Linear, in_scale: f32) -> Result<Self, QuantError> {
        let (w_id, b_id) = layer.params();
        let w = QuantizedMatrix::from_weights(store.value(w_id))?;
        let bias = store.value(b_id).as_slice().to_vec();
        Ok(Self { w, bias, in_scale })
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.out_dim()
    }

    /// The int8 weight matrix (per-channel scales included).
    pub fn weights(&self) -> &QuantizedMatrix {
        &self.w
    }

    /// `x · W + b` over `t_len` rows read from `input` (`t_len × in_dim`),
    /// written to `out` (`t_len × out_dim`). `xq` is quantization scratch.
    pub fn infer_into(&self, t_len: usize, input: &[f32], xq: &mut Vec<i16>, out: &mut Vec<f32>) {
        let (k, n, kp) = (self.w.in_dim(), self.w.out_dim(), self.w.k_pad());
        ensure(xq, t_len * kp);
        ensure(out, t_len * n);
        let inv = 1.0 / self.in_scale;
        for t in 0..t_len {
            quantize_row(
                &input[t * k..(t + 1) * k],
                inv,
                &mut xq[t * kp..(t + 1) * kp],
            );
        }
        qgemm(
            t_len,
            n,
            kp,
            &xq[..t_len * kp],
            self.w.packed(),
            self.in_scale,
            self.w.scales(),
            Some(&self.bias),
            out,
        );
    }
}

impl Enc for QuantizedLinear {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.w);
        e.put(&self.bias);
        e.put(&self.in_scale);
    }
}

impl Dec for QuantizedLinear {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            w: d.get()?,
            bias: d.get()?,
            in_scale: d.get()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Quantized LSTM stack
// ---------------------------------------------------------------------------

/// One LSTM direction with int8 `Wx`/`Wh` and fused gate computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLstmLayer {
    input_dim: usize,
    hidden: usize,
    wx: QuantizedMatrix,
    wh: QuantizedMatrix,
    bias: Vec<f32>,
}

impl QuantizedLstmLayer {
    /// Quantize a trained [`LstmLayer`].
    pub fn quantize(store: &ParamStore, layer: &LstmLayer) -> Result<Self, QuantError> {
        let (wx_id, wh_id, b_id) = layer.params();
        Ok(Self {
            input_dim: layer.input_dim,
            hidden: layer.hidden,
            wx: QuantizedMatrix::from_weights(store.value(wx_id))?,
            wh: QuantizedMatrix::from_weights(store.value(wh_id))?,
            bias: store.value(b_id).as_slice().to_vec(),
        })
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One direction over the sequence. `xq` holds the quantized input
    /// rows (`t_len × k_pad`, scale `x_scale`); hidden states are written
    /// into `out` at `[t * out_stride + col_off ..][..hidden]`, re-aligned
    /// to input order when `reverse`. The gate computation is fused: one
    /// pass over the pre-activation row produces i/f/g/o, the cell update,
    /// and the output row without intermediate buffers.
    #[allow(clippy::too_many_arguments)]
    fn infer_dir(
        &self,
        t_len: usize,
        xq: &[i16],
        x_scale: f32,
        reverse: bool,
        gates: &mut Vec<f32>,
        hq: &mut Vec<i16>,
        h_buf: &mut Vec<f32>,
        c_buf: &mut Vec<f32>,
        out: &mut [f32],
        out_stride: usize,
        col_off: usize,
        act: ActTable,
    ) {
        let hid = self.hidden;
        let h4 = 4 * hid;
        let kp_in = self.wx.k_pad();
        let kp_h = self.wh.k_pad();
        ensure(gates, t_len * h4);
        ensure(hq, kp_h);
        ensure(h_buf, hid);
        ensure(c_buf, hid);
        // One big GEMM computes x·Wx + b for every timestep.
        qgemm(
            t_len,
            h4,
            kp_in,
            &xq[..t_len * kp_in],
            self.wx.packed(),
            x_scale,
            self.wx.scales(),
            Some(&self.bias),
            gates,
        );
        let h = &mut h_buf[..hid];
        let c = &mut c_buf[..hid];
        h.fill(0.0);
        c.fill(0.0);
        for step in 0..t_len {
            let t = if reverse { t_len - 1 - step } else { step };
            let z = &mut gates[t * h4..(t + 1) * h4];
            if step > 0 {
                // h is tanh-bounded: static 1/127 scale, no calibration.
                quantize_row(h, 127.0, &mut hq[..kp_h]);
                qgemv_acc(
                    h4,
                    kp_h,
                    &hq[..kp_h],
                    self.wh.packed(),
                    UNIT_SCALE,
                    self.wh.scales(),
                    z,
                );
            }
            for j in 0..hid {
                let i_g = act.sigmoid(z[j]);
                let f_g = act.sigmoid(z[hid + j]);
                let g_g = act.tanh(z[2 * hid + j]);
                let o_g = act.sigmoid(z[3 * hid + j]);
                c[j] = f_g * c[j] + i_g * g_g;
                h[j] = o_g * act.tanh(c[j]);
            }
            out[t * out_stride + col_off..t * out_stride + col_off + hid].copy_from_slice(h);
        }
    }
}

impl Enc for QuantizedLstmLayer {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.input_dim);
        e.put(&self.hidden);
        e.put(&self.wx);
        e.put(&self.wh);
        e.put(&self.bias);
    }
}

impl Dec for QuantizedLstmLayer {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            input_dim: d.get()?,
            hidden: d.get()?,
            wx: d.get()?,
            wh: d.get()?,
            bias: d.get()?,
        })
    }
}

/// Both directions of one BiLSTM layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedBiLstmLayer {
    fwd: QuantizedLstmLayer,
    bwd: QuantizedLstmLayer,
}

impl QuantizedBiLstmLayer {
    /// Quantize a trained [`BiLstmLayer`].
    pub fn quantize(store: &ParamStore, layer: &BiLstmLayer) -> Result<Self, QuantError> {
        Ok(Self {
            fwd: QuantizedLstmLayer::quantize(store, &layer.fwd)?,
            bwd: QuantizedLstmLayer::quantize(store, &layer.bwd)?,
        })
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.fwd.input_dim
    }

    /// Output width (`2 × hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden
    }
}

impl Enc for QuantizedBiLstmLayer {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.fwd);
        e.put(&self.bwd);
    }
}

impl Dec for QuantizedBiLstmLayer {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            fwd: d.get()?,
            bwd: d.get()?,
        })
    }
}

/// The quantized stacked-BiLSTM encoder: the int8 counterpart of
/// [`StackedBiLstm::infer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedStackedBiLstm {
    layers: Vec<QuantizedBiLstmLayer>,
    input_scale: f32,
}

impl QuantizedStackedBiLstm {
    /// Quantize a trained stack. `input_scale` is the calibrated static
    /// scale of the layer-0 inputs (see [`calibrate_input_scale`]); every
    /// deeper layer consumes tanh-bounded activations at [`UNIT_SCALE`].
    pub fn quantize(
        store: &ParamStore,
        stack: &StackedBiLstm,
        input_scale: f32,
    ) -> Result<Self, QuantError> {
        let layers = stack
            .layers()
            .iter()
            .map(|l| QuantizedBiLstmLayer::quantize(store, l))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            layers,
            input_scale,
        })
    }

    /// Input width of the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.input_dim())
    }

    /// Output width per timestep (`2 × hidden`).
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// Number of stacked layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The calibrated layer-0 input scale.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Run the stack in place: input is read from `arena.io_a`
    /// (`t_len × input_dim`, row-major) and the final activations are left
    /// in `arena.io_a` (`t_len × out_dim`). Allocation-free once the arena
    /// has grown to this shape.
    pub fn infer_in_place(&self, t_len: usize, arena: &mut ScratchArena) {
        if t_len == 0 {
            return;
        }
        let act = ActTable::get();
        let mut x_scale = self.input_scale;
        for layer in &self.layers {
            let w_in = layer.input_dim();
            let w_out = layer.out_dim();
            let kp = layer.fwd.wx.k_pad();
            ensure(&mut arena.xq, t_len * kp);
            ensure(&mut arena.io_b, t_len * w_out);
            let inv = 1.0 / x_scale;
            for t in 0..t_len {
                quantize_row(
                    &arena.io_a[t * w_in..(t + 1) * w_in],
                    inv,
                    &mut arena.xq[t * kp..(t + 1) * kp],
                );
            }
            let hid = layer.fwd.hidden;
            for (dir, reverse, off) in [(&layer.fwd, false, 0), (&layer.bwd, true, hid)] {
                dir.infer_dir(
                    t_len,
                    &arena.xq,
                    x_scale,
                    reverse,
                    &mut arena.gates,
                    &mut arena.hq,
                    &mut arena.h,
                    &mut arena.c,
                    &mut arena.io_b,
                    w_out,
                    off,
                    act,
                );
            }
            std::mem::swap(&mut arena.io_a, &mut arena.io_b);
            x_scale = UNIT_SCALE;
        }
    }
}

impl Enc for QuantizedStackedBiLstm {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.layers);
        e.put(&self.input_scale);
    }
}

impl Dec for QuantizedStackedBiLstm {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            layers: d.get()?,
            input_scale: d.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;

    fn sample_matrix(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 7 + seed) as f32 * 0.137).sin() * (1.0 + c as f32 * 0.01)
        })
    }

    #[test]
    fn roundtrip_error_bounded_per_channel() {
        let w = sample_matrix(23, 17, 3);
        let q = QuantizedMatrix::from_weights(&w).unwrap();
        let back = q.dequantize();
        for j in 0..17 {
            // Symmetric rounding: error is at most half a quantization step.
            let bound = q.scales()[j] * 0.5 + 1e-7;
            for k in 0..23 {
                let err = (w.get(k, j) - back.get(k, j)).abs();
                assert!(err <= bound, "channel {j} row {k}: {err} > {bound}");
            }
        }
    }

    #[test]
    fn zero_channel_quantizes_cleanly() {
        let mut w = sample_matrix(5, 3, 0);
        for k in 0..5 {
            w.set(k, 1, 0.0);
        }
        let q = QuantizedMatrix::from_weights(&w).unwrap();
        let back = q.dequantize();
        for k in 0..5 {
            assert_eq!(back.get(k, 1), 0.0);
        }
    }

    #[test]
    fn non_finite_weights_rejected() {
        let mut w = sample_matrix(4, 4, 0);
        w.set(2, 2, f32::NAN);
        assert!(matches!(
            QuantizedMatrix::from_weights(&w),
            Err(QuantError::NonFinite { .. })
        ));
    }

    #[test]
    fn calibration_scale() {
        let rows: Vec<Vec<f32>> = vec![vec![0.5, -2.0], vec![1.0, 0.0]];
        let s = calibrate_input_scale(rows.iter().map(|r| r.as_slice())).unwrap();
        assert!((s - 2.0 / 127.0).abs() < 1e-9);
        assert!(matches!(
            calibrate_input_scale(std::iter::empty()),
            Err(QuantError::EmptyCalibration)
        ));
        let bad = [f32::INFINITY];
        assert!(matches!(
            calibrate_input_scale([&bad[..]]),
            Err(QuantError::NonFinite { .. })
        ));
    }

    #[test]
    fn quantized_linear_tracks_f32() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(7);
        let lin = Linear::new(&mut store, &mut init, 12, 5);
        let x = sample_matrix(6, 12, 11).map(|v| v * 0.8);
        let scale = calibrate_input_scale([x.as_slice()]).unwrap();
        let q = QuantizedLinear::quantize(&store, &lin, scale).unwrap();
        let f32_out = lin.infer(&store, &x);
        let mut xq = Vec::new();
        let mut out = Vec::new();
        q.infer_into(6, x.as_slice(), &mut xq, &mut out);
        for (i, (&a, &b)) in f32_out.as_slice().iter().zip(&out).enumerate() {
            assert!((a - b).abs() < 0.05, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn quantized_stack_tracks_f32_infer() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(17);
        let stack = StackedBiLstm::new(&mut store, &mut init, 3, 5, 2);
        let data: Vec<Vec<f32>> = (0..9)
            .map(|t| (0..3).map(|d| ((t * 3 + d) as f32 * 0.31).sin()).collect())
            .collect();
        let mut xs = Matrix::zeros(9, 3);
        for (t, row) in data.iter().enumerate() {
            xs.row_mut(t).copy_from_slice(row);
        }
        let reference = stack.infer(&store, &xs);

        let scale = calibrate_input_scale(data.iter().map(|r| r.as_slice())).unwrap();
        let q = QuantizedStackedBiLstm::quantize(&store, &stack, scale).unwrap();
        assert_eq!(q.out_dim(), 10);
        let mut arena = ScratchArena::new();
        ensure(&mut arena.io_a, 9 * 3);
        arena.io_a[..9 * 3].copy_from_slice(xs.as_slice());
        q.infer_in_place(9, &mut arena);
        let mut max_err = 0.0_f32;
        for (i, &want) in reference.as_slice().iter().enumerate() {
            max_err = max_err.max((arena.io_a[i] - want).abs());
        }
        assert!(max_err < 0.06, "max hidden-state error {max_err}");
    }

    #[test]
    fn empty_sequence_is_noop() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(1);
        let stack = StackedBiLstm::new(&mut store, &mut init, 2, 3, 1);
        let q = QuantizedStackedBiLstm::quantize(&store, &stack, UNIT_SCALE).unwrap();
        let mut arena = ScratchArena::new();
        q.infer_in_place(0, &mut arena);
        assert!(arena.io_a.is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_inference() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(5);
        let stack = StackedBiLstm::new(&mut store, &mut init, 3, 4, 2);
        let q = QuantizedStackedBiLstm::quantize(&store, &stack, 0.01).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedStackedBiLstm = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn codec_roundtrip_is_exact() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(9);
        let stack = StackedBiLstm::new(&mut store, &mut init, 4, 6, 3);
        let q = QuantizedStackedBiLstm::quantize(&store, &stack, 0.02).unwrap();
        let mut e = Encoder::new();
        e.put(&q);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back: QuantizedStackedBiLstm = d.get().unwrap();
        d.finish().unwrap();
        assert_eq!(q, back);

        let lin = Linear::new(&mut store, &mut init, 8, 2);
        let ql = QuantizedLinear::quantize(&store, &lin, UNIT_SCALE).unwrap();
        let mut e = Encoder::new();
        e.put(&ql);
        let bytes = e.into_bytes();
        let back: QuantizedLinear = Decoder::new(&bytes).get().unwrap();
        assert_eq!(ql, back);
    }

    #[test]
    fn steady_state_reuses_arena_capacity() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(2);
        let stack = StackedBiLstm::new(&mut store, &mut init, 3, 4, 2);
        let q = QuantizedStackedBiLstm::quantize(&store, &stack, 0.05).unwrap();
        let mut arena = ScratchArena::new();
        let t_len = 6;
        ensure(&mut arena.io_a, t_len * 3);
        q.infer_in_place(t_len, &mut arena);
        let caps = (
            arena.xq.capacity(),
            arena.io_a.capacity(),
            arena.io_b.capacity(),
            arena.gates.capacity(),
        );
        // A second window of the same shape must not grow anything.
        for _ in 0..3 {
            q.infer_in_place(t_len, &mut arena);
            assert_eq!(
                caps,
                (
                    arena.xq.capacity(),
                    arena.io_a.capacity(),
                    arena.io_b.capacity(),
                    arena.gates.capacity(),
                )
            );
        }
    }
}
