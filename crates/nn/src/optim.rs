//! Optimizers and learning-rate schedules.

use crate::matrix::Matrix;
use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// A gradient-descent optimizer stepping a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update using the currently accumulated gradients.
    fn step(&mut self, params: &mut ParamStore);
    /// Change the learning rate (used by [`LrSchedule`]).
    fn set_lr(&mut self, lr: f32);
    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum `mu`.
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        Self {
            lr,
            momentum: mu,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore) {
        let (lr, mu) = (self.lr, self.momentum);
        if mu == 0.0 {
            params.update_each(|_, v, g| v.axpy(-lr, g));
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|(_, v, _)| Matrix::zeros(v.rows(), v.cols()))
                .collect();
        }
        let vel = &mut self.velocity;
        params.update_each(|i, v, g| {
            let vi = &mut vel[i];
            vi.map_inplace(|x| x * mu);
            vi.axpy(1.0, g);
            v.axpy(-lr, vi);
        });
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|(_, v, _)| Matrix::zeros(v.rows(), v.cols()))
                .collect();
            self.v = params
                .iter()
                .map(|(_, v, _)| Matrix::zeros(v.rows(), v.cols()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        params.update_each(|i, val, g| {
            let mi = &mut m[i];
            let vi = &mut v[i];
            for ((mm, vv), (&gg, x)) in mi
                .as_mut_slice()
                .iter_mut()
                .zip(vi.as_mut_slice())
                .zip(g.as_slice().iter().zip(val.as_mut_slice()))
            {
                *mm = b1 * *mm + (1.0 - b1) * gg;
                *vv = b2 * *vv + (1.0 - b2) * gg * gg;
                let mhat = *mm / bc1;
                let vhat = *vv / bc2;
                *x -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Piecewise-constant learning-rate schedule over epochs.
///
/// The paper trains with a *dynamic* learning rate moving from `1e-3` to
/// `1e-4` (§5.1); [`LrSchedule::paper_default`] encodes that as a halving
/// decay clamped at `1e-4`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LrSchedule {
    initial: f32,
    floor: f32,
    decay: f32,
    every: usize,
}

impl LrSchedule {
    /// Decay `initial` by `decay` every `every` epochs, never below `floor`.
    pub fn new(initial: f32, floor: f32, decay: f32, every: usize) -> Self {
        assert!(every > 0, "decay interval must be positive");
        Self {
            initial,
            floor,
            decay,
            every,
        }
    }

    /// The paper's 1e-3 → 1e-4 schedule.
    pub fn paper_default() -> Self {
        Self::new(1e-3, 1e-4, 0.5, 5)
    }

    /// Learning rate at a given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let steps = (epoch / self.every) as i32;
        (self.initial * self.decay.powi(steps)).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    fn quadratic_step(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // minimize f(x) = (x - 3)^2 elementwise
        let mut ps = ParamStore::new();
        let id = ps.register(Matrix::zeros(1, 1));
        for _ in 0..steps {
            ps.zero_grads();
            let x = ps.value(id).get(0, 0);
            ps.grad_mut(id).set(0, 0, 2.0 * (x - 3.0));
            opt.step(&mut ps);
        }
        ps.value(id).get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = quadratic_step(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = quadratic_step(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = quadratic_step(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn lr_schedule_decays_to_floor() {
        let s = LrSchedule::paper_default();
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-9);
        assert!(s.lr_at(5) < s.lr_at(0));
        assert!((s.lr_at(1000) - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn lr_schedule_piecewise_boundaries() {
        let s = LrSchedule::new(1.0, 0.1, 0.5, 2);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(1), 1.0);
        assert_eq!(s.lr_at(2), 0.5);
        assert_eq!(s.lr_at(4), 0.25);
    }
}
