//! LSTM, BiLSTM and stacked-BiLSTM layers (paper §2.2, Fig. 7).
//!
//! Sequences are presented as one `Var` per timestep, each a `batch × dim`
//! matrix; the recurrence is unrolled onto the autodiff tape so BPTT is just
//! [`crate::graph::Graph::backward`].

use crate::graph::{Graph, Var};
use crate::init::Initializer;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// A single-direction LSTM layer with gate layout `[i | f | g | o]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLayer {
    /// Input width.
    pub input_dim: usize,
    /// Hidden-state width.
    pub hidden: usize,
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
}

impl LstmLayer {
    /// Allocate weights: `Wx: input×4H` and `Wh: H×4H` Xavier, bias with the
    /// forget gate at 1.
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        input_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx = store.register(init.xavier(input_dim, 4 * hidden));
        let wh = store.register(init.xavier(hidden, 4 * hidden));
        let b = store.register(init.lstm_bias(hidden));
        Self {
            input_dim,
            hidden,
            wx,
            wh,
            b,
        }
    }

    /// Run over the sequence; `reverse` scans right-to-left but returns the
    /// hidden states re-aligned to input order (so `out[t]` always describes
    /// timestep `t`).
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        xs: &[Var],
        reverse: bool,
    ) -> Vec<Var> {
        if xs.is_empty() {
            return Vec::new();
        }
        let batch = g.value(xs[0]).rows();
        let wx = g.param(store, self.wx);
        let wh = g.param(store, self.wh);
        let b = g.param(store, self.b);
        let mut h = g.input(Matrix::zeros(batch, self.hidden));
        let mut c = g.input(Matrix::zeros(batch, self.hidden));

        let order: Vec<usize> = if reverse {
            (0..xs.len()).rev().collect()
        } else {
            (0..xs.len()).collect()
        };
        let mut out = vec![h; xs.len()];
        for &t in &order {
            let xz = g.matmul(xs[t], wx);
            let hz = g.matmul(h, wh);
            let zsum = g.add(xz, hz);
            let z = g.add_row_broadcast(zsum, b);
            let hsz = self.hidden;
            let zi = g.slice_cols(z, 0, hsz);
            let zf = g.slice_cols(z, hsz, hsz);
            let zg = g.slice_cols(z, 2 * hsz, hsz);
            let zo = g.slice_cols(z, 3 * hsz, hsz);
            let i = g.sigmoid(zi);
            let f = g.sigmoid(zf);
            let gt = g.tanh(zg);
            let o = g.sigmoid(zo);
            let fc = g.hadamard(f, c);
            let ig = g.hadamard(i, gt);
            c = g.add(fc, ig);
            let ct = g.tanh(c);
            h = g.hadamard(o, ct);
            out[t] = h;
        }
        out
    }

    /// Parameter handles `(Wx, Wh, b)`.
    pub fn params(&self) -> (ParamId, ParamId, ParamId) {
        (self.wx, self.wh, self.b)
    }
}

/// Bidirectional LSTM: a forward and a backward [`LstmLayer`] whose hidden
/// states are concatenated per timestep, giving width `2 × hidden` (paper
/// §2.2: past *and* future context, which CEP event labeling needs because an
/// event's match membership often depends on later events).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiLstmLayer {
    /// Forward-direction LSTM.
    pub fwd: LstmLayer,
    /// Backward-direction LSTM.
    pub bwd: LstmLayer,
}

impl BiLstmLayer {
    /// Allocate both directions.
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        input_dim: usize,
        hidden: usize,
    ) -> Self {
        Self {
            fwd: LstmLayer::new(store, init, input_dim, hidden),
            bwd: LstmLayer::new(store, init, input_dim, hidden),
        }
    }

    /// Output width per timestep.
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden
    }

    /// Run both directions and concatenate per timestep.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, xs: &[Var]) -> Vec<Var> {
        let f = self.fwd.forward(g, store, xs, false);
        let b = self.bwd.forward(g, store, xs, true);
        f.into_iter()
            .zip(b)
            .map(|(hf, hb)| g.concat_cols(hf, hb))
            .collect()
    }
}

/// A stack of BiLSTM layers; layer `k+1` consumes layer `k`'s per-timestep
/// outputs. The paper's models use 3 stacked layers with hidden width 75.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackedBiLstm {
    layers: Vec<BiLstmLayer>,
}

impl StackedBiLstm {
    /// Build `num_layers` BiLSTM layers on top of `input_dim`-wide inputs.
    ///
    /// # Panics
    /// Panics if `num_layers == 0`.
    pub fn new(
        store: &mut ParamStore,
        init: &mut Initializer,
        input_dim: usize,
        hidden: usize,
        num_layers: usize,
    ) -> Self {
        assert!(num_layers > 0, "need at least one BiLSTM layer");
        let mut layers = Vec::with_capacity(num_layers);
        let mut dim = input_dim;
        for _ in 0..num_layers {
            let layer = BiLstmLayer::new(store, init, dim, hidden);
            dim = layer.out_dim();
            layers.push(layer);
        }
        Self { layers }
    }

    /// Number of stacked layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The stacked layers, bottom first (read-only; used by the int8
    /// quantizer in [`crate::quant`]).
    pub fn layers(&self) -> &[BiLstmLayer] {
        &self.layers
    }

    /// Output width per timestep (`2 × hidden`).
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Run the full stack.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, xs: &[Var]) -> Vec<Var> {
        let mut cur: Vec<Var> = xs.to_vec();
        for layer in &self.layers {
            cur = layer.forward(g, store, &cur);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};

    fn seq_inputs(g: &mut Graph, data: &[Vec<f32>]) -> Vec<Var> {
        data.iter()
            .map(|row| g.input(Matrix::from_vec(1, row.len(), row.clone())))
            .collect()
    }

    #[test]
    fn lstm_output_shapes() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(0);
        let lstm = LstmLayer::new(&mut store, &mut init, 3, 5);
        let mut g = Graph::new();
        let xs = seq_inputs(&mut g, &[vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]]);
        let hs = lstm.forward(&mut g, &store, &xs, false);
        assert_eq!(hs.len(), 2);
        assert_eq!(g.value(hs[0]).shape(), (1, 5));
    }

    #[test]
    fn empty_sequence_yields_empty() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(0);
        let lstm = LstmLayer::new(&mut store, &mut init, 3, 5);
        let mut g = Graph::new();
        assert!(lstm.forward(&mut g, &store, &[], false).is_empty());
    }

    #[test]
    fn reverse_aligns_to_input_order() {
        // A reversed scan over a palindromic sequence must equal the forward
        // scan read backwards.
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(3);
        let lstm = LstmLayer::new(&mut store, &mut init, 2, 4);
        let data = vec![vec![0.5, -0.5], vec![1.0, 0.0], vec![0.5, -0.5]];
        let mut g = Graph::new();
        let xs = seq_inputs(&mut g, &data);
        let fwd = lstm.forward(&mut g, &store, &xs, false);
        let mut g2 = Graph::new();
        let rev_data: Vec<_> = data.iter().rev().cloned().collect();
        let xs2 = seq_inputs(&mut g2, &rev_data);
        let bwd = lstm.forward(&mut g2, &store, &xs2, true);
        // bwd on reversed input, re-aligned, equals fwd on original, reversed.
        for (t, v) in fwd.iter().enumerate() {
            let expect = g.value(*v);
            let got = g2.value(bwd[bwd.len() - 1 - t]);
            for (a, b) in expect.as_slice().iter().zip(got.as_slice()) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bilstm_concats_directions() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(0);
        let bi = BiLstmLayer::new(&mut store, &mut init, 3, 4);
        assert_eq!(bi.out_dim(), 8);
        let mut g = Graph::new();
        let xs = seq_inputs(&mut g, &vec![vec![0.1, 0.2, 0.3]; 4]);
        let hs = bi.forward(&mut g, &store, &xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(g.value(hs[0]).shape(), (1, 8));
    }

    #[test]
    fn stacked_shapes() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(0);
        let stack = StackedBiLstm::new(&mut store, &mut init, 3, 4, 3);
        assert_eq!(stack.num_layers(), 3);
        assert_eq!(stack.out_dim(), 8);
        let mut g = Graph::new();
        let xs = seq_inputs(&mut g, &vec![vec![0.1, 0.2, 0.3]; 5]);
        let hs = stack.forward(&mut g, &store, &xs);
        assert_eq!(hs.len(), 5);
        assert_eq!(g.value(hs[4]).shape(), (1, 8));
    }

    #[test]
    fn lstm_learns_last_element_sign() {
        // Tiny sanity task: classify by the sign of the last input. An LSTM
        // must keep (at minimum) recent information, so loss should drop
        // substantially within a few hundred steps.
        use crate::linear::Linear;
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(11);
        let lstm = LstmLayer::new(&mut store, &mut init, 1, 6);
        let head = Linear::new(&mut store, &mut init, 6, 1);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![0.3, -0.2, 0.8], 1.0),
            (vec![-0.5, 0.4, -0.9], 0.0),
            (vec![0.9, 0.1, -0.4], 0.0),
            (vec![-0.1, -0.7, 0.6], 1.0),
        ];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..300 {
            store.zero_grads();
            let mut g = Graph::new();
            let mut total = None;
            for (xs, t) in &seqs {
                let vars: Vec<Var> = xs
                    .iter()
                    .map(|&v| g.input(Matrix::from_vec(1, 1, vec![v])))
                    .collect();
                let hs = lstm.forward(&mut g, &store, &vars, false);
                let logit = head.forward(&mut g, &store, *hs.last().unwrap());
                let loss = g.bce_with_logits(logit, Matrix::from_vec(1, 1, vec![*t]));
                total = Some(match total {
                    None => loss,
                    Some(acc) => g.add(acc, loss),
                });
            }
            let total = total.unwrap();
            let loss_val = g.value(total).get(0, 0) / seqs.len() as f32;
            if step == 0 {
                first = loss_val;
            }
            last = loss_val;
            g.backward(total, &mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        assert!(
            last < first * 0.2,
            "loss {first} -> {last} did not drop enough"
        );
    }
}

impl LstmLayer {
    /// Tape-free inference over a sequence laid out as a `T×input` matrix
    /// (row per timestep). Returns `T×hidden`. This is the hot path of the
    /// DLACEP filter: it avoids all autograd bookkeeping and performs one
    /// `T×input · input×4H` GEMM per call plus `T` small recurrences.
    pub fn infer(&self, store: &ParamStore, xs: &Matrix, reverse: bool) -> Matrix {
        let t_len = xs.rows();
        let h = self.hidden;
        let mut out = Matrix::zeros(t_len, h);
        if t_len == 0 {
            return out;
        }
        let wx = store.value(self.wx);
        let wh = store.value(self.wh);
        let bias = store.value(self.b);
        let xw = xs.matmul(wx); // T×4H, one big GEMM
        let mut hv = vec![0.0_f32; h];
        let mut cv = vec![0.0_f32; h];
        let mut z = vec![0.0_f32; 4 * h];
        let steps: Vec<usize> = if reverse {
            (0..t_len).rev().collect()
        } else {
            (0..t_len).collect()
        };
        for &t in &steps {
            // z = xw[t] + h · Wh + b
            z.copy_from_slice(xw.row(t));
            for (zi, &bi) in z.iter_mut().zip(bias.row(0)) {
                *zi += bi;
            }
            for (k, &hk) in hv.iter().enumerate() {
                if hk == 0.0 {
                    continue;
                }
                let wrow = wh.row(k);
                for (zi, &wkj) in z.iter_mut().zip(wrow) {
                    *zi += hk * wkj;
                }
            }
            for j in 0..h {
                let i = 1.0 / (1.0 + (-z[j]).exp());
                let f = 1.0 / (1.0 + (-z[h + j]).exp());
                let g = z[2 * h + j].tanh();
                let o = 1.0 / (1.0 + (-z[3 * h + j]).exp());
                cv[j] = f * cv[j] + i * g;
                hv[j] = o * cv[j].tanh();
            }
            out.row_mut(t).copy_from_slice(&hv);
        }
        out
    }
}

impl BiLstmLayer {
    /// Tape-free inference: `T×input` → `T×2H` (forward ‖ backward).
    pub fn infer(&self, store: &ParamStore, xs: &Matrix) -> Matrix {
        let f = self.fwd.infer(store, xs, false);
        let b = self.bwd.infer(store, xs, true);
        f.concat_cols(&b)
    }
}

impl StackedBiLstm {
    /// Tape-free inference through the whole stack: `T×input` → `T×2H`.
    pub fn infer(&self, store: &ParamStore, xs: &Matrix) -> Matrix {
        let mut cur = xs.clone();
        for layer in &self.layers {
            cur = layer.infer(store, &cur);
        }
        cur
    }
}

#[cfg(test)]
mod infer_tests {
    use super::*;

    fn to_matrix(data: &[Vec<f32>]) -> Matrix {
        let cols = data[0].len();
        let mut m = Matrix::zeros(data.len(), cols);
        for (r, row) in data.iter().enumerate() {
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    #[test]
    fn infer_matches_graph_forward() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(17);
        let stack = StackedBiLstm::new(&mut store, &mut init, 3, 5, 2);
        let data: Vec<Vec<f32>> = (0..7)
            .map(|t| (0..3).map(|d| ((t * 3 + d) as f32 * 0.31).sin()).collect())
            .collect();
        // Graph path (batch = 1).
        let mut g = Graph::new();
        let xs: Vec<Var> = data
            .iter()
            .map(|row| g.input(Matrix::from_vec(1, 3, row.clone())))
            .collect();
        let hs = stack.forward(&mut g, &store, &xs);
        // Fast path.
        let fast = stack.infer(&store, &to_matrix(&data));
        assert_eq!(fast.shape(), (7, 10));
        for (t, h) in hs.iter().enumerate() {
            for (a, b) in g.value(*h).row(0).iter().zip(fast.row(t)) {
                assert!((a - b).abs() < 1e-5, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn infer_empty_sequence() {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(1);
        let lstm = LstmLayer::new(&mut store, &mut init, 2, 3);
        let out = lstm.infer(&store, &Matrix::zeros(0, 2), false);
        assert_eq!(out.shape(), (0, 3));
    }
}
