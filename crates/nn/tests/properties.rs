//! Property-based tests of the neural substrate: algebraic identities of the
//! matrix kernels, autograd-vs-finite-difference agreement on random graphs,
//! CRF distribution invariants, and fast-path/graph-path equivalence.

use dlacep_nn::graph::Graph;
use dlacep_nn::matrix::Matrix;
use dlacep_nn::params::ParamStore;
use dlacep_nn::{Crf, Initializer, StackedBiLstm};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transpose_is_involution(m in matrix_strategy(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transpose_identities(a in matrix_strategy(3, 4), b in matrix_strategy(5, 4)) {
        // (A·Bᵀ)ᵀ == B·Aᵀ
        let left = a.matmul_transpose_rhs(&b).transpose();
        let right = b.matmul_transpose_rhs(&a);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_slice_roundtrip(a in matrix_strategy(2, 3), b in matrix_strategy(2, 4)) {
        let cat = a.concat_cols(&b);
        prop_assert_eq!(cat.slice_cols(0, 3), a);
        prop_assert_eq!(cat.slice_cols(3, 4), b);
    }

    #[test]
    fn sum_rows_preserves_total(m in matrix_strategy(4, 3)) {
        let total: f32 = m.as_slice().iter().sum();
        prop_assert!((m.sum_rows().sum() - total).abs() < 1e-4);
    }

    #[test]
    fn autograd_matches_finite_difference_on_random_mlp(
        w in matrix_strategy(3, 3),
        x in matrix_strategy(2, 3),
        r in 0usize..3,
        c in 0usize..3,
    ) {
        let mut store = ParamStore::new();
        let id = store.register(w);
        let build = |g: &mut Graph, store: &ParamStore| {
            let p = g.param(store, id);
            let xin = g.input(x.clone());
            let h = g.matmul(xin, p);
            let t = g.tanh(h);
            let s = g.sigmoid(t);
            g.mean_all(s)
        };
        let mut g = Graph::new();
        let loss = build(&mut g, &store);
        g.backward(loss, &mut store);
        let analytic = store.grad(id).get(r, c);

        let eps = 1e-2f32;
        let orig = store.value(id).get(r, c);
        store.value_mut(id).set(r, c, orig + eps);
        let mut g1 = Graph::new();
        let v = build(&mut g1, &store);
        let hi = g1.value(v).get(0, 0);
        store.value_mut(id).set(r, c, orig - eps);
        let mut g2 = Graph::new();
        let v = build(&mut g2, &store);
        let lo = g2.value(v).get(0, 0);
        let numeric = (hi - lo) / (2.0 * eps);
        prop_assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
            "numeric {} vs analytic {}", numeric, analytic
        );
    }

    #[test]
    fn crf_marginals_are_distributions(e in matrix_strategy(5, 2)) {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(1);
        let crf = Crf::new(&mut store, &mut init, 2);
        let m = crf.marginals(&store, &e);
        for t in 0..5 {
            let s = m.get(t, 0) + m.get(t, 1);
            prop_assert!((s - 1.0).abs() < 1e-3, "row {} sums to {}", t, s);
            prop_assert!(m.get(t, 0) >= -1e-6 && m.get(t, 1) >= -1e-6);
        }
    }

    #[test]
    fn crf_nll_nonnegative(e in matrix_strategy(4, 2), path_bits in 0u8..16) {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(2);
        let crf = Crf::new(&mut store, &mut init, 2);
        let gold: Vec<usize> = (0..4).map(|i| ((path_bits >> i) & 1) as usize).collect();
        // NLL = logZ - score(gold) >= 0 since Z sums over all paths incl gold.
        prop_assert!(crf.nll(&store, &e, &gold) >= -1e-4);
    }

    #[test]
    fn viterbi_path_scores_at_least_gold(e in matrix_strategy(4, 2), path_bits in 0u8..16) {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(3);
        let crf = Crf::new(&mut store, &mut init, 2);
        let gold: Vec<usize> = (0..4).map(|i| ((path_bits >> i) & 1) as usize).collect();
        let best = crf.decode(&store, &e);
        prop_assert!(
            crf.path_score(&store, &e, &best) >= crf.path_score(&store, &e, &gold) - 1e-4
        );
    }

    #[test]
    fn stacked_bilstm_fast_path_matches_graph(xs in matrix_strategy(6, 3)) {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(4);
        let stack = StackedBiLstm::new(&mut store, &mut init, 3, 4, 2);
        let fast = stack.infer(&store, &xs);
        let mut g = Graph::new();
        let vars: Vec<_> =
            (0..6).map(|t| g.input(xs.slice_rows(t, 1))).collect();
        let hs = stack.forward(&mut g, &store, &vars);
        for (t, h) in hs.iter().enumerate() {
            for (a, b) in g.value(*h).row(0).iter().zip(fast.row(t)) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
