//! Property tests for the int8 quantization path: the per-channel
//! round-trip error bound and int8-vs-f32 inference equivalence hold for
//! *arbitrary* weights and inputs, not just the unit-test fixtures.

use dlacep_nn::quant::{calibrate_input_scale, QuantizedMatrix, ScratchArena};
use dlacep_nn::{
    Initializer, Linear, Matrix, ParamStore, QuantizedLinear, QuantizedStackedBiLstm, StackedBiLstm,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Symmetric per-channel int8: every dequantized weight is within half a
    // quantization step of the original, per that channel's scale. Every
    // 9th weight is forced to zero to keep the zero-channel path covered.
    #[test]
    fn roundtrip_error_bounded_per_channel(
        rows in 1usize..12,
        cols in 1usize..12,
        raw in prop::collection::vec(-4.0f32..4.0, 12 * 12),
    ) {
        let w = Matrix::from_fn(rows, cols, |i, j| {
            let k = i * cols + j;
            if k % 9 == 0 { 0.0 } else { raw[k] }
        });
        let q = QuantizedMatrix::from_weights(&w).unwrap();
        let back = q.dequantize();
        for j in 0..cols {
            let half_step = q.scales()[j] * 0.5 + 1e-7;
            for i in 0..rows {
                let (orig, deq) = (w.get(i, j), back.get(i, j));
                prop_assert!(
                    (orig - deq).abs() <= half_step,
                    "channel {}: |{} - {}| > {}", j, orig, deq, half_step
                );
            }
        }
    }

    // The int8 linear kernel tracks the f32 reference within the error the
    // two quantization grids (input + per-channel weights) can introduce.
    #[test]
    fn quantized_linear_tracks_f32(
        t_len in 1usize..10,
        in_dim in 1usize..24,
        out_dim in 1usize..24,
        ws in prop::collection::vec(-4.0f32..4.0, 24 * 24 + 24),
        xs in prop::collection::vec(-2.0f32..2.0, 10 * 24),
    ) {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(7);
        let layer = Linear::new(&mut store, &mut init, in_dim, out_dim);
        // Overwrite the Xavier init with the generated weights.
        let (w_id, b_id) = layer.params();
        let mut it = ws.iter().copied();
        for r in 0..in_dim {
            for c in 0..out_dim {
                store.value_mut(w_id).set(r, c, it.next().unwrap());
            }
        }
        for c in 0..out_dim {
            store.value_mut(b_id).set(0, c, it.next().unwrap());
        }

        let input: Vec<f32> = xs[..t_len * in_dim].to_vec();
        let in_scale = calibrate_input_scale(input.chunks(in_dim)).unwrap();
        let q = QuantizedLinear::quantize(&store, &layer, in_scale).unwrap();

        let x = Matrix::from_fn(t_len, in_dim, |r, c| input[r * in_dim + c]);
        let reference = layer.infer(&store, &x);

        let mut arena = ScratchArena::new();
        let mut out = Vec::new();
        q.infer_into(t_len, &input, &mut arena.xq, &mut out);

        // Error budget: input grid (≤ in_scale/2 per element against
        // weights ≤ 4) + weight grid (≤ scale_j/2 per term against inputs
        // ≤ 2), summed over in_dim terms.
        for r in 0..t_len {
            for c in 0..out_dim {
                let budget =
                    in_dim as f32 * (in_scale * 4.0 + q.weights().scales()[c] * 2.0);
                let (a, b) = (out[r * out_dim + c], reference.get(r, c));
                prop_assert!(
                    (a - b).abs() <= budget + 1e-4,
                    "({},{}): |{} - {}| > {}", r, c, a, b, budget
                );
            }
        }
    }

    // End-to-end stacked-BiLSTM agreement on random inputs: the quantized
    // stack's output stays close to the f32 stack (tanh-bounded activations
    // keep the error from compounding across layers).
    #[test]
    fn quantized_stack_tracks_f32(
        t_len in 1usize..12,
        seed in 0u64..1_000_000,
        xs in prop::collection::vec(-1.5f32..1.5, 12 * 6),
    ) {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(seed);
        let stack = StackedBiLstm::new(&mut store, &mut init, 6, 8, 2);

        let input: Vec<f32> = xs[..t_len * 6].to_vec();
        let in_scale = calibrate_input_scale(input.chunks(6)).unwrap();
        let q = QuantizedStackedBiLstm::quantize(&store, &stack, in_scale).unwrap();

        let x = Matrix::from_fn(t_len, 6, |r, c| input[r * 6 + c]);
        let reference = stack.infer(&store, &x);

        let mut arena = ScratchArena::new();
        dlacep_nn::quant::ensure(&mut arena.io_a, t_len * 6);
        arena.io_a[..t_len * 6].copy_from_slice(&input);
        q.infer_in_place(t_len, &mut arena);

        let out_dim = q.out_dim();
        prop_assert_eq!(out_dim, 16);
        for r in 0..t_len {
            for c in 0..out_dim {
                let (a, b) = (arena.io_a[r * out_dim + c], reference.get(r, c));
                prop_assert!(
                    (a - b).abs() < 0.12,
                    "({},{}): quant {} vs f32 {}", r, c, a, b
                );
            }
        }
    }
}
