//! Gradient regression tests for the parallel kernels.
//!
//! The row-blocked matmul fast paths must be bitwise-identical to the serial
//! kernels, and the gradients flowing *through* them (graph backward, CRF
//! forward–backward) must agree with central finite differences — a wrong
//! chunk boundary or a dropped row in the parallel kernel shows up here as a
//! gradient mismatch long before it corrupts a training run.

use dlacep_nn::crf::{BiCrf, Crf};
use dlacep_nn::matrix::PAR_MIN_FLOPS;
use dlacep_nn::{Graph, Initializer, Matrix, ParamStore};

const N: usize = 48; // 48³ = 110_592 flops, comfortably above PAR_MIN_FLOPS

/// Every test goes through here so whichever runs first installs the pool;
/// later calls are no-ops against the already-initialized ambient slot.
fn ensure_pool() {
    dlacep_par::install_ambient(4);
    assert!(
        dlacep_par::ambient().is_some(),
        "tests must run with an ambient pool (DLACEP_THREADS=1 in the \
         environment would defeat the point of this suite)"
    );
}

/// Deterministic non-zero test values in roughly [-0.6, 0.6].
fn mat(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(j as u64)
            .wrapping_add(salt)
            .wrapping_mul(1442695040888963407);
        ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5 + 0.1
    })
}

/// Naive reference with the exact float-op order of `matmul_row_into`
/// (accumulate over k in increasing order), so equality can be bitwise.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.get(i, k);
            for j in 0..b.cols() {
                out.set(i, j, out.get(i, j) + av * b.get(k, j));
            }
        }
    }
    out
}

fn naive_matmul_transpose_rhs(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0_f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a.get(i, j).to_bits(),
                b.get(i, j).to_bits(),
                "{ctx}: entry ({i}, {j}): {} vs {}",
                a.get(i, j),
                b.get(i, j)
            );
        }
    }
}

#[test]
fn parallel_matmul_is_bitwise_equal_to_serial_kernel() {
    ensure_pool();
    const {
        assert!(
            N * N * N >= PAR_MIN_FLOPS,
            "test sizes must cross the threshold"
        )
    };
    let a = mat(N, N, 1);
    let b = mat(N, N, 2);
    assert_bitwise_equal(&a.matmul(&b), &naive_matmul(&a, &b), "matmul");
    assert_bitwise_equal(
        &a.matmul_transpose_rhs(&b),
        &naive_matmul_transpose_rhs(&a, &b),
        "matmul_transpose_rhs",
    );
    // Ragged shape: rows not divisible by any plausible chunk size.
    let a = mat(37, 53, 3);
    let b = mat(53, 41, 4);
    assert_bitwise_equal(&a.matmul(&b), &naive_matmul(&a, &b), "ragged matmul");
}

#[test]
fn parallel_matmul_backward_matches_finite_differences() {
    ensure_pool();
    let a = mat(N, N, 5);
    let b = mat(N, N, 6);

    // Seed the product with all-ones: d(Σ_j C[i,j]) / dA[i,k] lands in
    // grad(a), flowing backward through the parallel kernels.
    let mut graph = Graph::new();
    let va = graph.input(a.clone());
    let vb = graph.input(b.clone());
    let vc = graph.matmul(va, vb);
    let seed = Matrix::from_fn(N, N, |_, _| 1.0);
    let mut store = ParamStore::new();
    graph.backward_seeded(&[(vc, seed)], &mut store);
    let grad_a = graph.grad(va).expect("lhs gradient").clone();
    let grad_b = graph.grad(vb).expect("rhs gradient").clone();

    // Central differences on the row/column sums the ones-seed measures.
    // f64 accumulation keeps the quotient's noise well under the tolerance.
    let row_sum = |m: &Matrix, i: usize| -> f64 { (0..m.cols()).map(|j| m.get(i, j) as f64).sum() };
    let col_sum = |m: &Matrix, j: usize| -> f64 { (0..m.rows()).map(|i| m.get(i, j) as f64).sum() };
    let eps = 5e-2_f32;
    for s in 0..10 {
        let (i, k) = ((s * 7) % N, (s * 13 + 3) % N);

        let mut hi = a.clone();
        hi.set(i, k, a.get(i, k) + eps);
        let mut lo = a.clone();
        lo.set(i, k, a.get(i, k) - eps);
        let fd = (row_sum(&hi.matmul(&b), i) - row_sum(&lo.matmul(&b), i)) / (2.0 * eps as f64);
        let an = grad_a.get(i, k) as f64;
        assert!(
            (fd - an).abs() <= 1e-2 * an.abs().max(1.0),
            "dA[{i}][{k}]: finite-diff {fd} vs backward {an}"
        );

        let mut hi = b.clone();
        hi.set(i, k, b.get(i, k) + eps);
        let mut lo = b.clone();
        lo.set(i, k, b.get(i, k) - eps);
        let fd = (col_sum(&a.matmul(&hi), k) - col_sum(&a.matmul(&lo), k)) / (2.0 * eps as f64);
        let an = grad_b.get(i, k) as f64;
        assert!(
            (fd - an).abs() <= 1e-2 * an.abs().max(1.0),
            "dB[{i}][{k}]: finite-diff {fd} vs backward {an}"
        );
    }
}

fn crf_emissions(t: usize, l: usize) -> Matrix {
    mat(t, l, 9)
}

fn crf_gold(t: usize, l: usize) -> Vec<usize> {
    (0..t).map(|i| (i * 5 + 1) % l).collect()
}

#[test]
fn crf_forward_backward_matches_finite_differences() {
    ensure_pool();
    let (t, l) = (7, 3);
    let mut store = ParamStore::new();
    let mut init = Initializer::seeded(11);
    let crf = Crf::new(&mut store, &mut init, l);
    let emissions = crf_emissions(t, l);
    let gold = crf_gold(t, l);

    store.zero_grads();
    let (nll, d_emissions) = crf.nll_backward(&mut store, &emissions, &gold, 1.0);
    assert!(nll.is_finite() && nll > 0.0);

    let eps = 1e-2_f32;
    // Emission gradients.
    for s in 0..t * l {
        let (i, j) = (s / l, s % l);
        let mut hi = emissions.clone();
        hi.set(i, j, emissions.get(i, j) + eps);
        let mut lo = emissions.clone();
        lo.set(i, j, emissions.get(i, j) - eps);
        let fd = (crf.nll(&store, &hi, &gold) as f64 - crf.nll(&store, &lo, &gold) as f64)
            / (2.0 * eps as f64);
        let an = d_emissions.get(i, j) as f64;
        assert!(
            (fd - an).abs() <= 5e-3 + 2e-2 * an.abs(),
            "d emissions[{i}][{j}]: finite-diff {fd} vs backward {an}"
        );
    }

    // Transition / start / end gradients, via the store's parameter list
    // (registration order: trans L×L, start 1×L, end 1×L).
    let params: Vec<_> = store.iter().map(|(id, v, _)| (id, v.shape())).collect();
    assert_eq!(params.len(), 3);
    for (id, (rows, cols)) in params {
        let analytic = store.grad(id).clone();
        for i in 0..rows {
            for j in 0..cols {
                let orig = store.value(id).get(i, j);
                store.value_mut(id).set(i, j, orig + eps);
                let up = crf.nll(&store, &emissions, &gold) as f64;
                store.value_mut(id).set(i, j, orig - eps);
                let down = crf.nll(&store, &emissions, &gold) as f64;
                store.value_mut(id).set(i, j, orig);
                let fd = (up - down) / (2.0 * eps as f64);
                let an = analytic.get(i, j) as f64;
                assert!(
                    (fd - an).abs() <= 5e-3 + 2e-2 * an.abs(),
                    "param {id:?} [{i}][{j}]: finite-diff {fd} vs backward {an}"
                );
            }
        }
    }
}

#[test]
fn bicrf_forward_backward_matches_finite_differences_on_emissions() {
    ensure_pool();
    let (t, l) = (6, 2);
    let mut store = ParamStore::new();
    let mut init = Initializer::seeded(13);
    let crf = BiCrf::new(&mut store, &mut init, l);
    let emissions = crf_emissions(t, l);
    let gold = crf_gold(t, l);

    store.zero_grads();
    let (nll, d_emissions) = crf.nll_backward(&mut store, &emissions, &gold, 1.0);
    assert!(nll.is_finite());

    let eps = 1e-2_f32;
    for s in 0..t * l {
        let (i, j) = (s / l, s % l);
        let mut hi = emissions.clone();
        hi.set(i, j, emissions.get(i, j) + eps);
        let mut lo = emissions.clone();
        lo.set(i, j, emissions.get(i, j) - eps);
        let fd = (crf.nll(&store, &hi, &gold) as f64 - crf.nll(&store, &lo, &gold) as f64)
            / (2.0 * eps as f64);
        let an = d_emissions.get(i, j) as f64;
        assert!(
            (fd - an).abs() <= 5e-3 + 2e-2 * an.abs(),
            "d emissions[{i}][{j}]: finite-diff {fd} vs backward {an}"
        );
    }
}
