//! WAL durability properties, driven by proptest: whatever mix of payload
//! sizes, sync cadence, and segment rotation a run uses, a reopened log
//! replays exactly what was appended; and however many bytes a crash cuts
//! off the tail, recovery truncates to a clean record boundary and preserves
//! the surviving prefix untouched.

use dlacep_dur::{MemStore, Store, Wal, WalConfig, WalError};
use proptest::prelude::*;

/// Append `payloads` under `cfg` and make everything durable.
fn write_all(store: &mut MemStore, cfg: WalConfig, payloads: &[Vec<u8>]) {
    let (mut wal, report) = Wal::open(store, cfg).unwrap();
    assert_eq!(report.next_seq, 0, "fresh store starts at seq 0");
    for p in payloads {
        wal.append(store, p).unwrap();
    }
    wal.sync(store).unwrap();
}

/// Name of the last (highest start-seq) segment in `store`.
fn last_segment(store: &MemStore) -> String {
    store
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        .max()
        .expect("log has at least one segment")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Round-trip: any payload mix × any sync cadence × any (small) segment
    // size appends, rotates, reopens, and replays to exactly the input —
    // with the right sequence numbers and no spurious tail repair.
    #[test]
    fn append_rotate_reopen_round_trip(
        payloads in prop::collection::vec(prop::collection::vec(0u8..255, 0..40), 1..40),
        sync_every in 0u64..8,
        segment_max in 32u64..256,
    ) {
        let cfg = WalConfig { segment_max_bytes: segment_max, sync_every };
        let mut store = MemStore::new();
        write_all(&mut store, cfg, &payloads);

        let (wal, report) = Wal::open(&mut store, cfg).unwrap();
        prop_assert_eq!(report.next_seq, payloads.len() as u64);
        prop_assert_eq!(report.truncated_bytes, 0, "clean shutdown needs no repair");
        prop_assert_eq!(report.removed_segments, 0);
        prop_assert_eq!(wal.next_seq(), payloads.len() as u64);

        let replayed = Wal::replay(&store, 0).unwrap();
        prop_assert_eq!(replayed.len(), payloads.len());
        for (i, ((seq, payload), expect)) in replayed.iter().zip(&payloads).enumerate() {
            prop_assert_eq!(*seq, i as u64);
            prop_assert_eq!(payload, expect);
        }

        // Suffix replay from any midpoint agrees with the full replay.
        let mid = payloads.len() as u64 / 2;
        let suffix = Wal::replay(&store, mid).unwrap();
        prop_assert_eq!(suffix.len(), payloads.len() - mid as usize);
        prop_assert!(suffix.iter().all(|(s, p)| p == &payloads[*s as usize]));
    }

    // Torn tail: cutting any number of bytes off the end of the last
    // segment loses at most the records the tear touched — reopen truncates
    // to a record boundary, keeps every record before it bit-identical, and
    // appending afterwards continues the sequence without a gap.
    #[test]
    fn corrupt_tail_truncation_preserves_prefix(
        payloads in prop::collection::vec(prop::collection::vec(0u8..255, 0..24), 1..24),
        sync_every in 0u64..4,
        segment_max in 32u64..128,
        cut_frac in 0.0f64..1.0,
    ) {
        let cfg = WalConfig { segment_max_bytes: segment_max, sync_every };
        let mut store = MemStore::new();
        write_all(&mut store, cfg, &payloads);

        // Tear: drop 1..=len bytes from the last segment's end.
        let victim = last_segment(&store);
        let len = store.len(&victim).unwrap();
        let cut = 1 + ((len - 1) as f64 * cut_frac) as u64;
        store.truncate(&victim, len - cut).unwrap();

        let (mut wal, report) = Wal::open(&mut store, cfg).unwrap();
        let survived = report.next_seq as usize;
        prop_assert!(survived <= payloads.len());
        prop_assert!(
            report.truncated_bytes + report.removed_segments > 0 || survived == payloads.len(),
            "records lost without any repair reported"
        );

        let replayed = Wal::replay(&store, 0).unwrap();
        prop_assert_eq!(replayed.len(), survived);
        for (i, (seq, payload)) in replayed.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64);
            prop_assert_eq!(payload, &payloads[i], "surviving prefix must be untouched");
        }

        // The repaired log accepts new appends at the right sequence.
        let seq = wal.append(&mut store, b"resumed").unwrap();
        prop_assert_eq!(seq, survived as u64);
        wal.sync(&mut store).unwrap();
        let after = Wal::replay(&store, 0).unwrap();
        prop_assert_eq!(after.len(), survived + 1);
        prop_assert_eq!(&after[survived].1, &b"resumed".to_vec());
    }

    // Bit rot: flipping one bit in the *payload or checksum* of an interior
    // record is data damage, not a tear — open must refuse with `Corrupt`,
    // never silently truncate the valid records after the flip. (A flip in
    // a record's length field is deliberately excluded: an enlarged length
    // makes the scanner run out of bytes, which is indistinguishable from a
    // genuine torn tail — the documented coverage limit of CRC-framed
    // length-prefixed logs.)
    #[test]
    fn interior_bit_flip_is_corrupt_not_tear(
        payloads in prop::collection::vec(prop::collection::vec(0u8..255, 4..16), 2..12),
        record_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // One big segment so the flip is guaranteed interior to the log.
        let cfg = WalConfig { segment_max_bytes: u64::MAX, sync_every: 0 };
        let mut store = MemStore::new();
        write_all(&mut store, cfg, &payloads);

        let victim = last_segment(&store);
        let bytes = store.read(&victim).unwrap();

        // Pick a record before the last, then a byte in its CRC (0..4) or
        // payload (8..) — never the length field (4..8).
        let segment_header = bytes.len()
            - payloads.iter().map(|p| 8 + p.len()).sum::<usize>();
        let r = ((payloads.len() - 2) as f64 * record_frac) as usize;
        let offset = segment_header
            + payloads[..r].iter().map(|p| 8 + p.len()).sum::<usize>();
        let flippable: Vec<usize> = (0..4)
            .chain(8..8 + payloads[r].len())
            .map(|i| offset + i)
            .collect();
        let pos = flippable[((flippable.len() - 1) as f64 * byte_frac) as usize];
        let mut damaged = bytes.clone();
        damaged[pos] ^= 1 << bit;
        store.truncate(&victim, 0).unwrap();
        store.append(&victim, &damaged).unwrap();

        match Wal::open(&mut store, cfg) {
            Err(WalError::Corrupt { .. }) => {}
            Ok((_, report)) => prop_assert!(
                false,
                "interior flip at byte {pos} bit {bit} accepted, report {report:?}"
            ),
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }
}
