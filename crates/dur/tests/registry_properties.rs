//! Model-registry durability properties, driven by proptest: any mix of
//! published versions round-trips through the newest-valid-first scan; a
//! torn tail on the newest model falls back to the previous generation with
//! the skip counted; and a single flipped bit anywhere in a published frame
//! is detected — the damaged file is skipped, never served as weights.

use dlacep_dur::{list_models, load_latest_model, prune_models, publish_model, MemStore, Store};
use proptest::prelude::*;

/// Publish `(version, payload)` pairs in order; later publishes of the same
/// version overwrite (publication is idempotent).
fn publish_all(store: &mut MemStore, models: &[(u64, Vec<u8>)]) {
    for (version, payload) in models {
        publish_model(store, *version, payload).unwrap();
    }
}

/// The payload the scan must return: the last publish of the highest version.
fn expected_latest(models: &[(u64, Vec<u8>)]) -> (u64, Vec<u8>) {
    let top = models.iter().map(|(v, _)| *v).max().unwrap();
    let payload = models
        .iter()
        .rev()
        .find(|(v, _)| *v == top)
        .map(|(_, p)| p.clone())
        .unwrap();
    (top, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Round-trip: any publish sequence (duplicate versions included) scans
    // back to the newest version's last payload, with every distinct
    // version listed and nothing skipped. (The vendored proptest has no
    // tuple strategies, so each payload's first byte doubles as its
    // version.)
    #[test]
    fn publish_scan_round_trip(
        payloads in prop::collection::vec(prop::collection::vec(0u8..255, 1..48), 1..16),
        keep in 1usize..6,
    ) {
        let models: Vec<(u64, Vec<u8>)> = payloads
            .into_iter()
            .map(|p| (u64::from(p[0] % 20), p))
            .collect();
        let mut store = MemStore::new();
        publish_all(&mut store, &models);

        let scan = load_latest_model(&store).unwrap();
        prop_assert_eq!(scan.skipped, 0, "clean registry skips nothing");
        let (top, payload) = expected_latest(&models);
        prop_assert_eq!(scan.latest, Some((top, payload.clone())));

        let mut distinct: Vec<u64> = models.iter().map(|(v, _)| *v).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(list_models(&store).unwrap(), distinct.clone());

        // Pruning keeps the newest `keep` versions and never changes which
        // model the scan serves.
        prune_models(&mut store, keep).unwrap();
        let kept = list_models(&store).unwrap();
        prop_assert_eq!(kept.len(), distinct.len().min(keep));
        prop_assert_eq!(load_latest_model(&store).unwrap().latest, Some((top, payload)));
    }

    // Torn tail: cutting any number of bytes off the newest published model
    // makes the scan fall back to the next older generation, bit-identical,
    // with exactly one skip counted. The registry never serves a torn frame.
    #[test]
    fn torn_newest_falls_back_to_previous_generation(
        older in prop::collection::vec(0u8..255, 1..48),
        newer in prop::collection::vec(0u8..255, 1..48),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut store = MemStore::new();
        publish_model(&mut store, 7, &older).unwrap();
        publish_model(&mut store, 11, &newer).unwrap();

        let name = "model-000000000000000b.mdl";
        let len = store.len(name).unwrap();
        let cut = 1 + ((len - 1) as f64 * cut_frac) as u64;
        store.truncate(name, len - cut).unwrap();

        let scan = load_latest_model(&store).unwrap();
        prop_assert_eq!(scan.skipped, 1, "the torn model must be counted");
        prop_assert_eq!(scan.latest, Some((7, older)));
    }

    // Bit rot: one flipped bit anywhere in the newest frame — magic,
    // container version, checksum, length, or payload — is caught by frame
    // validation and the file is skipped, falling back to the older model.
    #[test]
    fn interior_bit_flip_is_skipped_not_served(
        older in prop::collection::vec(0u8..255, 1..32),
        newer in prop::collection::vec(0u8..255, 1..32),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut store = MemStore::new();
        publish_model(&mut store, 3, &older).unwrap();
        publish_model(&mut store, 5, &newer).unwrap();

        let name = "model-0000000000000005.mdl";
        let bytes = store.read(name).unwrap();
        let pos = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        let mut damaged = bytes;
        damaged[pos] ^= 1 << bit;
        store.truncate(name, 0).unwrap();
        store.append(name, &damaged).unwrap();

        let scan = load_latest_model(&store).unwrap();
        prop_assert_eq!(
            scan.skipped, 1,
            "flip at byte {} bit {} must invalidate the frame", pos, bit
        );
        prop_assert_eq!(scan.latest, Some((3, older)));
    }
}
