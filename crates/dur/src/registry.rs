//! Versioned model registry: atomically-published model files.
//!
//! Each accepted model (the retrain supervisor's validated candidate) is one
//! frame (`magic "DMRG"`, version, CRC32) whose payload is the model's own
//! wire format — the registry treats it as opaque bytes. Publication uses
//! the same protocol as checkpoints: write `model-{version:016x}.tmp`,
//! fsync, rename to `model-{version:016x}.mdl`, so a crash at any byte
//! leaves either the old registry or the old registry plus one complete new
//! file. [`load_latest_model`] walks published versions newest-first and
//! returns the first that decodes, so a torn or bit-rotted model is skipped
//! (and counted), never fatal — recovery falls back to the previous
//! generation instead of refusing to start.

use std::io;

use crate::codec::{self, CodecError};
use crate::store::Store;

/// Magic tag of model registry frames.
pub const MODEL_MAGIC: [u8; 4] = *b"DMRG";
/// Current model container version.
pub const MODEL_VERSION: u16 = 1;

fn model_name(version: u64) -> String {
    format!("model-{version:016x}.mdl")
}

fn tmp_name(version: u64) -> String {
    format!("model-{version:016x}.tmp")
}

fn parse_model_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("model-")?.strip_suffix(".mdl")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Write and atomically publish model `version`. Returns the number of
/// bytes written (frame included). Re-publishing an existing version
/// overwrites it (publication is idempotent so crash-recovery can safely
/// re-drain a pending model it already published).
pub fn publish_model<S: Store>(store: &mut S, version: u64, payload: &[u8]) -> io::Result<u64> {
    let tmp = tmp_name(version);
    if store.exists(&tmp)? {
        store.remove(&tmp)?; // stale tmp from an earlier crashed attempt
    }
    let frame = codec::encode_frame(MODEL_MAGIC, MODEL_VERSION, payload);
    store.append(&tmp, &frame)?;
    store.sync(&tmp)?;
    store.rename(&tmp, &model_name(version))?;
    Ok(frame.len() as u64)
}

/// Result of scanning the store for the newest usable model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelScan {
    /// `(version, payload)` of the newest model that decoded cleanly.
    pub latest: Option<(u64, Vec<u8>)>,
    /// Newer published models that were skipped as unreadable.
    pub skipped: u64,
}

/// Find the newest model whose frame validates. Unreadable newer files are
/// skipped and counted; only store I/O errors are fatal.
pub fn load_latest_model<S: Store>(store: &S) -> io::Result<ModelScan> {
    let mut versions: Vec<(u64, String)> = store
        .list()?
        .into_iter()
        .filter_map(|name| parse_model_name(&name).map(|v| (v, name)))
        .collect();
    versions.sort();
    let mut scan = ModelScan::default();
    for (version, name) in versions.into_iter().rev() {
        let bytes = store.read(&name)?;
        match codec::decode_frame(MODEL_MAGIC, MODEL_VERSION, &bytes) {
            Ok((_, payload)) => {
                scan.latest = Some((version, payload.to_vec()));
                return Ok(scan);
            }
            Err(CodecError::Truncated { .. })
            | Err(CodecError::ChecksumMismatch { .. })
            | Err(CodecError::BadMagic { .. })
            | Err(CodecError::UnsupportedVersion { .. })
            | Err(CodecError::Malformed(_))
            | Err(CodecError::TrailingBytes { .. }) => scan.skipped += 1,
        }
    }
    Ok(scan)
}

/// Published model versions, ascending. Torn files are included (they are
/// published names); use [`load_latest_model`] to find a *usable* one.
pub fn list_models<S: Store>(store: &S) -> io::Result<Vec<u64>> {
    let mut versions: Vec<u64> = store
        .list()?
        .into_iter()
        .filter_map(|name| parse_model_name(&name))
        .collect();
    versions.sort_unstable();
    Ok(versions)
}

/// Delete all but the `keep` newest published models (and any stale `.tmp`
/// leftovers). Returns the oldest kept version, if any.
pub fn prune_models<S: Store>(store: &mut S, keep: usize) -> io::Result<Option<u64>> {
    let names = store.list()?;
    let mut published: Vec<(u64, String)> = names
        .iter()
        .filter_map(|name| parse_model_name(name).map(|v| (v, name.clone())))
        .collect();
    published.sort();
    let cut = published.len().saturating_sub(keep.max(1));
    for (_, name) in &published[..cut] {
        store.remove(name)?;
    }
    for name in &names {
        if name
            .strip_prefix("model-")
            .is_some_and(|rest| rest.ends_with(".tmp"))
        {
            store.remove(name)?;
        }
    }
    Ok(published.get(cut).map(|(v, _)| *v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::torn::FailingStore;

    #[test]
    fn publish_and_load_newest_valid() {
        let mut store = MemStore::new();
        assert_eq!(load_latest_model(&store).unwrap(), ModelScan::default());
        publish_model(&mut store, 1, b"weights@1").unwrap();
        publish_model(&mut store, 2, b"weights@2").unwrap();
        let scan = load_latest_model(&store).unwrap();
        assert_eq!(scan.latest, Some((2, b"weights@2".to_vec())));
        assert_eq!(scan.skipped, 0);
        assert_eq!(list_models(&store).unwrap(), vec![1, 2]);
    }

    #[test]
    fn republish_is_idempotent() {
        let mut store = MemStore::new();
        publish_model(&mut store, 3, b"first").unwrap();
        publish_model(&mut store, 3, b"again").unwrap();
        let scan = load_latest_model(&store).unwrap();
        assert_eq!(scan.latest, Some((3, b"again".to_vec())));
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let mut store = MemStore::new();
        publish_model(&mut store, 4, b"good").unwrap();
        publish_model(&mut store, 9, b"soon-corrupt").unwrap();
        let name = model_name(9);
        let len = store.len(&name).unwrap();
        store.truncate(&name, len - 2).unwrap();
        let scan = load_latest_model(&store).unwrap();
        assert_eq!(scan.latest, Some((4, b"good".to_vec())));
        assert_eq!(scan.skipped, 1);
    }

    #[test]
    fn prune_keeps_newest_and_clears_tmp() {
        let mut store = MemStore::new();
        for v in [1u64, 2, 3, 4] {
            publish_model(&mut store, v, b"w").unwrap();
        }
        store.append(&tmp_name(5), b"half").unwrap();
        let oldest_kept = prune_models(&mut store, 2).unwrap();
        assert_eq!(oldest_kept, Some(3));
        assert_eq!(store.list().unwrap(), vec![model_name(3), model_name(4)]);
    }

    #[test]
    fn crash_during_publish_never_corrupts_the_registry() {
        // Measure the tick budget of one publication, then crash at every
        // tick: the older model must always survive intact.
        let mut probe = FailingStore::new(MemStore::new(), crate::Schedule::never());
        publish_model(&mut probe, 1, b"old-weights").unwrap();
        let after_first = probe.ticks();
        publish_model(&mut probe, 2, b"new-weights").unwrap();
        let total = probe.ticks();

        for crash in after_first..total {
            let mut store = FailingStore::new(MemStore::new(), crate::Schedule::never());
            publish_model(&mut store, 1, b"old-weights").unwrap();
            let mut store = FailingStore::crash_at(store.into_durable(), crash - after_first);
            let _ = publish_model(&mut store, 2, b"new-weights");
            let durable = store.into_durable();
            let scan = load_latest_model(&durable).unwrap();
            let (version, payload) = scan.latest.expect("a model always survives");
            match version {
                1 => assert_eq!(payload, b"old-weights"),
                2 => assert_eq!(payload, b"new-weights"),
                other => panic!("unexpected model version {other}"),
            }
        }
    }
}
