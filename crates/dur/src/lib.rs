//! `dlacep-dur` — zero-dependency durability substrate for the DLACEP
//! reproduction. Built on `std` only (the workspace is offline), it is the
//! bottom of the crate stack: `dlacep-events`, `dlacep-cep`, and
//! `dlacep-core` implement its codec traits for their own state types.
//!
//! - **codec** ([`Encoder`]/[`Decoder`], [`Enc`]/[`Dec`]): a versioned
//!   little-endian binary codec whose frames carry a magic tag, a format
//!   version, a payload length, and an IEEE CRC32 checksum. A frame cut
//!   short by a torn write decodes to [`CodecError::Truncated`]; a
//!   bit-flipped frame decodes to [`CodecError::ChecksumMismatch`] — both
//!   are recoverable signals, never panics.
//! - **store** ([`Store`]): a minimal flat-namespace storage abstraction
//!   (`append`/`sync`/`rename`/`truncate`/…) with a real-filesystem
//!   implementation ([`DirStore`]), an in-memory one ([`MemStore`]), and an
//!   atomic-write helper ([`atomic_write_file`]).
//! - **wal** ([`Wal`]): an append-only segmented write-ahead log with fsync
//!   batching, size-based rotation, and corrupt-tail truncation on open.
//! - **checkpoint**: atomically-published checkpoint files
//!   (tmp + fsync + rename) with newest-valid-wins loading.
//! - **registry**: atomically-published versioned model files — the retrain
//!   supervisor's durable model lineage — with the same torn-write-safe
//!   protocol and newest-valid-wins loading.
//! - **manifest** ([`FleetManifest`]): the replicated identity card of one
//!   shard of a sharded fleet (shard count, hash seed/revision, partitioner
//!   tag). Recovery compares it against the live configuration and refuses
//!   to replay a shard's history under different routing.
//! - **torn** ([`FailingStore`], [`Schedule`]): deterministic crash
//!   injection. Appends land in a simulated page cache; `sync` makes bytes
//!   durable one tick at a time, and the schedule kills the store at an
//!   exact tick, leaving a torn prefix — exactly what a power cut during
//!   `fsync` leaves on disk.
//!
//! The crash-recovery contract built on top (see `dlacep-core::durable`):
//! replaying the WAL suffix into a restored checkpoint reproduces the
//! uninterrupted run's outputs bit for bit, for every crash point.

pub mod checkpoint;
pub mod codec;
pub mod manifest;
pub mod registry;
pub mod store;
pub mod torn;
pub mod wal;

pub use checkpoint::{load_latest_checkpoint, prune_checkpoints, write_checkpoint, CheckpointScan};
pub use codec::{
    crc32, decode_frame, encode_frame, scan_frame, CodecError, Dec, Decoder, Enc, Encoder,
};
pub use manifest::{load_manifest, shard_dir_name, write_manifest, FleetManifest, ManifestError};
pub use registry::{list_models, load_latest_model, prune_models, publish_model, ModelScan};
pub use store::{atomic_write_file, DirStore, MemStore, Store};
pub use torn::{FailingStore, Schedule, Trigger};
pub use wal::{Wal, WalConfig, WalError, WalOpenReport};
