//! Atomically-published checkpoint files.
//!
//! A checkpoint is one frame (`magic "DCKP"`, version, CRC32) whose payload
//! is the runtime state serialized by the caller. Publication follows the
//! classic protocol: write `ckpt-{seq:016x}.tmp`, fsync it, rename to
//! `ckpt-{seq:016x}.ck`, so a crash at any point leaves either the old
//! checkpoint set or the old set plus a complete new file — never a
//! half-written published checkpoint. [`load_latest_checkpoint`] walks
//! published files newest-first and returns the first that decodes, so a
//! torn or bit-rotted file is skipped (and counted), not fatal.

use std::io;

use crate::codec::{self, CodecError};
use crate::store::Store;

/// Magic tag of checkpoint frames.
pub const CKPT_MAGIC: [u8; 4] = *b"DCKP";
/// Current checkpoint container version.
pub const CKPT_VERSION: u16 = 1;

fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.ck")
}

fn tmp_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.tmp")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ck")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Write and atomically publish a checkpoint for WAL position `seq`.
/// Returns the number of bytes written (frame included).
pub fn write_checkpoint<S: Store>(store: &mut S, seq: u64, payload: &[u8]) -> io::Result<u64> {
    let tmp = tmp_name(seq);
    if store.exists(&tmp)? {
        store.remove(&tmp)?; // stale tmp from an earlier crashed attempt
    }
    let frame = codec::encode_frame(CKPT_MAGIC, CKPT_VERSION, payload);
    store.append(&tmp, &frame)?;
    store.sync(&tmp)?;
    store.rename(&tmp, &checkpoint_name(seq))?;
    Ok(frame.len() as u64)
}

/// Result of scanning the store for the newest usable checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointScan {
    /// `(seq, payload)` of the newest checkpoint that decoded cleanly.
    pub latest: Option<(u64, Vec<u8>)>,
    /// Newer published checkpoints that were skipped as unreadable.
    pub skipped: u64,
}

/// Find the newest checkpoint whose frame validates. Unreadable newer
/// files are skipped and counted; only store I/O errors are fatal.
pub fn load_latest_checkpoint<S: Store>(store: &S) -> io::Result<CheckpointScan> {
    let mut seqs: Vec<(u64, String)> = store
        .list()?
        .into_iter()
        .filter_map(|name| parse_checkpoint_name(&name).map(|seq| (seq, name)))
        .collect();
    seqs.sort();
    let mut scan = CheckpointScan::default();
    for (seq, name) in seqs.into_iter().rev() {
        let bytes = store.read(&name)?;
        match codec::decode_frame(CKPT_MAGIC, CKPT_VERSION, &bytes) {
            Ok((_, payload)) => {
                scan.latest = Some((seq, payload.to_vec()));
                return Ok(scan);
            }
            Err(CodecError::Truncated { .. })
            | Err(CodecError::ChecksumMismatch { .. })
            | Err(CodecError::BadMagic { .. })
            | Err(CodecError::UnsupportedVersion { .. })
            | Err(CodecError::Malformed(_))
            | Err(CodecError::TrailingBytes { .. }) => scan.skipped += 1,
        }
    }
    Ok(scan)
}

/// Delete all but the `keep` newest published checkpoints (and any stale
/// `.tmp` leftovers). Returns the seq of the oldest kept checkpoint, if
/// any — the WAL can be pruned below it.
pub fn prune_checkpoints<S: Store>(store: &mut S, keep: usize) -> io::Result<Option<u64>> {
    let names = store.list()?;
    let mut published: Vec<(u64, String)> = names
        .iter()
        .filter_map(|name| parse_checkpoint_name(name).map(|seq| (seq, name.clone())))
        .collect();
    published.sort();
    let cut = published.len().saturating_sub(keep.max(1));
    for (_, name) in &published[..cut] {
        store.remove(name)?;
    }
    for name in &names {
        if name
            .strip_prefix("ckpt-")
            .is_some_and(|rest| rest.ends_with(".tmp"))
        {
            store.remove(name)?;
        }
    }
    Ok(published.get(cut).map(|(seq, _)| *seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::torn::FailingStore;

    #[test]
    fn publish_and_load_newest_valid() {
        let mut store = MemStore::new();
        assert_eq!(
            load_latest_checkpoint(&store).unwrap(),
            CheckpointScan::default()
        );
        write_checkpoint(&mut store, 5, b"state@5").unwrap();
        write_checkpoint(&mut store, 9, b"state@9").unwrap();
        let scan = load_latest_checkpoint(&store).unwrap();
        assert_eq!(scan.latest, Some((9, b"state@9".to_vec())));
        assert_eq!(scan.skipped, 0);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let mut store = MemStore::new();
        write_checkpoint(&mut store, 3, b"good").unwrap();
        write_checkpoint(&mut store, 7, b"soon-corrupt").unwrap();
        let name = checkpoint_name(7);
        let len = store.len(&name).unwrap();
        store.truncate(&name, len - 2).unwrap();
        let scan = load_latest_checkpoint(&store).unwrap();
        assert_eq!(scan.latest, Some((3, b"good".to_vec())));
        assert_eq!(scan.skipped, 1);
    }

    #[test]
    fn prune_keeps_newest_and_clears_tmp() {
        let mut store = MemStore::new();
        for seq in [2u64, 4, 6, 8] {
            write_checkpoint(&mut store, seq, b"s").unwrap();
        }
        store.append(&tmp_name(10), b"half").unwrap();
        let oldest_kept = prune_checkpoints(&mut store, 2).unwrap();
        assert_eq!(oldest_kept, Some(6));
        assert_eq!(
            store.list().unwrap(),
            vec![checkpoint_name(6), checkpoint_name(8)]
        );
    }

    #[test]
    fn crash_during_publish_never_corrupts_the_set() {
        // Measure the tick budget of one checkpoint write, then crash at
        // every tick: the older checkpoint must always survive intact.
        let mut probe = FailingStore::new(MemStore::new(), crate::Schedule::never());
        write_checkpoint(&mut probe, 1, b"old-state").unwrap();
        let after_first = probe.ticks();
        write_checkpoint(&mut probe, 2, b"new-state").unwrap();
        let total = probe.ticks();

        for crash in after_first..total {
            let mut store = FailingStore::new(MemStore::new(), crate::Schedule::never());
            write_checkpoint(&mut store, 1, b"old-state").unwrap();
            let mut store = FailingStore::crash_at(store.into_durable(), crash - after_first);
            let _ = write_checkpoint(&mut store, 2, b"new-state");
            let durable = store.into_durable();
            let scan = load_latest_checkpoint(&durable).unwrap();
            let (seq, payload) = scan.latest.expect("a checkpoint always survives");
            match seq {
                1 => assert_eq!(payload, b"old-state"),
                2 => assert_eq!(payload, b"new-state"),
                other => panic!("unexpected checkpoint seq {other}"),
            }
        }
    }
}
