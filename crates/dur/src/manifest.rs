//! Fleet manifest: the durable identity card of one shard of a sharded
//! deployment (`dlacep-serve`).
//!
//! A sharded fleet hash-partitions the event stream by key across N shard
//! directories (`shard-0000/`, `shard-0001/`, …) under one fleet root. The
//! partition function is part of the persisted state's meaning: a WAL record
//! in `shard-0003/` is only replayable into shard 3 of a fleet with the
//! *same* shard count, hash seed, hash revision, and key-extraction rule —
//! under any other configuration the same event would have been routed
//! elsewhere, and "recovery" would silently reshuffle history.
//!
//! So every shard store carries a replicated [`FleetManifest`] (one frame,
//! magic `DMFT`, same torn-write-safe codec as checkpoints) written at fleet
//! creation. Recovery loads it from every shard and **refuses** to proceed
//! on any mismatch — the fleet-level analogue of the runtime checkpoint's
//! `config_fingerprint` refusal.

use std::io;

use crate::codec::{self, CodecError, Dec, Decoder, Enc, Encoder};
use crate::store::Store;

/// Magic tag of manifest frames.
pub const MANIFEST_MAGIC: [u8; 4] = *b"DMFT";
/// Current manifest format version.
pub const MANIFEST_VERSION: u16 = 1;
/// Store name of the manifest file (replicated into every shard store).
pub const MANIFEST_NAME: &str = "fleet.manifest";

/// Directory name of shard `index` under the fleet root: `shard-0007`.
pub fn shard_dir_name(index: u32) -> String {
    format!("shard-{index:04}")
}

/// Identity of one shard of a sharded fleet. Every field participates in
/// the recovery-refusal check; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetManifest {
    /// Total shards in the fleet the stores were written by.
    pub shard_count: u32,
    /// Which shard this store is (0-based; also encoded in the directory
    /// name, and both must agree).
    pub shard_index: u32,
    /// Seed of the key-partitioning hash.
    pub hash_seed: u64,
    /// Revision of the hash *function*. Bumped whenever the mixing math
    /// changes, so old fleets refuse recovery under new routing.
    pub hash_revision: u32,
    /// Opaque tag identifying the key-extraction rule (assigned by the
    /// serving tier; this crate only compares it for equality).
    pub partitioner_tag: u32,
}

impl Enc for FleetManifest {
    fn enc(&self, e: &mut Encoder) {
        e.put_u32(self.shard_count);
        e.put_u32(self.shard_index);
        e.put_u64(self.hash_seed);
        e.put_u32(self.hash_revision);
        e.put_u32(self.partitioner_tag);
    }
}

impl Dec for FleetManifest {
    fn dec(d: &mut Decoder) -> Result<Self, CodecError> {
        Ok(FleetManifest {
            shard_count: d.take_u32()?,
            shard_index: d.take_u32()?,
            hash_seed: d.take_u64()?,
            hash_revision: d.take_u32()?,
            partitioner_tag: d.take_u32()?,
        })
    }
}

/// Manifest load failures.
#[derive(Debug)]
pub enum ManifestError {
    /// Store I/O failed.
    Io(io::Error),
    /// The manifest file exists but its frame does not validate or decode.
    /// Unlike checkpoints there is no older copy to fall back to — a
    /// damaged identity file must surface, not be skipped.
    Corrupt(CodecError),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest i/o: {e}"),
            ManifestError::Corrupt(e) => write!(f, "manifest corrupt: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<io::Error> for ManifestError {
    fn from(e: io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// Write and atomically publish the manifest (tmp + fsync + rename, the
/// checkpoint protocol). Returns the bytes written.
pub fn write_manifest<S: Store>(store: &mut S, manifest: &FleetManifest) -> io::Result<u64> {
    let mut payload = Encoder::with_capacity(24);
    payload.put(manifest);
    let frame = codec::encode_frame(MANIFEST_MAGIC, MANIFEST_VERSION, payload.bytes());
    let tmp = format!("{MANIFEST_NAME}.tmp");
    if store.exists(&tmp)? {
        store.remove(&tmp)?;
    }
    store.append(&tmp, &frame)?;
    store.sync(&tmp)?;
    store.rename(&tmp, MANIFEST_NAME)?;
    Ok(frame.len() as u64)
}

/// Load the manifest, if present. `Ok(None)` means the store was never part
/// of a fleet (a fresh shard directory).
pub fn load_manifest<S: Store>(store: &S) -> Result<Option<FleetManifest>, ManifestError> {
    if !store.exists(MANIFEST_NAME)? {
        return Ok(None);
    }
    let bytes = store.read(MANIFEST_NAME)?;
    let (_, payload) = codec::decode_frame(MANIFEST_MAGIC, MANIFEST_VERSION, &bytes)
        .map_err(ManifestError::Corrupt)?;
    let mut d = Decoder::new(payload);
    let manifest = d.get::<FleetManifest>().map_err(ManifestError::Corrupt)?;
    d.finish().map_err(ManifestError::Corrupt)?;
    Ok(Some(manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn manifest() -> FleetManifest {
        FleetManifest {
            shard_count: 8,
            shard_index: 3,
            hash_seed: 0xD1AC_E75E_ED00_0001,
            hash_revision: 1,
            partitioner_tag: 0x0100_0004,
        }
    }

    #[test]
    fn round_trip() {
        let mut store = MemStore::new();
        assert_eq!(load_manifest(&store).unwrap(), None);
        write_manifest(&mut store, &manifest()).unwrap();
        assert_eq!(load_manifest(&store).unwrap(), Some(manifest()));
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let mut store = MemStore::new();
        write_manifest(&mut store, &manifest()).unwrap();
        let other = FleetManifest {
            shard_index: 4,
            ..manifest()
        };
        write_manifest(&mut store, &other).unwrap();
        assert_eq!(load_manifest(&store).unwrap(), Some(other));
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_a_skip() {
        let mut store = MemStore::new();
        write_manifest(&mut store, &manifest()).unwrap();
        let mut bytes = store.read(MANIFEST_NAME).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        store.remove(MANIFEST_NAME).unwrap();
        store.append(MANIFEST_NAME, &bytes).unwrap();
        match load_manifest(&store) {
            Err(ManifestError::Corrupt(_)) => {}
            other => panic!("bit flip must be a corruption error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_manifest_is_an_error() {
        let mut store = MemStore::new();
        write_manifest(&mut store, &manifest()).unwrap();
        let bytes = store.read(MANIFEST_NAME).unwrap();
        store.remove(MANIFEST_NAME).unwrap();
        store
            .append(MANIFEST_NAME, &bytes[..bytes.len() - 3])
            .unwrap();
        assert!(matches!(
            load_manifest(&store),
            Err(ManifestError::Corrupt(CodecError::Truncated { .. }))
        ));
    }

    #[test]
    fn shard_dir_names_are_zero_padded() {
        assert_eq!(shard_dir_name(0), "shard-0000");
        assert_eq!(shard_dir_name(7), "shard-0007");
        assert_eq!(shard_dir_name(1234), "shard-1234");
    }
}
