//! Deterministic crash injection.
//!
//! [`Schedule`] is the shared trigger language for every injection harness
//! in the workspace: `ChaosFilter` (in `dlacep-core`) keys filter faults
//! off it by *call index*, and [`FailingStore`] here keys storage death
//! off it by *durability tick*.
//!
//! ## The crash model
//!
//! `FailingStore` wraps any inner [`Store`] and simulates the one gap that
//! matters for recovery proofs: the OS page cache. Appends land in a
//! volatile buffer (zero ticks — a `write(2)` that only reached the page
//! cache). `sync` migrates buffered bytes into the inner store **one byte
//! per tick**; metadata operations (`truncate`/`rename`/`remove`) cost one
//! tick each. When the schedule fires at tick *t*, every byte before *t*
//! is durable, everything after is gone, and the store returns errors
//! forever — the process is dead. What the inner store holds at that
//! moment is exactly the disk image a power cut during `fsync` leaves
//! behind, torn record and all.
//!
//! A sweep harness runs once without a crash to learn the total tick count
//! `T`, then replays the workload with a crash at each tick in `0..=T`,
//! recovering from [`FailingStore::into_durable`] each time.

use std::collections::BTreeMap;
use std::io;

use crate::store::Store;

/// One firing rule over a 0-based index space (call index or tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly at index `n`.
    At(u64),
    /// Fire at every index `>= n`.
    From(u64),
    /// Fire at every multiple of `n` (including index 0). `n` must be > 0.
    Every(u64),
}

impl Trigger {
    /// Whether this rule fires at `idx`.
    pub fn fires(&self, idx: u64) -> bool {
        match *self {
            Trigger::At(n) => idx == n,
            Trigger::From(n) => idx >= n,
            Trigger::Every(n) => idx.is_multiple_of(n),
        }
    }

    /// The first index in `start..end` at which this rule fires.
    fn first_in(&self, start: u64, end: u64) -> Option<u64> {
        match *self {
            Trigger::At(n) => (start..end).contains(&n).then_some(n),
            Trigger::From(n) => {
                let first = n.max(start);
                (first < end).then_some(first)
            }
            Trigger::Every(n) => {
                let first = start.next_multiple_of(n);
                (first < end).then_some(first)
            }
        }
    }
}

/// An ordered set of [`Trigger`]s — the deterministic injection schedule
/// shared by the torn-write harness and the filter-fault harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    triggers: Vec<Trigger>,
}

impl Schedule {
    /// A schedule that never fires.
    pub fn never() -> Self {
        Schedule::default()
    }

    /// Fire exactly at `idx`.
    pub fn at(mut self, idx: u64) -> Self {
        self.triggers.push(Trigger::At(idx));
        self
    }

    /// Fire at every index `>= idx`.
    pub fn from(mut self, idx: u64) -> Self {
        self.triggers.push(Trigger::From(idx));
        self
    }

    /// Fire at every multiple of `period` (including 0).
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn every(mut self, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        self.triggers.push(Trigger::Every(period));
        self
    }

    /// Whether any trigger fires at `idx`.
    pub fn fires(&self, idx: u64) -> bool {
        self.triggers.iter().any(|t| t.fires(idx))
    }

    /// Earliest index in `start..end` at which any trigger fires.
    pub fn first_fire_in(&self, start: u64, end: u64) -> Option<u64> {
        self.triggers
            .iter()
            .filter_map(|t| t.first_in(start, end))
            .min()
    }

    /// The rules in insertion order (first match wins for keyed uses).
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

fn crashed_err() -> io::Error {
    io::Error::other("injected crash: store is dead")
}

/// Crash-injecting [`Store`] wrapper (see the module docs for the model).
#[derive(Debug)]
pub struct FailingStore<S> {
    inner: S,
    schedule: Schedule,
    tick: u64,
    crashed: bool,
    /// Appended-but-unsynced bytes per name — the simulated page cache.
    unsynced: BTreeMap<String, Vec<u8>>,
}

impl<S: Store> FailingStore<S> {
    /// Wrap `inner`; the store dies at the first tick `schedule` fires on.
    pub fn new(inner: S, schedule: Schedule) -> Self {
        FailingStore {
            inner,
            schedule,
            tick: 0,
            crashed: false,
            unsynced: BTreeMap::new(),
        }
    }

    /// Convenience: crash at exactly `tick`.
    pub fn crash_at(inner: S, tick: u64) -> Self {
        FailingStore::new(inner, Schedule::never().at(tick))
    }

    /// Durability ticks consumed so far (sweep harnesses run once with
    /// [`Schedule::never`] to size the crash-point space).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Whether the injected crash has happened.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Tear down the simulated process: drop the page cache and return the
    /// durable state a recovery would find on disk.
    pub fn into_durable(self) -> S {
        self.inner
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            return Err(crashed_err());
        }
        Ok(())
    }

    /// Spend one metadata tick; errs (and kills the store) if the schedule
    /// fires on it, *before* the operation takes effect.
    fn metadata_tick(&mut self) -> io::Result<()> {
        self.check_alive()?;
        if self.schedule.fires(self.tick) {
            self.crashed = true;
            return Err(crashed_err());
        }
        self.tick += 1;
        Ok(())
    }

    fn unsynced_len(&self, name: &str) -> usize {
        self.unsynced.get(name).map_or(0, Vec::len)
    }
}

impl<S: Store> Store for FailingStore<S> {
    fn list(&self) -> io::Result<Vec<String>> {
        // Live (page-cache) view: names with only unsynced content included.
        let mut names = self.inner.list()?;
        for name in self.unsynced.keys() {
            if !names.iter().any(|n| n == name) {
                names.push(name.clone());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let durable = match self.inner.read(name) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound && self.unsynced.contains_key(name) => {
                Vec::new()
            }
            Err(e) => return Err(e),
        };
        let mut out = durable;
        if let Some(pending) = self.unsynced.get(name) {
            out.extend_from_slice(pending);
        }
        Ok(out)
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        match self.inner.len(name) {
            Ok(n) => Ok(n + self.unsynced_len(name) as u64),
            Err(e) if e.kind() == io::ErrorKind::NotFound && self.unsynced.contains_key(name) => {
                Ok(self.unsynced_len(name) as u64)
            }
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        // Page-cache write: instantly visible, not durable, zero ticks.
        self.unsynced
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        let Some(pending) = self.unsynced.remove(name) else {
            return Ok(()); // nothing to flush: no durable state change
        };
        let n = pending.len() as u64;
        match self.schedule.first_fire_in(self.tick, self.tick + n) {
            None => {
                self.inner.append(name, &pending)?;
                self.tick += n;
                Ok(())
            }
            Some(fire) => {
                // The power cut lands mid-fsync: a prefix becomes durable,
                // the rest of the page cache is lost with the process.
                let durable_prefix = (fire - self.tick) as usize;
                self.inner.append(name, &pending[..durable_prefix])?;
                self.tick = fire;
                self.crashed = true;
                self.unsynced.clear();
                Err(crashed_err())
            }
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        self.metadata_tick()?;
        let durable_len = match self.inner.len(name) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        if len <= durable_len {
            self.unsynced.remove(name);
            if durable_len > 0 || self.inner.exists(name)? {
                self.inner.truncate(name, len)?;
            }
        } else if let Some(pending) = self.unsynced.get_mut(name) {
            pending.truncate((len - durable_len) as usize);
        }
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        self.metadata_tick()?;
        // Unsynced appends to the destination die with the replace; the
        // source's pending bytes follow it to the new name (still volatile).
        self.unsynced.remove(to);
        let pending_from = self.unsynced.remove(from);
        match self.inner.rename(from, to) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound && pending_from.is_some() => {
                // Source exists only in the page cache: the rename succeeds
                // in the live view but publishes nothing durable.
                let _ = self.inner.remove(to);
            }
            Err(e) => return Err(e),
        }
        if let Some(pending) = pending_from {
            self.unsynced.insert(to.to_string(), pending);
        }
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.metadata_tick()?;
        let had_pending = self.unsynced.remove(name).is_some();
        match self.inner.remove(name) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound && had_pending => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn schedule_trigger_semantics() {
        let s = Schedule::never().at(3).every(5);
        assert!(s.fires(3));
        assert!(s.fires(0) && s.fires(5) && s.fires(10));
        assert!(!s.fires(4));
        assert_eq!(s.first_fire_in(1, 100), Some(3));
        assert_eq!(s.first_fire_in(4, 100), Some(5));
        assert_eq!(s.first_fire_in(4, 5), None);
        let f = Schedule::never().from(7);
        assert_eq!(f.first_fire_in(0, 100), Some(7));
        assert_eq!(f.first_fire_in(9, 100), Some(9));
        assert!(Schedule::never().first_fire_in(0, u64::MAX).is_none());
    }

    #[test]
    fn appends_are_volatile_until_sync() {
        let mut fs = FailingStore::new(MemStore::new(), Schedule::never());
        fs.append("f", b"abc").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"abc", "live view sees page cache");
        assert_eq!(fs.ticks(), 0, "append costs no durability ticks");
        let durable = fs.into_durable();
        assert!(
            !durable.exists("f").unwrap(),
            "unsynced bytes die with the process"
        );
    }

    #[test]
    fn sync_makes_bytes_durable_and_ticks_per_byte() {
        let mut fs = FailingStore::new(MemStore::new(), Schedule::never());
        fs.append("f", b"abc").unwrap();
        fs.sync("f").unwrap();
        assert_eq!(fs.ticks(), 3);
        fs.sync("f").unwrap();
        assert_eq!(fs.ticks(), 3, "empty sync is free");
        assert_eq!(fs.into_durable().read("f").unwrap(), b"abc");
    }

    #[test]
    fn crash_mid_sync_leaves_exact_prefix() {
        for crash in 0..6u64 {
            let mut fs = FailingStore::crash_at(MemStore::new(), crash);
            fs.append("f", b"abcdef").unwrap();
            let err = fs.sync("f").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Other);
            assert!(fs.crashed());
            assert!(fs.append("f", b"x").is_err(), "dead store refuses writes");
            let durable = fs.into_durable();
            let on_disk = durable.read("f").unwrap_or_default();
            assert_eq!(on_disk, &b"abcdef"[..crash as usize], "crash at {crash}");
        }
    }

    #[test]
    fn metadata_ops_cost_one_tick_and_can_crash() {
        let mut fs = FailingStore::new(MemStore::new(), Schedule::never());
        fs.append("a", b"x").unwrap();
        fs.sync("a").unwrap(); // tick 0 consumed by the byte
        fs.rename("a", "b").unwrap(); // tick 1
        fs.remove("b").unwrap(); // tick 2
        assert_eq!(fs.ticks(), 3);

        let mut fs = FailingStore::crash_at(MemStore::new(), 1);
        fs.append("a", b"x").unwrap();
        fs.sync("a").unwrap();
        assert!(
            fs.rename("a", "b").is_err(),
            "crash lands on the rename tick"
        );
        let durable = fs.into_durable();
        assert!(durable.exists("a").unwrap(), "rename never happened");
        assert!(!durable.exists("b").unwrap());
    }

    #[test]
    fn rename_of_unsynced_file_publishes_nothing_durable() {
        let mut fs = FailingStore::new(MemStore::new(), Schedule::never());
        fs.append("tmp", b"data").unwrap();
        fs.rename("tmp", "final").unwrap();
        assert_eq!(
            fs.read("final").unwrap(),
            b"data",
            "live view follows the rename"
        );
        let durable = fs.into_durable();
        assert!(!durable.exists("final").unwrap());
        assert!(!durable.exists("tmp").unwrap());
    }

    #[test]
    fn deterministic_ticks_across_identical_runs() {
        let run = |crash: Option<u64>| -> (u64, Vec<u8>) {
            let schedule = crash.map_or(Schedule::never(), |c| Schedule::never().at(c));
            let mut fs = FailingStore::new(MemStore::new(), schedule);
            let mut write = |name: &str, data: &[u8]| {
                let _ = fs.append(name, data);
                let _ = fs.sync(name);
            };
            write("w", b"hello");
            write("w", b"world");
            let _ = fs.rename("w", "v");
            let ticks = fs.ticks();
            let data = fs.into_durable().read("v").unwrap_or_default();
            (ticks, data)
        };
        let (total, full) = run(None);
        assert_eq!(full, b"helloworld");
        for crash in 0..total {
            let (a, b) = (run(Some(crash)), run(Some(crash)));
            assert_eq!(a, b, "crash at {crash} must be deterministic");
        }
    }
}
