//! Flat-namespace storage abstraction for WAL segments and checkpoints.
//!
//! [`Store`] deliberately exposes only the operations whose durability
//! semantics the recovery protocol reasons about: append, fsync, truncate,
//! atomic rename, remove. Names are flat (no path separators) so every
//! implementation — a directory ([`DirStore`]), memory ([`MemStore`]), or
//! the crash-injecting wrapper ([`crate::FailingStore`]) — offers the same
//! namespace.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Minimal storage interface with explicit durability points.
///
/// Contract assumed by [`crate::Wal`] and [`crate::checkpoint`]:
/// - [`append`](Store::append) writes may not be durable until
///   [`sync`](Store::sync) returns.
/// - [`rename`](Store::rename) atomically replaces the destination.
/// - [`list`](Store::list) returns names in sorted order.
pub trait Store {
    /// All names currently present, sorted.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Full contents of `name` (`NotFound` if absent).
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Current length of `name` in bytes (`NotFound` if absent).
    fn len(&self, name: &str) -> io::Result<u64>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> io::Result<bool> {
        match self.len(name) {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Append `bytes` to `name`, creating it if absent.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Make all prior appends to `name` durable.
    fn sync(&mut self, name: &str) -> io::Result<()>;

    /// Shrink `name` to `len` bytes (used to drop a corrupt tail).
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()>;

    /// Atomically rename `from` to `to`, replacing any existing `to`.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;

    /// Delete `name` (`NotFound` if absent).
    fn remove(&mut self, name: &str) -> io::Result<()>;
}

fn invalid_name(name: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("invalid store name: {name:?}"),
    )
}

fn check_name(name: &str) -> io::Result<()> {
    if name.is_empty()
        || name == "."
        || name == ".."
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0')
    {
        return Err(invalid_name(name));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// DirStore
// ---------------------------------------------------------------------------

/// [`Store`] over a single real filesystem directory.
///
/// Files are reopened per operation — durability work is checkpoint-cadence
/// bound, not per-event, so handle caching is not worth the state. On Unix
/// the parent directory is fsynced after rename/remove so the rename itself
/// is durable, matching the tmp + fsync + rename publication protocol.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DirStore { root })
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> io::Result<PathBuf> {
        check_name(name)?;
        Ok(self.root.join(name))
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Directory fsync is what makes renames durable on Unix; other
        // platforms don't expose it, so treat it as best-effort there.
        #[cfg(unix)]
        {
            fs::File::open(&self.root)?.sync_all()?;
        }
        Ok(())
    }
}

impl Store for DirStore {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = fs::read_dir(&self.root)?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                if entry.file_type().ok()?.is_file() {
                    entry.file_name().into_string().ok()
                } else {
                    None
                }
            })
            .collect();
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        fs::File::open(self.path(name)?)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.path(name)?)?.len())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name)?)?;
        f.write_all(bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        fs::OpenOptions::new()
            .append(true)
            .open(self.path(name)?)?
            .sync_all()
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(self.path(name)?)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        fs::rename(self.path(from)?, self.path(to)?)?;
        self.sync_dir()
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        fs::remove_file(self.path(name)?)?;
        self.sync_dir()
    }
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// In-memory [`Store`] where every append is immediately durable. The
/// fast backing for tests and for [`crate::FailingStore`], whose page-cache
/// simulation supplies the durability gap that memory lacks.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    files: BTreeMap<String, Vec<u8>>,
}

impl MemStore {
    pub fn new() -> Self {
        MemStore::default()
    }
}

fn not_found(name: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such entry: {name}"))
}

impl Store for MemStore {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        check_name(name)?;
        self.files.get(name).cloned().ok_or_else(|| not_found(name))
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        check_name(name)?;
        self.files
            .get(name)
            .map(|b| b.len() as u64)
            .ok_or_else(|| not_found(name))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        check_name(name)?;
        self.files
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        check_name(name)?;
        let file = self.files.get_mut(name).ok_or_else(|| not_found(name))?;
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < file.len() {
            file.truncate(len);
        }
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        check_name(from)?;
        check_name(to)?;
        let contents = self.files.remove(from).ok_or_else(|| not_found(from))?;
        self.files.insert(to.to_string(), contents);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        check_name(name)?;
        self.files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| not_found(name))
    }
}

// ---------------------------------------------------------------------------
// Atomic file write (used by core::persist for model bundles)
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` atomically: write a sibling `.tmp` file, fsync
/// it, rename over the destination, then fsync the parent directory. A
/// crash at any point leaves either the old file or the new one — never a
/// torn mix.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Read a file back, distinguishing "absent" from real errors the way
/// [`Store::read`] does. Convenience for load paths.
pub fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut f = fs::File::open(path)?;
    f.seek(SeekFrom::Start(0))?;
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn Store) {
        assert_eq!(store.list().unwrap(), Vec::<String>::new());
        store.append("b.log", b"hello ").unwrap();
        store.append("b.log", b"world").unwrap();
        store.append("a.log", b"x").unwrap();
        store.sync("b.log").unwrap();
        assert_eq!(
            store.list().unwrap(),
            vec!["a.log".to_string(), "b.log".to_string()]
        );
        assert_eq!(store.read("b.log").unwrap(), b"hello world");
        assert_eq!(store.len("b.log").unwrap(), 11);
        store.truncate("b.log", 5).unwrap();
        assert_eq!(store.read("b.log").unwrap(), b"hello");
        store.rename("b.log", "c.log").unwrap();
        assert!(!store.exists("b.log").unwrap());
        assert_eq!(store.read("c.log").unwrap(), b"hello");
        store.remove("c.log").unwrap();
        assert_eq!(
            store.read("c.log").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(
            store.remove("c.log").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert!(store.append("no/slashes", b"x").is_err());
        assert!(store.append("..", b"x").is_err());
    }

    #[test]
    fn mem_store_contract() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn dir_store_contract() {
        let dir = std::env::temp_dir().join(format!("dlacep-dur-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise(&mut DirStore::open(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("dlacep-dur-aw-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("bundle.bin");
        atomic_write_file(&target, b"first version").unwrap();
        assert_eq!(read_file(&target).unwrap(), b"first version");
        atomic_write_file(&target, b"second").unwrap();
        assert_eq!(read_file(&target).unwrap(), b"second");
        assert!(!target.with_file_name("bundle.bin.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
