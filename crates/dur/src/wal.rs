//! Append-only segmented write-ahead log.
//!
//! ## Layout
//!
//! The log is a series of segment files named `wal-{start_seq:016x}.seg`,
//! where `start_seq` is the sequence number of the segment's first record.
//! Each segment opens with a header frame (`magic "DWAL"`, format version,
//! payload = `start_seq`) followed by records in the compact form
//! `crc32(4 LE) | len(4 LE) | payload` — the segment header authenticates
//! the file, so records skip per-record magic.
//!
//! ## Durability
//!
//! `append` hands bytes to the [`Store`] (page cache in the crash model);
//! [`Wal::sync`] is the durability point. With `sync_every > 0` the log
//! fsyncs itself after that many appended records — fsync *batching*: one
//! sync amortized over a batch, bounding loss to the batch tail. Rotation
//! syncs the outgoing segment before opening its successor.
//!
//! ## Recovery
//!
//! [`Wal::open`] scans all segments. Corruption at the *tail* of the last
//! segment is the expected signature of a crash: the tail is truncated at
//! the last whole record and appending resumes there. A last segment whose
//! header never became fully durable (a crash during rotation) is deleted
//! outright. Corruption anywhere else is not a tear — it is data loss, and
//! open fails with [`WalError::Corrupt`] rather than silently dropping
//! interior records.

use std::fmt;
use std::io;

use crate::codec::{self, scan_frame, CodecError, Decoder, Encoder};
use crate::store::Store;

/// Magic tag of segment header frames.
pub const WAL_MAGIC: [u8; 4] = *b"DWAL";
/// Current segment format version.
pub const WAL_VERSION: u16 = 1;
/// Bytes of per-record overhead (`crc32 | len`).
const RECORD_HEADER_BYTES: usize = 8;

/// WAL tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one reaches this many bytes
    /// (checked before each append; a segment always holds ≥ 1 record).
    pub segment_max_bytes: u64,
    /// Fsync after this many appended records; `0` = only explicit
    /// [`Wal::sync`] calls (e.g. at checkpoints) make records durable.
    pub sync_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_bytes: 64 * 1024,
            sync_every: 32,
        }
    }
}

/// Errors from WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// The underlying store failed (includes injected crashes).
    Io(io::Error),
    /// Corruption that is *not* a recoverable torn tail: a damaged record
    /// in the interior of the log, or an undecodable non-final segment.
    Corrupt {
        /// Segment file the damage was found in.
        segment: String,
        /// Byte offset of the damaged frame within the segment.
        offset: u64,
        /// The codec-level failure.
        source: CodecError,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                source,
            } => {
                write!(f, "wal corrupt at {segment}+{offset}: {source}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Sequence number the next appended record will receive (the first
    /// surviving segment's start — 0 unless the head was pruned — plus the
    /// records that survived recovery).
    pub next_seq: u64,
    /// Bytes cut from the last segment's corrupt tail.
    pub truncated_bytes: u64,
    /// Headerless (torn-at-birth) trailing segments deleted.
    pub removed_segments: u64,
    /// Segments present after recovery.
    pub segments: usize,
}

fn segment_name(start_seq: u64) -> String {
    format!("wal-{start_seq:016x}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn encode_segment_header(start_seq: u64) -> Vec<u8> {
    let mut payload = Encoder::with_capacity(8);
    payload.put_u64(start_seq);
    codec::encode_frame(WAL_MAGIC, WAL_VERSION, payload.bytes())
}

fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    let len_bytes = (payload.len() as u32).to_le_bytes();
    // The CRC covers the length field too, so a bit flip in `len` is a
    // checksum mismatch (bit rot), not a phantom tear.
    out.extend_from_slice(&codec::crc32_parts(&[&len_bytes, payload]).to_le_bytes());
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(payload);
    out
}

/// Decode the record starting at `bytes`; returns `(payload, consumed)`.
fn scan_record(bytes: &[u8]) -> Result<(&[u8], usize), CodecError> {
    if bytes.len() < RECORD_HEADER_BYTES {
        return Err(CodecError::Truncated {
            needed: RECORD_HEADER_BYTES,
            remaining: bytes.len(),
        });
    }
    let expected_crc = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let total = RECORD_HEADER_BYTES + len;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            remaining: bytes.len(),
        });
    }
    let payload = &bytes[RECORD_HEADER_BYTES..total];
    let got_crc = codec::crc32_parts(&[&bytes[4..8], payload]);
    if got_crc != expected_crc {
        return Err(CodecError::ChecksumMismatch {
            expected: expected_crc,
            got: got_crc,
        });
    }
    Ok((payload, total))
}

/// Whether a decode failure is the signature of a torn (prefix-cut) write.
/// In the append-only crash model a tear can only shorten the file, so the
/// scanner runs out of bytes (`Truncated`); a checksum mismatch over bytes
/// that are all present means bit rot — unrecoverable data damage.
fn is_tear(err: &CodecError) -> bool {
    matches!(err, CodecError::Truncated { .. })
}

/// Fully parsed view of one segment.
struct SegmentScan {
    /// Number of valid records.
    records: u64,
    /// Byte offset just past the last valid record.
    valid_len: u64,
    /// Decode failure that stopped the scan, with its offset.
    tail_error: Option<(u64, CodecError)>,
    /// Whether the header frame itself was unreadable.
    header_damaged: bool,
}

fn scan_segment(bytes: &[u8], expect_start_seq: u64) -> SegmentScan {
    let header = match scan_frame(WAL_MAGIC, WAL_VERSION, bytes) {
        Ok((_, payload, consumed)) => {
            let mut d = Decoder::new(payload);
            match d.take_u64() {
                Ok(seq) if seq == expect_start_seq => Some(consumed),
                Ok(seq) => {
                    let err = CodecError::Malformed(format!(
                        "segment header start_seq {seq} != expected {expect_start_seq}"
                    ));
                    return SegmentScan {
                        records: 0,
                        valid_len: 0,
                        tail_error: Some((0, err)),
                        header_damaged: true,
                    };
                }
                Err(e) => {
                    return SegmentScan {
                        records: 0,
                        valid_len: 0,
                        tail_error: Some((0, e)),
                        header_damaged: true,
                    }
                }
            }
        }
        Err(e) => {
            return SegmentScan {
                records: 0,
                valid_len: 0,
                tail_error: Some((0, e)),
                header_damaged: true,
            }
        }
    };
    let mut pos = header.unwrap();
    let mut records = 0u64;
    let mut tail_error = None;
    while pos < bytes.len() {
        match scan_record(&bytes[pos..]) {
            Ok((_, consumed)) => {
                records += 1;
                pos += consumed;
            }
            Err(e) => {
                tail_error = Some((pos as u64, e));
                break;
            }
        }
    }
    SegmentScan {
        records,
        valid_len: pos as u64,
        tail_error,
        header_damaged: false,
    }
}

/// Handle on an open write-ahead log. All storage access goes through the
/// `&mut impl Store` passed to each call, so one store can serve the WAL,
/// checkpoints, and crash injection without interior mutability.
#[derive(Debug)]
pub struct Wal {
    cfg: WalConfig,
    /// Sequence number of the next record to append.
    next_seq: u64,
    /// Active segment: `(name, current byte length)`; `None` until the
    /// first append (a fresh log creates no files).
    active: Option<(String, u64)>,
    /// Records appended since the last sync.
    appended_since_sync: u64,
}

impl Wal {
    /// Open the log in `store`, repairing any crash damage at the tail
    /// (see the module docs for the recovery rules).
    pub fn open<S: Store>(store: &mut S, cfg: WalConfig) -> Result<(Wal, WalOpenReport), WalError> {
        let mut segments: Vec<(u64, String)> = store
            .list()?
            .into_iter()
            .filter_map(|name| parse_segment_name(&name).map(|seq| (seq, name)))
            .collect();
        segments.sort();

        let mut report = WalOpenReport::default();
        let mut next_seq = 0u64;
        let mut active: Option<(String, u64)> = None;

        for (i, (start_seq, name)) in segments.iter().enumerate() {
            let last = i + 1 == segments.len();
            if i == 0 {
                // Records below the first surviving segment were pruned as
                // checkpoint-covered; the log legitimately starts mid-sequence.
                next_seq = *start_seq;
            }
            let bytes = store.read(name)?;
            let scan = scan_segment(&bytes, *start_seq);
            if scan.header_damaged {
                let (offset, source) = scan.tail_error.expect("damaged header carries its error");
                if last && *start_seq == next_seq && is_tear(&source) {
                    // Crash during rotation: the successor's header never
                    // became durable. No records lost — drop the shell.
                    report.truncated_bytes += bytes.len() as u64;
                    report.removed_segments += 1;
                    store.remove(name)?;
                    continue;
                }
                return Err(WalError::Corrupt {
                    segment: name.clone(),
                    offset,
                    source,
                });
            }
            if *start_seq != next_seq {
                return Err(WalError::Corrupt {
                    segment: name.clone(),
                    offset: 0,
                    source: CodecError::Malformed(format!(
                        "segment starts at seq {start_seq}, expected {next_seq}"
                    )),
                });
            }
            if let Some((offset, source)) = scan.tail_error {
                if !last || !is_tear(&source) {
                    // Damage in the interior of the log, or over bytes that
                    // are all present (bit rot): data loss, not a torn tail.
                    return Err(WalError::Corrupt {
                        segment: name.clone(),
                        offset,
                        source,
                    });
                }
                report.truncated_bytes += bytes.len() as u64 - scan.valid_len;
                store.truncate(name, scan.valid_len)?;
            }
            next_seq = start_seq + scan.records;
            report.segments += 1;
            active = Some((name.clone(), scan.valid_len));
        }

        report.next_seq = next_seq;
        let wal = Wal {
            cfg,
            next_seq,
            active,
            appended_since_sync: 0,
        };
        Ok((wal, report))
    }

    /// Sequence number the next appended record will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one record, returning its sequence number. The record is
    /// durable once [`Wal::sync`] (or batched auto-sync) has run.
    pub fn append<S: Store>(&mut self, store: &mut S, payload: &[u8]) -> Result<u64, WalError> {
        let rotate = match &self.active {
            Some((_, len)) => *len >= self.cfg.segment_max_bytes,
            None => true,
        };
        if rotate {
            if let Some((old, _)) = self.active.take() {
                store.sync(&old)?;
                self.appended_since_sync = 0;
            }
            let name = segment_name(self.next_seq);
            let header = encode_segment_header(self.next_seq);
            store.append(&name, &header)?;
            self.active = Some((name, header.len() as u64));
        }
        let (name, len) = self
            .active
            .as_mut()
            .expect("active segment exists after rotation");
        let record = encode_record(payload);
        store.append(name, &record)?;
        *len += record.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.appended_since_sync += 1;
        if self.cfg.sync_every > 0 && self.appended_since_sync >= self.cfg.sync_every {
            self.sync(store)?;
        }
        Ok(seq)
    }

    /// Fsync the active segment, making every appended record durable.
    pub fn sync<S: Store>(&mut self, store: &mut S) -> Result<(), WalError> {
        if let Some((name, _)) = &self.active {
            store.sync(name)?;
        }
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Read back all records with sequence number `>= from_seq`, in order.
    /// Intended for recovery replay after [`Wal::open`] has repaired the
    /// tail; mid-log damage still surfaces as [`WalError::Corrupt`].
    pub fn replay<S: Store>(store: &S, from_seq: u64) -> Result<Vec<(u64, Vec<u8>)>, WalError> {
        let mut segments: Vec<(u64, String)> = store
            .list()?
            .into_iter()
            .filter_map(|name| parse_segment_name(&name).map(|seq| (seq, name)))
            .collect();
        segments.sort();

        let mut out = Vec::new();
        for (i, (start_seq, name)) in segments.iter().enumerate() {
            let last = i + 1 == segments.len();
            // Skip whole segments below the resume point.
            if let Some((next_start, _)) = segments.get(i + 1) {
                if *next_start <= from_seq {
                    continue;
                }
            }
            let bytes = store.read(name)?;
            let consumed = match scan_frame(WAL_MAGIC, WAL_VERSION, &bytes) {
                Ok((_, _, consumed)) => consumed,
                Err(source) if last && is_tear(&source) => {
                    // Torn successor segment not yet repaired by open().
                    continue;
                }
                Err(source) => {
                    return Err(WalError::Corrupt {
                        segment: name.clone(),
                        offset: 0,
                        source,
                    })
                }
            };
            let mut pos = consumed;
            let mut seq = *start_seq;
            while pos < bytes.len() {
                match scan_record(&bytes[pos..]) {
                    Ok((payload, used)) => {
                        if seq >= from_seq {
                            out.push((seq, payload.to_vec()));
                        }
                        seq += 1;
                        pos += used;
                    }
                    Err(source) => {
                        if last && is_tear(&source) {
                            break; // unrepaired torn tail: stop at the tear
                        }
                        return Err(WalError::Corrupt {
                            segment: name.clone(),
                            offset: pos as u64,
                            source,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Remove segments every record of which has sequence number `< seq`
    /// (they are covered by a checkpoint and will never be replayed). The
    /// active segment is never removed.
    pub fn prune_below<S: Store>(&mut self, store: &mut S, seq: u64) -> Result<u64, WalError> {
        let mut segments: Vec<(u64, String)> = store
            .list()?
            .into_iter()
            .filter_map(|name| parse_segment_name(&name).map(|s| (s, name)))
            .collect();
        segments.sort();
        let mut removed = 0u64;
        for i in 0..segments.len() {
            let Some((next_start, _)) = segments.get(i + 1) else {
                break; // never the last (active) segment
            };
            if *next_start <= seq {
                let name = &segments[i].1;
                if self.active.as_ref().is_some_and(|(a, _)| a == name) {
                    break;
                }
                store.remove(name)?;
                removed += 1;
            } else {
                break;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn tiny_cfg() -> WalConfig {
        WalConfig {
            segment_max_bytes: 64,
            sync_every: 0,
        }
    }

    #[test]
    fn append_reopen_replay_round_trip() {
        let mut store = MemStore::new();
        let (mut wal, report) = Wal::open(&mut store, tiny_cfg()).unwrap();
        assert_eq!(report, WalOpenReport::default());
        for i in 0..20u8 {
            let seq = wal
                .append(&mut store, &vec![i; (i as usize % 7) + 1])
                .unwrap();
            assert_eq!(seq, i as u64);
        }
        wal.sync(&mut store).unwrap();

        let (wal2, report) = Wal::open(&mut store, tiny_cfg()).unwrap();
        assert_eq!(wal2.next_seq(), 20);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.segments > 1, "tiny segments must have rotated");
        let records = Wal::replay(&store, 0).unwrap();
        assert_eq!(records.len(), 20);
        for (i, (seq, payload)) in records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*payload, vec![i as u8; (i % 7) + 1]);
        }
        assert_eq!(Wal::replay(&store, 17).unwrap().len(), 3);
    }

    #[test]
    fn corrupt_tail_is_truncated_preserving_prefix() {
        let mut store = MemStore::new();
        let (mut wal, _) = Wal::open(
            &mut store,
            WalConfig {
                segment_max_bytes: 1 << 20,
                sync_every: 0,
            },
        )
        .unwrap();
        for i in 0..10u8 {
            wal.append(&mut store, &[i; 5]).unwrap();
        }
        wal.sync(&mut store).unwrap();
        let name = store.list().unwrap()[0].clone();
        let full = store.len(&name).unwrap();

        for cut in 0..RECORD_HEADER_BYTES as u64 + 5 {
            let mut s = store.clone();
            s.truncate(&name, full - cut).unwrap();
            let (wal, report) = Wal::open(&mut s, tiny_cfg()).unwrap();
            if cut == 0 {
                assert_eq!(wal.next_seq(), 10);
                assert_eq!(report.truncated_bytes, 0);
            } else {
                assert_eq!(wal.next_seq(), 9, "cut {cut} tears exactly the last record");
                assert!(report.truncated_bytes > 0);
            }
            let records = Wal::replay(&s, 0).unwrap();
            assert_eq!(records.len(), wal.next_seq() as usize);
            for (i, (seq, payload)) in records.iter().enumerate() {
                assert_eq!(*seq, i as u64);
                assert_eq!(*payload, vec![i as u8; 5], "prefix preserved at cut {cut}");
            }
        }
    }

    #[test]
    fn append_resumes_in_truncated_segment() {
        let mut store = MemStore::new();
        let cfg = WalConfig {
            segment_max_bytes: 1 << 20,
            sync_every: 0,
        };
        let (mut wal, _) = Wal::open(&mut store, cfg).unwrap();
        for i in 0..5u8 {
            wal.append(&mut store, &[i]).unwrap();
        }
        wal.sync(&mut store).unwrap();
        let name = store.list().unwrap()[0].clone();
        store
            .truncate(&name, store.len(&name).unwrap() - 3)
            .unwrap();

        let (mut wal, report) = Wal::open(&mut store, cfg).unwrap();
        assert_eq!(report.truncated_bytes, 6, "partial record dropped");
        assert_eq!(wal.next_seq(), 4);
        wal.append(&mut store, b"resumed").unwrap();
        wal.sync(&mut store).unwrap();
        let records = Wal::replay(&store, 0).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4], (4, b"resumed".to_vec()));
    }

    #[test]
    fn torn_rotation_header_removes_empty_successor() {
        let mut store = MemStore::new();
        let cfg = WalConfig {
            segment_max_bytes: 32,
            sync_every: 0,
        };
        let (mut wal, _) = Wal::open(&mut store, cfg).unwrap();
        for i in 0..6u8 {
            wal.append(&mut store, &[i; 8]).unwrap();
        }
        wal.sync(&mut store).unwrap();
        let segments = store.list().unwrap();
        assert!(segments.len() >= 2);
        let last = segments.last().unwrap().clone();
        // Tear the last segment inside its header frame.
        store.truncate(&last, 3).unwrap();

        let (wal, report) = Wal::open(&mut store, cfg).unwrap();
        assert_eq!(report.removed_segments, 1);
        assert!(!store.exists(&last).unwrap());
        let records = Wal::replay(&store, 0).unwrap();
        assert_eq!(records.len() as u64, wal.next_seq());
        for (i, (seq, _)) in records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
    }

    #[test]
    fn interior_corruption_is_an_error_not_a_truncation() {
        let mut store = MemStore::new();
        let (mut wal, _) = Wal::open(
            &mut store,
            WalConfig {
                segment_max_bytes: 1 << 20,
                sync_every: 0,
            },
        )
        .unwrap();
        for i in 0..10u8 {
            wal.append(&mut store, &[i; 5]).unwrap();
        }
        wal.sync(&mut store).unwrap();
        let name = store.list().unwrap()[0].clone();
        let mut bytes = store.read(&name).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let len = bytes.len() as u64;
        store.truncate(&name, 0).unwrap();
        store.append(&name, &bytes).unwrap();
        assert_eq!(store.len(&name).unwrap(), len);

        match Wal::open(&mut store, tiny_cfg()) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("interior bit-flip must fail open, got {other:?}"),
        }
    }

    #[test]
    fn sync_every_batches_fsyncs() {
        let mut store = MemStore::new();
        let cfg = WalConfig {
            segment_max_bytes: 1 << 20,
            sync_every: 4,
        };
        let (mut wal, _) = Wal::open(&mut store, cfg).unwrap();
        for i in 0..9u8 {
            wal.append(&mut store, &[i]).unwrap();
        }
        assert_eq!(
            wal.appended_since_sync, 1,
            "8 of 9 records auto-synced in two batches"
        );
    }

    #[test]
    fn prune_below_drops_fully_covered_segments() {
        let mut store = MemStore::new();
        let cfg = WalConfig {
            segment_max_bytes: 32,
            sync_every: 0,
        };
        let (mut wal, _) = Wal::open(&mut store, cfg).unwrap();
        for i in 0..12u8 {
            wal.append(&mut store, &[i; 8]).unwrap();
        }
        wal.sync(&mut store).unwrap();
        let before = store.list().unwrap().len();
        assert!(before >= 3);

        let removed = wal.prune_below(&mut store, 0).unwrap();
        assert_eq!(removed, 0);
        let removed = wal.prune_below(&mut store, wal.next_seq()).unwrap();
        assert!(removed > 0);
        assert!(!store.list().unwrap().is_empty(), "active segment survives");
        // Everything still replayable from the first surviving seq.
        let records = Wal::replay(&store, 0).unwrap();
        let first = records.first().unwrap().0;
        assert_eq!(records.last().unwrap().0, 11);
        assert!(first > 0);
    }

    #[test]
    fn pruned_log_reopens_mid_sequence() {
        let mut store = MemStore::new();
        let cfg = WalConfig {
            segment_max_bytes: 32,
            sync_every: 0,
        };
        let (mut wal, _) = Wal::open(&mut store, cfg).unwrap();
        for i in 0..12u8 {
            wal.append(&mut store, &[i; 8]).unwrap();
        }
        wal.sync(&mut store).unwrap();
        assert!(wal.prune_below(&mut store, wal.next_seq()).unwrap() > 0);

        // Reopening a head-pruned log must pick up the surviving start, not
        // demand seq 0 (the crash-sweep recovery path after a checkpoint).
        let (mut wal2, report) = Wal::open(&mut store, cfg).unwrap();
        assert_eq!(wal2.next_seq(), 12);
        assert_eq!(report.next_seq, 12);
        assert_eq!(report.truncated_bytes, 0);
        let seq = wal2.append(&mut store, b"after").unwrap();
        assert_eq!(seq, 12);
        wal2.sync(&mut store).unwrap();
        let records = Wal::replay(&store, 12).unwrap();
        assert_eq!(records, vec![(12, b"after".to_vec())]);
    }
}
