//! Versioned, checksummed little-endian binary codec.
//!
//! Two layers:
//!
//! 1. **Primitive encoding** — [`Encoder`]/[`Decoder`] plus the [`Enc`] /
//!    [`Dec`] traits, implemented here for integers, floats (bit-exact via
//!    `to_bits`), `bool`, `String`, `Vec<T>`, `Option<T>`, and pairs.
//!    Downstream crates implement the traits for their own state types;
//!    that is why this crate sits at the bottom of the workspace stack.
//! 2. **Framing** — [`encode_frame`] wraps a payload in
//!    `magic(4) | version(2) | len(4) | crc32(4) | payload`, and
//!    [`decode_frame`] / [`scan_frame`] validate all four before handing
//!    the payload back. A torn write (frame cut short) surfaces as
//!    [`CodecError::Truncated`]; corruption as
//!    [`CodecError::ChecksumMismatch`] or [`CodecError::BadMagic`].
//!
//! Every decode path returns `Result` — corrupt bytes must never panic,
//! because recovery *expects* to meet torn frames at the tail of a WAL.

use std::fmt;

/// Number of bytes of frame overhead: magic + version + length + CRC32.
pub const FRAME_HEADER_BYTES: usize = 4 + 2 + 4 + 4;

/// Errors surfaced while decoding persisted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the announced structure was complete — the
    /// signature of a torn (partially durable) write.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The frame does not start with the expected magic tag.
    BadMagic { expected: [u8; 4], got: [u8; 4] },
    /// The frame's format version is newer than this build understands.
    UnsupportedVersion { got: u16, max: u16 },
    /// The frame's CRC32 (computed over magic, version, length, and
    /// payload) does not match the stored value — bit rot.
    ChecksumMismatch { expected: u32, got: u32 },
    /// Structurally invalid payload (bad enum tag, impossible length, …).
    Malformed(String),
    /// Decoding succeeded but left unconsumed bytes where none belong.
    TrailingBytes { remaining: usize },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadMagic { expected, got } => {
                write!(f, "bad magic: expected {expected:02x?}, got {got:02x?}")
            }
            CodecError::UnsupportedVersion { got, max } => {
                write!(
                    f,
                    "unsupported format version {got} (max understood: {max})"
                )
            }
            CodecError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "crc32 mismatch: header says {expected:#010x}, payload hashes to {got:#010x}"
                )
            }
            CodecError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the common `crc32`/zlib checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// CRC32 over the concatenation of `parts` without materializing it.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = !0u32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoder / Decoder
// ---------------------------------------------------------------------------

/// Append-only byte sink for the binary codec. All integers little-endian.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Encode any [`Enc`] value (convenience for chained building).
    pub fn put<T: Enc + ?Sized>(&mut self, v: &T) {
        v.enc(self);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor over persisted bytes; every `take_*` checks bounds and returns
/// [`CodecError::Truncated`] instead of panicking.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Decode any [`Dec`] value (convenience mirroring [`Encoder::put`]).
    pub fn get<T: Dec>(&mut self) -> Result<T, CodecError> {
        T::dec(self)
    }

    /// Fail with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Types that can write themselves into an [`Encoder`].
pub trait Enc {
    fn enc(&self, e: &mut Encoder);
}

/// Types that can reconstruct themselves from a [`Decoder`].
pub trait Dec: Sized {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

macro_rules! int_codec {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Enc for $ty {
            fn enc(&self, e: &mut Encoder) {
                e.$put(*self);
            }
        }
        impl Dec for $ty {
            fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
                d.$take()
            }
        }
    };
}

int_codec!(u8, put_u8, take_u8);
int_codec!(u16, put_u16, take_u16);
int_codec!(u32, put_u32, take_u32);
int_codec!(u64, put_u64, take_u64);

impl Enc for usize {
    fn enc(&self, e: &mut Encoder) {
        e.put_u64(*self as u64);
    }
}

impl Dec for usize {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        usize::try_from(d.take_u64()?)
            .map_err(|_| CodecError::Malformed("usize out of range for platform".into()))
    }
}

impl Enc for i64 {
    fn enc(&self, e: &mut Encoder) {
        e.put_u64(*self as u64);
    }
}

impl Dec for i64 {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(d.take_u64()? as i64)
    }
}

impl Enc for bool {
    fn enc(&self, e: &mut Encoder) {
        e.put_u8(u8::from(*self));
    }
}

impl Dec for bool {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Malformed(format!("bool tag {other}"))),
        }
    }
}

// Floats round-trip through raw bits: bit-exact, NaN-preserving.
impl Enc for f64 {
    fn enc(&self, e: &mut Encoder) {
        e.put_u64(self.to_bits());
    }
}

impl Dec for f64 {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(d.take_u64()?))
    }
}

impl Enc for f32 {
    fn enc(&self, e: &mut Encoder) {
        e.put_u32(self.to_bits());
    }
}

impl Dec for f32 {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(f32::from_bits(d.take_u32()?))
    }
}

impl Enc for str {
    fn enc(&self, e: &mut Encoder) {
        e.put_u64(self.len() as u64);
        e.put_bytes(self.as_bytes());
    }
}

impl Enc for String {
    fn enc(&self, e: &mut Encoder) {
        self.as_str().enc(e);
    }
}

impl Dec for String {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = d.get::<usize>()?;
        let bytes = d.take_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Malformed("invalid utf-8 in string".into()))
    }
}

impl<T: Enc> Enc for Vec<T> {
    fn enc(&self, e: &mut Encoder) {
        e.put_u64(self.len() as u64);
        for item in self {
            item.enc(e);
        }
    }
}

impl<T: Dec> Dec for Vec<T> {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let len = d.get::<usize>()?;
        // Cap the preallocation by what could possibly fit in the remaining
        // bytes so a corrupt length cannot trigger a huge allocation.
        let mut out = Vec::with_capacity(len.min(d.remaining()));
        for _ in 0..len {
            out.push(T::dec(d)?);
        }
        Ok(out)
    }
}

impl<T: Enc> Enc for Option<T> {
    fn enc(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.enc(e);
            }
        }
    }
}

impl<T: Dec> Dec for Option<T> {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::dec(d)?)),
            other => Err(CodecError::Malformed(format!("option tag {other}"))),
        }
    }
}

impl<A: Enc, B: Enc> Enc for (A, B) {
    fn enc(&self, e: &mut Encoder) {
        self.0.enc(e);
        self.1.enc(e);
    }
}

impl<A: Dec, B: Dec> Dec for (A, B) {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::dec(d)?, B::dec(d)?))
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Wrap `payload` in a checksummed frame:
/// `magic(4) | version(2 LE) | payload_len(4 LE) | crc32(4 LE) | payload`,
/// where the CRC covers everything except its own field — a bit flip
/// anywhere in the frame is detectable.
pub fn encode_frame(magic: [u8; 4], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32_parts(&[&out, payload]);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode one frame at the start of `bytes`, tolerating trailing data.
/// Returns `(version, payload, bytes_consumed)`.
pub fn scan_frame(
    magic: [u8; 4],
    max_version: u16,
    bytes: &[u8],
) -> Result<(u16, &[u8], usize), CodecError> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(CodecError::Truncated {
            needed: FRAME_HEADER_BYTES,
            remaining: bytes.len(),
        });
    }
    let got_magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if got_magic != magic {
        return Err(CodecError::BadMagic {
            expected: magic,
            got: got_magic,
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version > max_version {
        return Err(CodecError::UnsupportedVersion {
            got: version,
            max: max_version,
        });
    }
    let len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    let expected_crc = u32::from_le_bytes(bytes[10..14].try_into().unwrap());
    let total = FRAME_HEADER_BYTES + len;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            remaining: bytes.len(),
        });
    }
    let payload = &bytes[FRAME_HEADER_BYTES..total];
    let got_crc = crc32_parts(&[&bytes[..10], payload]);
    if got_crc != expected_crc {
        return Err(CodecError::ChecksumMismatch {
            expected: expected_crc,
            got: got_crc,
        });
    }
    Ok((version, payload, total))
}

/// Decode a frame that must span `bytes` exactly (no trailing data).
pub fn decode_frame(
    magic: [u8; 4],
    max_version: u16,
    bytes: &[u8],
) -> Result<(u16, &[u8]), CodecError> {
    let (version, payload, consumed) = scan_frame(magic, max_version, bytes)?;
    if consumed != bytes.len() {
        return Err(CodecError::TrailingBytes {
            remaining: bytes.len() - consumed,
        });
    }
    Ok((version, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.put(&42u8);
        e.put(&7u16);
        e.put(&u32::MAX);
        e.put(&u64::MAX);
        e.put(&usize::MAX);
        e.put(&-5i64);
        e.put(&true);
        e.put(&f64::NAN);
        e.put(&1.5f32);
        e.put("hello");
        e.put(&vec![1u64, 2, 3]);
        e.put(&Some(9u32));
        e.put(&None::<u32>);
        e.put(&("k".to_string(), 3u64));

        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get::<u8>().unwrap(), 42);
        assert_eq!(d.get::<u16>().unwrap(), 7);
        assert_eq!(d.get::<u32>().unwrap(), u32::MAX);
        assert_eq!(d.get::<u64>().unwrap(), u64::MAX);
        assert_eq!(d.get::<usize>().unwrap(), usize::MAX);
        assert_eq!(d.get::<i64>().unwrap(), -5);
        assert!(d.get::<bool>().unwrap());
        assert!(d.get::<f64>().unwrap().is_nan());
        assert_eq!(d.get::<f32>().unwrap(), 1.5);
        assert_eq!(d.get::<String>().unwrap(), "hello");
        assert_eq!(d.get::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get::<Option<u32>>().unwrap(), Some(9));
        assert_eq!(d.get::<Option<u32>>().unwrap(), None);
        assert_eq!(d.get::<(String, u64)>().unwrap(), ("k".to_string(), 3));
        d.finish().unwrap();
    }

    #[test]
    fn truncated_decode_reports_not_panics() {
        let mut e = Encoder::new();
        e.put(&vec![1u64, 2, 3]);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(d.get::<Vec<u64>>().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tags_are_malformed() {
        assert!(matches!(
            Decoder::new(&[2]).get::<bool>(),
            Err(CodecError::Malformed(_))
        ));
        assert!(matches!(
            Decoder::new(&[7, 0, 0, 0, 0]).get::<Option<u8>>(),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn frame_round_trip_and_version_gate() {
        const MAGIC: [u8; 4] = *b"TEST";
        let frame = encode_frame(MAGIC, 3, b"payload");
        let (version, payload) = decode_frame(MAGIC, 3, &frame).unwrap();
        assert_eq!(version, 3);
        assert_eq!(payload, b"payload");
        assert!(matches!(
            decode_frame(MAGIC, 2, &frame),
            Err(CodecError::UnsupportedVersion { got: 3, max: 2 })
        ));
        assert!(matches!(
            decode_frame(*b"ELSE", 3, &frame),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn every_torn_prefix_is_detected() {
        const MAGIC: [u8; 4] = *b"TEST";
        let frame = encode_frame(MAGIC, 1, b"some payload bytes");
        for cut in 0..frame.len() {
            let err = decode_frame(MAGIC, 1, &frame[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn every_single_bitflip_is_detected() {
        const MAGIC: [u8; 4] = *b"TEST";
        let frame = encode_frame(MAGIC, 1, b"some payload bytes");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    decode_frame(MAGIC, 1, &corrupt).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn scan_frame_reports_consumed_and_allows_trailing() {
        const MAGIC: [u8; 4] = *b"TEST";
        let mut bytes = encode_frame(MAGIC, 1, b"first");
        let first_len = bytes.len();
        bytes.extend_from_slice(&encode_frame(MAGIC, 1, b"second"));
        let (_, payload, consumed) = scan_frame(MAGIC, 1, &bytes).unwrap();
        assert_eq!(payload, b"first");
        assert_eq!(consumed, first_len);
        let (_, payload, _) = scan_frame(MAGIC, 1, &bytes[consumed..]).unwrap();
        assert_eq!(payload, b"second");
    }
}
