//! Obs primitive coverage: histogram bucket-boundary properties, journal
//! ring wraparound, Prometheus golden output, and snapshot diff round-trip.

use dlacep_obs::{
    bucket_index, bucket_upper, render_prometheus, FieldValue, MetricsSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

proptest! {
    // Every value lands in exactly the bucket whose range contains it:
    // bucket 0 = {0}, bucket i = [2^(i-1), 2^i - 1].
    #[test]
    fn bucket_index_respects_bounds(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper(i), "value {v} above bucket {i} upper");
        if i > 0 {
            prop_assert!(v > bucket_upper(i - 1), "value {v} not above bucket {} upper", i - 1);
        }
    }

    // Power-of-two boundaries: 2^k is the first value of its bucket and
    // 2^k - 1 the last value of the previous one.
    #[test]
    fn bucket_index_at_powers_of_two(k in 1usize..64) {
        let v = 1u64 << k;
        prop_assert_eq!(bucket_index(v), k + 1);
        prop_assert_eq!(bucket_index(v - 1), k);
        prop_assert_eq!(bucket_upper(k), v - 1);
    }

    // Recorded samples are fully accounted for: bucket counts sum to the
    // total count, and the quantile of any q is an upper bound consistent
    // with the max recorded value's bucket.
    #[test]
    fn histogram_accounts_for_every_sample(values in prop::collection::vec(0u64..1 << 40, 1..50)) {
        let reg = Registry::enabled();
        let h = reg.histogram("h");
        for &v in &values {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms["h"];
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
        let bucket_total: u64 = hs.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, hs.count);
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(hs.quantile(1.0), bucket_upper(bucket_index(max)));
        prop_assert!(hs.quantile(0.5) <= hs.quantile(0.99));
    }

    // The journal ring never exceeds capacity, never loses count of what it
    // evicted, and always keeps the most recent entries.
    #[test]
    fn journal_wraparound_is_exact(capacity in 1usize..16, total in 0u64..64) {
        let reg = Registry::with_journal_capacity(capacity);
        for i in 0..total {
            reg.record("tick", &[("i", FieldValue::U64(i))]);
        }
        let j = reg.snapshot().journal;
        prop_assert_eq!(j.next_seq, total);
        prop_assert_eq!(j.entries.len() as u64, total.min(capacity as u64));
        prop_assert_eq!(j.dropped, total.saturating_sub(capacity as u64));
        let first_kept = total.saturating_sub(capacity as u64);
        for (offset, entry) in j.entries.iter().enumerate() {
            prop_assert_eq!(entry.seq, first_kept + offset as u64);
        }
    }
}

#[test]
fn prometheus_text_golden() {
    let reg = Registry::enabled();
    reg.counter("cep.partials_created").add(42);
    reg.gauge("train.loss").set(0.5);
    let h = reg.histogram("pipeline.mark_nanos");
    h.record(0); // bucket 0
    h.record(3); // bucket 2
    h.record(3); // bucket 2
    h.record(900); // bucket 10

    let expected = "\
# HELP dlacep_cep_partials_created_total DLACEP counter `cep.partials_created`.
# TYPE dlacep_cep_partials_created_total counter
dlacep_cep_partials_created_total 42
# HELP dlacep_train_loss DLACEP gauge `train.loss`.
# TYPE dlacep_train_loss gauge
dlacep_train_loss 0.5
# HELP dlacep_pipeline_mark_nanos DLACEP histogram `pipeline.mark_nanos`.
# TYPE dlacep_pipeline_mark_nanos histogram
dlacep_pipeline_mark_nanos_bucket{le=\"0\"} 1
dlacep_pipeline_mark_nanos_bucket{le=\"3\"} 3
dlacep_pipeline_mark_nanos_bucket{le=\"1023\"} 4
dlacep_pipeline_mark_nanos_bucket{le=\"+Inf\"} 4
dlacep_pipeline_mark_nanos_sum 906
dlacep_pipeline_mark_nanos_count 4
";
    assert_eq!(reg.render_prometheus(), expected);
    assert_eq!(render_prometheus(&reg.snapshot()), expected);
}

#[test]
fn diff_clamps_counter_resets_to_zero() {
    // A shard that restarts after recovery re-registers its counters at
    // zero; diffing its fresh snapshot against a pre-crash baseline must
    // clamp to 0, not wrap to ~u64::MAX (which renders as a nonsense rate).
    let pre = Registry::enabled();
    pre.counter("runtime.events_ingested").add(100);
    pre.histogram("runtime.window_nanos").record(500);
    pre.histogram("runtime.window_nanos").record(500);
    let baseline = pre.snapshot();

    let post = Registry::enabled();
    post.counter("runtime.events_ingested").add(40);
    post.histogram("runtime.window_nanos").record(500);
    let delta = post.snapshot().diff(&baseline);
    assert_eq!(
        delta.counters["runtime.events_ingested"], 0,
        "reset counter clamps to zero"
    );
    let dh = &delta.histograms["runtime.window_nanos"];
    assert_eq!(dh.count, 0);
    assert_eq!(dh.sum, 0);
    assert!(
        dh.buckets.iter().all(|&(_, c)| c > 0),
        "clamped buckets are dropped, never negative-as-huge"
    );
    assert_eq!(delta.journal.dropped, 0);
    // Sanity: the same-direction diff still reports true deltas.
    post.counter("runtime.events_ingested").add(5);
    let grown = post.snapshot().diff(&post.snapshot().diff(&baseline));
    assert!(grown.counters["runtime.events_ingested"] <= 45);
}

#[test]
fn snapshot_diff_round_trip() {
    let reg = Registry::enabled();
    let c = reg.counter("runtime.windows_evaluated");
    let h = reg.histogram("runtime.window_nanos");
    c.add(5);
    h.record(100);
    reg.record("mode", &[("mode", FieldValue::Str("Full".into()))]);
    let baseline = reg.snapshot();

    c.add(3);
    h.record(100);
    h.record(70_000);
    reg.gauge("train.loss").set(0.25);
    reg.record("mode", &[("mode", FieldValue::Str("Degraded".into()))]);
    let after = reg.snapshot();

    let delta = after.diff(&baseline);
    assert_eq!(delta.counters["runtime.windows_evaluated"], 3);
    let dh = &delta.histograms["runtime.window_nanos"];
    assert_eq!(dh.count, 2);
    assert_eq!(dh.sum, 70_100);
    assert_eq!(dh.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 2);
    assert_eq!(delta.gauges["train.loss"], 0.25);
    assert_eq!(delta.journal.entries.len(), 1);
    assert_eq!(
        delta.journal.entries[0].fields,
        vec![("mode".to_string(), FieldValue::Str("Degraded".into()))]
    );

    // Diff against an empty baseline is the identity on counters/histograms.
    let zero = after.diff(&MetricsSnapshot::default());
    assert_eq!(zero.counters, after.counters);
    assert_eq!(zero.histograms, after.histograms);
    assert_eq!(zero.journal.entries, after.journal.entries);
}

#[test]
fn snapshot_serializes_to_json_and_back() {
    let reg = Registry::enabled();
    reg.counter("pipeline.events_total").add(7);
    reg.gauge("pool.queue_depth").set(4.0);
    reg.histogram("pipeline.cep_stage_nanos").record(1234);
    reg.record(
        "breaker",
        &[
            ("from", FieldValue::Str("Closed".into())),
            ("to", FieldValue::Str("Open".into())),
            ("window", FieldValue::U64(12)),
        ],
    );
    let snap = reg.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn deterministic_view_strips_pool_namespace_and_timing() {
    let reg = Registry::enabled();
    reg.counter("cep.matches").add(2);
    reg.counter("pool.tasks_executed").add(9);
    reg.histogram("pipeline.mark_nanos").record(55);
    reg.record("mode", &[("window", FieldValue::U64(1))]);
    reg.record("pool.queue_depth", &[("depth", FieldValue::U64(3))]);

    let view = reg.snapshot().deterministic_view(&["pool."]);
    assert_eq!(view.counters.len(), 1);
    assert_eq!(view.counters["cep.matches"], 2);
    assert_eq!(view.journal.len(), 1);
    assert_eq!(view.journal[0].0, "mode");
}
