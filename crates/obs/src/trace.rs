//! Causal per-event tracing: bounded ring of sampled stage-span trees.
//!
//! A [`Tracer`] decides — from the fleet-global sequence number alone —
//! whether an event is sampled (`seq % sample_every == 0`), hands out a
//! [`TraceBuilder`] for sampled events, and keeps the most recent completed
//! [`Trace`]s in a bounded ring. The sampling gate never takes a lock: an
//! unsampled event costs one `Option` branch plus one modulo. Only trace
//! *completion* (one per `sample_every` events) touches the ring mutex.
//!
//! Because the sampling decision is a pure function of the sequence number,
//! the *set* of sampled events — and, by the workspace determinism
//! contract, each sampled event's stage-span structure — is identical
//! across `DLACEP_THREADS` and shard counts. [`TraceSnapshot::deterministic_view`]
//! extracts exactly that scheduling-independent subset (stages, causal
//! parents, annotations; no timing), and `tests/trace_determinism.rs`
//! enforces it. Span timestamps are monotonic nanoseconds since the
//! tracer's epoch and are exempt, as all timing is.
//!
//! [`TraceSnapshot::chrome_trace_json`] exports the ring in the Chrome
//! trace-event format, loadable in `chrome://tracing` / Perfetto.

use crate::journal::FieldValue;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Environment variable holding the sampling period: `DLACEP_TRACE_SAMPLE=N`
/// samples one trace per `N` fleet-global sequence numbers. Unset, `0`, or
/// unparsable disables tracing entirely.
pub const TRACE_SAMPLE_ENV: &str = "DLACEP_TRACE_SAMPLE";

/// Default capacity of the completed-trace ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 512;

/// One completed stage span within a trace: a named pipeline stage with
/// monotonic start/end nanoseconds, an optional causal parent (an index
/// into the owning trace's span list), and ordered annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Stage name, e.g. `"ingest"`, `"mark"`, `"cep"`, `"emit"`.
    pub stage: String,
    /// Index of the parent span within the same trace (`None` for roots).
    pub parent: Option<u32>,
    /// Nanoseconds since the tracer epoch (timing — determinism-exempt).
    pub start_nanos: u64,
    /// End of the span; equals `start_nanos` for instant events.
    pub end_nanos: u64,
    /// Ordered key/value annotations (part of the deterministic view).
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceSpan {
    /// Span duration in nanoseconds (0 for instants / unfinished spans).
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// A completed trace: every stage span one sampled event passed through,
/// in span-creation order (parents always precede children).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The fleet-global sequence number of the traced event.
    pub trace_id: u64,
    pub spans: Vec<TraceSpan>,
}

struct Ring {
    traces: VecDeque<Trace>,
    capacity: usize,
    dropped: u64,
}

struct TracerCore {
    epoch: Instant,
    sample_every: u64,
    ring: Mutex<Ring>,
}

/// Cheap cloneable handle on the trace ring; `Tracer::disabled()` handles
/// make every operation a single branch. Share one tracer across the
/// registries of a fleet so trace ids (fleet-global seqs) land in one ring.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerCore>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_every", &self.sample_every())
            .finish()
    }
}

impl Tracer {
    /// A tracer that samples nothing (what disabled registries hold).
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer sampling one trace per `sample_every` sequence numbers,
    /// retaining the most recent `capacity` completed traces.
    /// `sample_every == 0` yields a disabled tracer.
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        if sample_every == 0 {
            return Tracer(None);
        }
        Tracer(Some(Arc::new(TracerCore {
            epoch: Instant::now(),
            sample_every,
            ring: Mutex::new(Ring {
                traces: VecDeque::with_capacity(capacity.clamp(1, 4096)),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        })))
    }

    /// Build from [`TRACE_SAMPLE_ENV`]: unset, `0`, or unparsable disables.
    pub fn from_env(capacity: usize) -> Self {
        let sample_every = std::env::var(TRACE_SAMPLE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        Tracer::new(sample_every, capacity)
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The sampling period (0 when disabled).
    pub fn sample_every(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sample_every)
    }

    /// Whether the event with fleet-global sequence `seq` is sampled. Pure
    /// function of `seq` and the period — identical across threads/shards.
    #[inline]
    pub fn sampled(&self, seq: u64) -> bool {
        match &self.0 {
            Some(core) => seq.is_multiple_of(core.sample_every),
            None => false,
        }
    }

    /// Start a trace for `seq` if it is sampled.
    #[inline]
    pub fn begin(&self, seq: u64) -> Option<TraceBuilder> {
        match &self.0 {
            Some(core) if seq.is_multiple_of(core.sample_every) => Some(TraceBuilder {
                core: Arc::clone(core),
                trace: Trace {
                    trace_id: seq,
                    spans: Vec::with_capacity(8),
                },
            }),
            _ => None,
        }
    }

    /// Monotonic nanoseconds since the tracer epoch (0 when disabled).
    /// Useful for measuring work on pool threads and recording it later
    /// via [`TraceBuilder::span_at`].
    pub fn now_nanos(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| {
            u64::try_from(c.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    fn push(&self, trace: Trace) {
        if let Some(core) = &self.0 {
            let mut ring = core.ring.lock().unwrap();
            if ring.traces.len() == ring.capacity {
                ring.traces.pop_front();
                ring.dropped += 1;
            }
            ring.traces.push_back(trace);
        }
    }

    /// Copy out the ring of completed traces.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.0 {
            None => TraceSnapshot::default(),
            Some(core) => {
                let ring = core.ring.lock().unwrap();
                TraceSnapshot {
                    sample_every: core.sample_every,
                    dropped: ring.dropped,
                    traces: ring.traces.iter().cloned().collect(),
                }
            }
        }
    }
}

/// In-flight trace for one sampled event. Owned single-threaded by the
/// runtime driving the event; spans are appended in creation order and the
/// whole tree lands in the ring atomically on [`TraceBuilder::finish`].
pub struct TraceBuilder {
    core: Arc<TracerCore>,
    trace: Trace,
}

impl TraceBuilder {
    /// The fleet-global sequence number this trace follows.
    pub fn trace_id(&self) -> u64 {
        self.trace.trace_id
    }

    /// Monotonic nanoseconds since the tracer epoch.
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.core.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Open a stage span starting now; returns its index for
    /// [`end`](Self::end) / [`annotate`](Self::annotate) / child linkage.
    pub fn start(&mut self, stage: &str, parent: Option<u32>) -> u32 {
        let now = self.now_nanos();
        self.push_span(stage, parent, now, now)
    }

    /// Close span `idx` now. Idempotent enough for the single-threaded
    /// owner: the last call wins.
    pub fn end(&mut self, idx: u32) {
        let now = self.now_nanos();
        if let Some(span) = self.trace.spans.get_mut(idx as usize) {
            span.end_nanos = now;
        }
    }

    /// Record a completed span with explicit bounds (for work measured on
    /// pool threads via [`Tracer::now_nanos`] and attached after the join).
    pub fn span_at(
        &mut self,
        stage: &str,
        parent: Option<u32>,
        start_nanos: u64,
        end_nanos: u64,
    ) -> u32 {
        self.push_span(stage, parent, start_nanos, end_nanos)
    }

    /// Record a zero-duration instant event (mode flips, retrain verdicts).
    pub fn instant(&mut self, stage: &str, parent: Option<u32>) -> u32 {
        let now = self.now_nanos();
        self.push_span(stage, parent, now, now)
    }

    /// Attach an annotation to span `idx`. Annotations are part of the
    /// deterministic view — only record values that are pure functions of
    /// workload and config.
    pub fn annotate(&mut self, idx: u32, key: &str, value: FieldValue) {
        if let Some(span) = self.trace.spans.get_mut(idx as usize) {
            span.fields.push((key.to_string(), value));
        }
    }

    /// Complete the trace and publish it to the tracer ring.
    pub fn finish(self) {
        let core = Arc::clone(&self.core);
        Tracer(Some(core)).push(self.trace);
    }

    fn push_span(
        &mut self,
        stage: &str,
        parent: Option<u32>,
        start_nanos: u64,
        end_nanos: u64,
    ) -> u32 {
        let idx = self.trace.spans.len() as u32;
        self.trace.spans.push(TraceSpan {
            stage: stage.to_string(),
            parent,
            start_nanos,
            end_nanos,
            fields: Vec::new(),
        });
        idx
    }
}

/// Point-in-time copy of the completed-trace ring.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// The sampling period the tracer ran with (0 when disabled).
    pub sample_every: u64,
    /// Traces evicted by ring wraparound.
    pub dropped: u64,
    /// Surviving traces, completion order (oldest first).
    pub traces: Vec<Trace>,
}

impl TraceSnapshot {
    /// The scheduling-independent projection: one line per span, traces
    /// sorted by id, spans in creation order, timing stripped. Two runs of
    /// the same workload under different `DLACEP_THREADS` / shard counts
    /// must produce byte-identical views (ring eviction aside — size the
    /// ring to the workload when comparing).
    pub fn deterministic_view(&self) -> Vec<String> {
        let mut traces: Vec<&Trace> = self.traces.iter().collect();
        traces.sort_by_key(|t| t.trace_id);
        let mut out = Vec::new();
        for t in traces {
            for span in &t.spans {
                let mut line = format!("{} {}", t.trace_id, span.stage);
                match span.parent {
                    Some(p) => line.push_str(&format!(" parent={p}")),
                    None => line.push_str(" parent=-"),
                }
                for (k, v) in &span.fields {
                    line.push_str(&format!(" {k}={v}"));
                }
                out.push(line);
            }
        }
        out
    }

    /// Export as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// object form), loadable in `chrome://tracing` and Perfetto. Each
    /// trace renders as one `tid` row of complete (`ph:"X"`) events;
    /// timestamps are microseconds since the tracer epoch.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for t in &self.traces {
            for (idx, span) in t.spans.iter().enumerate() {
                if !first {
                    out.push(',');
                }
                first = false;
                let ts = span.start_nanos as f64 / 1_000.0;
                let dur = span.duration_nanos() as f64 / 1_000.0;
                out.push_str(&format!(
                    "{{\"name\":{},\"cat\":\"dlacep\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"span\":{idx}",
                    json_string(&span.stage),
                    t.trace_id,
                ));
                if let Some(p) = span.parent {
                    out.push_str(&format!(",\"parent\":{p}"));
                }
                for (k, v) in &span.fields {
                    out.push_str(&format!(",{}:{}", json_string(k), json_field(v)));
                }
                out.push_str("}}");
            }
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string into a JSON string literal (quotes included). Public so
/// downstream telemetry endpoints can hand-roll JSON without a serializer
/// dependency.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render one journal [`FieldValue`] as a JSON value.
pub fn json_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::I64(n) => n.to_string(),
        FieldValue::F64(f) if f.is_finite() => f.to_string(),
        FieldValue::F64(f) => json_string(&f.to_string()),
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::Str(s) => json_string(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_a_pure_function_of_seq() {
        let t = Tracer::new(10, 16);
        assert!(t.sampled(0));
        assert!(t.sampled(10));
        assert!(!t.sampled(7));
        assert!(t.begin(7).is_none());
        assert!(t.begin(20).is_some());
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.sampled(0));
        assert!(t.begin(0).is_none());
        assert_eq!(t.now_nanos(), 0);
        assert_eq!(t.snapshot(), TraceSnapshot::default());
        assert!(!Tracer::new(0, 16).is_enabled(), "period 0 disables");
    }

    #[test]
    fn builder_links_spans_and_publishes_on_finish() {
        let t = Tracer::new(1, 16);
        let mut b = t.begin(5).unwrap();
        let root = b.start("ingest", None);
        let mark = b.start("mark", Some(root));
        b.annotate(mark, "path", "f32".into());
        b.end(mark);
        b.end(root);
        assert!(t.snapshot().traces.is_empty(), "unpublished until finish");
        b.finish();
        let snap = t.snapshot();
        assert_eq!(snap.traces.len(), 1);
        let trace = &snap.traces[0];
        assert_eq!(trace.trace_id, 5);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[1].fields[0].1, FieldValue::Str("f32".into()));
        assert!(trace.spans[0].end_nanos >= trace.spans[0].start_nanos);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_dropped() {
        let t = Tracer::new(1, 2);
        for seq in 0..5u64 {
            t.begin(seq).unwrap().finish();
        }
        let snap = t.snapshot();
        assert_eq!(snap.dropped, 3);
        assert_eq!(
            snap.traces.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn deterministic_view_sorts_by_id_and_strips_timing() {
        let t = Tracer::new(1, 16);
        for seq in [9u64, 3u64] {
            let mut b = t.begin(seq).unwrap();
            let root = b.start("ingest", None);
            b.annotate(root, "window", 2u64.into());
            b.end(root);
            b.finish();
        }
        assert_eq!(
            t.snapshot().deterministic_view(),
            vec![
                "3 ingest parent=- window=2".to_string(),
                "9 ingest parent=- window=2".to_string(),
            ]
        );
    }

    #[test]
    fn chrome_export_is_wellformed_json() {
        let t = Tracer::new(1, 16);
        let mut b = t.begin(0).unwrap();
        let root = b.start("ingest", None);
        let child = b.start("cep\"quoted", Some(root));
        b.annotate(child, "note", "a\\b\nc".into());
        b.end(child);
        b.end(root);
        b.finish();
        let json = t.snapshot().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cep\\\"quoted\""));
        assert!(json.contains("\"a\\\\b\\nc\""));
        // Balanced braces/brackets outside string literals ⇒ parseable
        // shape; exactness is covered by serde_json round-trip in the
        // workspace tests.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn env_parse_rejects_garbage() {
        // from_env reads the process environment; exercise the parse path
        // through Tracer::new semantics instead of mutating global env.
        assert!(!Tracer::new(0, 8).is_enabled());
        assert!(Tracer::new(1, 8).is_enabled());
        assert_eq!(Tracer::new(3, 8).sample_every(), 3);
    }
}
