//! Point-in-time JSON-serializable view of a registry, with diffing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::journal::{FieldValue, JournalSnapshot};
use crate::metrics::bucket_upper;

/// Frozen histogram contents. Only non-empty buckets are kept, as
/// `(bucket_index, count)` pairs in ascending index order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u32, u64)>,
    /// Most recent `(trace_id, value)` exemplar attached via
    /// [`Histogram::record_traced`](crate::Histogram::record_traced) — a
    /// pointer from the aggregate into the sampled trace ring. Timing
    /// data: exempt from the determinism contract.
    pub exemplar: Option<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) as the inclusive upper bound
    /// of the bucket where the cumulative count crosses `q * count`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(index, count) in &self.buckets {
            cumulative += count;
            if cumulative >= target {
                return bucket_upper(index as usize);
            }
        }
        bucket_upper(self.buckets.last().map_or(0, |&(i, _)| i as usize))
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn diff(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let base: BTreeMap<u32, u64> = baseline.buckets.iter().copied().collect();
        let buckets = self
            .buckets
            .iter()
            .map(|&(i, c)| (i, c.saturating_sub(base.get(&i).copied().unwrap_or(0))))
            .filter(|&(_, c)| c > 0)
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            buckets,
            exemplar: self.exemplar,
        }
    }
}

/// Full registry state at one instant: counters, gauges, histograms, and the
/// journal ring. Serializable to JSON for `results/` artifacts, renderable
/// as Prometheus text via [`render_prometheus`](crate::render_prometheus).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub journal: JournalSnapshot,
}

impl MetricsSnapshot {
    /// Delta since `baseline`, taken from the same registry: counter and
    /// histogram values are subtracted (metrics absent from the baseline
    /// keep their full value), gauges keep their latest value, and the
    /// journal retains only entries recorded after the baseline was taken.
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| {
                let base = baseline.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(base))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let diffed = match baseline.histograms.get(name) {
                    Some(base) => h.diff(base),
                    None => h.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        let entries = self
            .journal
            .entries
            .iter()
            .filter(|e| e.seq >= baseline.journal.next_seq)
            .cloned()
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            journal: JournalSnapshot {
                next_seq: self.journal.next_seq,
                dropped: self
                    .journal
                    .dropped
                    .saturating_sub(baseline.journal.dropped),
                entries,
            },
        }
    }

    /// The deterministic subset of this snapshot: counter values plus
    /// journal `(kind, fields)` pairs in record order, excluding any metric
    /// or journal kind starting with one of `exclude_prefixes` (used to
    /// strip the scheduling-dependent `pool.` namespace) and all timing
    /// data (histograms, gauges, timestamps, sequence numbers).
    pub fn deterministic_view(&self, exclude_prefixes: &[&str]) -> DeterministicView {
        let excluded = |name: &str| exclude_prefixes.iter().any(|p| name.starts_with(p));
        DeterministicView {
            counters: self
                .counters
                .iter()
                .filter(|(name, _)| !excluded(name))
                .map(|(name, &v)| (name.clone(), v))
                .collect(),
            journal: self
                .journal
                .entries
                .iter()
                .filter(|e| !excluded(&e.kind))
                .map(|e| (e.kind.clone(), e.fields.clone()))
                .collect(),
        }
    }
}

/// Scheduling-independent projection of a snapshot; two runs that differ
/// only in thread count must produce equal views (see the determinism
/// contract in DESIGN.md).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeterministicView {
    pub counters: BTreeMap<String, u64>,
    pub journal: Vec<(String, Vec<(String, FieldValue)>)>,
}
