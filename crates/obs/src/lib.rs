//! `dlacep-obs` — zero-dependency observability substrate for the DLACEP
//! reproduction. Built on `std` only (the workspace is offline; `tracing` /
//! `prometheus` are unavailable), it provides:
//!
//! - a **metrics registry** ([`Registry`]) issuing lock-free [`Counter`],
//!   [`Gauge`], and log2-bucket [`Histogram`] handles. Registration locks a
//!   map once; updates are single relaxed atomics. A *disabled* registry
//!   issues inert handles whose updates compile to one `Option` branch.
//! - **spans** ([`Span`]): RAII wall-time guards recording elapsed
//!   nanoseconds into a histogram per pipeline stage
//!   (`registry.span("cep.extract")`).
//! - a **structured journal** ([`Journal`]): a bounded ring buffer of typed
//!   runtime events (breaker trips, drift verdicts, mode transitions,
//!   partial-match sheds, pool queue-depth samples) with monotonic
//!   timestamps.
//! - **exposition**: a JSON-serializable [`MetricsSnapshot`] with
//!   [`diff`](MetricsSnapshot::diff)ing, and Prometheus text format via
//!   [`render_prometheus`].
//!
//! # Determinism contract
//!
//! Counter values and journal `(kind, fields)` sequences outside the
//! `pool.` namespace are pure functions of the workload and config — never
//! of `DLACEP_THREADS` or scheduling. Timing data (histograms, gauges,
//! `at_nanos`, `seq` after `pool.` filtering) is exempt.
//! [`MetricsSnapshot::deterministic_view`] extracts exactly the covered
//! subset; `tests/obs_determinism.rs` in the workspace root enforces it.

mod journal;
mod metrics;
mod prom;
mod snapshot;
mod trace;

pub use journal::{FieldValue, Journal, JournalEntry, JournalSnapshot, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{bucket_index, bucket_upper, Counter, Gauge, Histogram, Span, HISTOGRAM_BUCKETS};
pub use prom::{
    counter_name, prometheus_name, render_prometheus, render_prometheus_sharded,
    render_prometheus_with_labels,
};
pub use snapshot::{DeterministicView, HistogramSnapshot, MetricsSnapshot};
pub use trace::{
    json_field, json_string, Trace, TraceBuilder, TraceSnapshot, TraceSpan, Tracer,
    DEFAULT_TRACE_CAPACITY, TRACE_SAMPLE_ENV,
};

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};

use metrics::HistogramCore;

/// Environment variable consulted by [`global`]: set `DLACEP_OBS=0` (or
/// `off`/`false`) to disable the process-wide registry, turning every
/// instrumentation site into a near-no-op.
pub const OBS_ENV: &str = "DLACEP_OBS";

#[derive(Default)]
struct Maps {
    counters: BTreeMap<String, Arc<std::sync::atomic::AtomicU64>>,
    gauges: BTreeMap<String, Arc<std::sync::atomic::AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

/// Metrics registry: the factory for counters/gauges/histograms/spans and
/// the owner of the event journal. Share it as an `Arc<Registry>`; handle
/// lookup by name is mutex-guarded but handles themselves update lock-free.
pub struct Registry {
    enabled: bool,
    maps: Mutex<Maps>,
    journal: Journal,
    tracer: Tracer,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Registry {
    /// An enabled registry with the default journal capacity.
    pub fn enabled() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An enabled registry with an explicit journal ring capacity. The
    /// tracer is taken from the environment ([`TRACE_SAMPLE_ENV`]) —
    /// disabled unless `DLACEP_TRACE_SAMPLE` is a positive integer.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self::with_tracer(capacity, Tracer::from_env(DEFAULT_TRACE_CAPACITY))
    }

    /// An enabled registry with an explicit tracer. A fleet of per-shard
    /// registries shares one tracer this way, so traces keyed by the
    /// fleet-global sequence land in a single ring.
    pub fn with_tracer(journal_capacity: usize, tracer: Tracer) -> Self {
        Registry {
            enabled: true,
            maps: Mutex::new(Maps::default()),
            journal: Journal::with_capacity(journal_capacity),
            tracer,
        }
    }

    /// A disabled registry: every handle it issues is inert and spans never
    /// read the clock.
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            maps: Mutex::new(Maps::default()),
            journal: Journal::disabled(),
            tracer: Tracer::disabled(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Look up (or create) the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::disabled();
        }
        let mut maps = self.maps.lock().unwrap();
        let cell = maps
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(std::sync::atomic::AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Look up (or create) the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::disabled();
        }
        let mut maps = self.maps.lock().unwrap();
        let cell = maps
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(std::sync::atomic::AtomicU64::new(f64::to_bits(0.0))));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Look up (or create) the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::disabled();
        }
        let mut maps = self.maps.lock().unwrap();
        let core = maps
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new()));
        Histogram(Some(Arc::clone(core)))
    }

    /// Start a one-off wall-time span recording into the histogram `name`.
    /// Hot paths should hold a [`Histogram`] handle and call
    /// [`Histogram::span`] instead to skip the registry lookup.
    pub fn span(&self, name: &str) -> Span {
        self.histogram(name).span()
    }

    /// A cloneable handle on this registry's journal.
    pub fn journal(&self) -> Journal {
        self.journal.clone()
    }

    /// A cloneable handle on this registry's tracer (disabled unless the
    /// registry was built with one or `DLACEP_TRACE_SAMPLE` is set).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Append a journal event (convenience for [`Journal::record`]).
    pub fn record(&self, kind: &str, fields: &[(&str, FieldValue)]) {
        self.journal.record(kind, fields);
    }

    /// Freeze the registry into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let maps = self.maps.lock().unwrap();
        let counters = maps
            .counters
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = maps
            .gauges
            .iter()
            .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect();
        let histograms = maps
            .histograms
            .iter()
            .map(|(name, core)| {
                let buckets: Vec<(u32, u64)> = core
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (i as u32, b.load(Ordering::Relaxed)))
                    .filter(|&(_, c)| c > 0)
                    .collect();
                (
                    name.clone(),
                    HistogramSnapshot {
                        count: core.count.load(Ordering::Relaxed),
                        sum: core.sum.load(Ordering::Relaxed),
                        buckets,
                        exemplar: core.exemplar(),
                    },
                )
            })
            .collect();
        drop(maps);
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            journal: self.journal.snapshot(),
        }
    }

    /// Render the current state as Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::enabled()
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry, used by instrumentation sites with no config
/// plumbing of their own (the ambient kernel pool, trainers). Enabled
/// unless `DLACEP_OBS` is set to `0`, `off`, or `false`. Components that
/// need an isolated registry (tests, the determinism suite) construct their
/// own [`Registry`] and inject it via the various `set_obs` hooks instead.
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| {
        let disabled = std::env::var(OBS_ENV)
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "0" || v == "off" || v == "false"
            })
            .unwrap_or(false);
        Arc::new(if disabled {
            Registry::disabled()
        } else {
            Registry::enabled()
        })
    }))
}

/// Install the global registry explicitly (wins over the environment if it
/// runs before the first [`global`] lookup). Returns `false` if a global
/// registry was already installed, in which case it stays in place.
pub fn install_global(registry: Arc<Registry>) -> bool {
    GLOBAL.set(registry).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_issues_working_handles() {
        let reg = Registry::enabled();
        let c = reg.counter("test.counter");
        c.inc();
        c.add(2);
        reg.gauge("test.gauge").set(1.25);
        reg.histogram("test.hist").record(5);
        reg.record("evt", &[("k", 7u64.into())]);

        let snap = reg.snapshot();
        assert_eq!(snap.counters["test.counter"], 3);
        assert_eq!(snap.gauges["test.gauge"], 1.25);
        assert_eq!(snap.histograms["test.hist"].count, 1);
        assert_eq!(snap.journal.entries.len(), 1);
        assert_eq!(snap.journal.entries[0].kind, "evt");
    }

    #[test]
    fn same_name_shares_storage() {
        let reg = Registry::enabled();
        reg.counter("shared").inc();
        reg.counter("shared").inc();
        assert_eq!(reg.snapshot().counters["shared"], 2);
    }

    #[test]
    fn disabled_registry_issues_inert_handles_and_empty_snapshots() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        reg.counter("c").inc();
        reg.gauge("g").set(1.0);
        reg.histogram("h").record(1);
        drop(reg.span("s"));
        reg.record("evt", &[]);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.journal.entries.is_empty());
    }

    #[test]
    fn span_records_into_histogram() {
        let reg = Registry::enabled();
        let h = reg.histogram("stage.nanos");
        {
            let _span = h.span();
            std::hint::black_box(1 + 1);
        }
        drop(reg.span("stage.nanos"));
        assert_eq!(h.count(), 2);
    }
}
