//! Lock-free metric primitives: counters, gauges, and log2 histograms.
//!
//! Handles returned by the [`Registry`](crate::Registry) are cheap clones of
//! an `Arc` around atomic storage. Registration (name → handle lookup) takes
//! a mutex, but every hot-path update — `inc`, `add`, `set`, `record` — is a
//! single relaxed atomic RMW. A handle issued by a *disabled* registry holds
//! `None` and every update compiles down to one branch on an `Option`
//! discriminant: no atomics, no clock reads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of histogram buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. bucket 0 = `{0}`, bucket `i` = `[2^(i-1), 2^i - 1]` for
/// `1 <= i <= 64` (bucket 64 tops out at `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value (its bit length).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, used as the Prometheus `le` label and
/// as the quantile estimate for samples landing in that bucket.
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that ignores every update (what disabled registries issue).
    pub fn disabled() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Last-value-wins gauge storing an `f64` as its bit pattern.
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    pub fn disabled() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
    /// Trace id of the most recent exemplar-carrying sample, stored as
    /// `trace_id + 1` so 0 means "no exemplar yet". Advisory: the pair of
    /// atomics is not read/written atomically together, which is fine for
    /// a debugging pointer from a histogram to a sampled trace.
    pub(crate) exemplar_trace: AtomicU64,
    pub(crate) exemplar_value: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
        }
    }

    pub(crate) fn exemplar(&self) -> Option<(u64, u64)> {
        let tagged = self.exemplar_trace.load(Ordering::Relaxed);
        if tagged == 0 {
            None
        } else {
            Some((tagged - 1, self.exemplar_value.load(Ordering::Relaxed)))
        }
    }
}

/// Fixed-bucket log2 histogram. Values are `u64` (the span machinery records
/// elapsed nanoseconds); bucket boundaries are powers of two, so `record` is
/// a `leading_zeros` plus three relaxed atomic adds.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A histogram that ignores every update (what disabled registries
    /// issue). [`Histogram::span`] on a disabled histogram never reads the
    /// clock.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// [`record`](Self::record), additionally attaching the sample as the
    /// histogram's exemplar when `trace_id` is `Some` — a live pointer from
    /// the aggregate to one sampled trace exhibiting it (last write wins).
    #[inline]
    pub fn record_traced(&self, value: u64, trace_id: Option<u64>) {
        self.record(value);
        if let (Some(core), Some(id)) = (&self.0, trace_id) {
            core.exemplar_value.store(value, Ordering::Relaxed);
            core.exemplar_trace
                .store(id.saturating_add(1), Ordering::Relaxed);
        }
    }

    /// The most recent exemplar as `(trace_id, value)`, if any sample was
    /// recorded via [`record_traced`](Self::record_traced).
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        self.0.as_ref().and_then(|c| c.exemplar())
    }

    /// Start a wall-time span; elapsed nanoseconds are recorded into this
    /// histogram when the returned guard drops. Disabled histograms skip the
    /// clock read entirely.
    #[inline]
    pub fn span(&self) -> Span {
        Span {
            inner: self
                .0
                .as_ref()
                .map(|core| (Arc::clone(core), Instant::now())),
        }
    }

    /// Total recorded samples (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded samples (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// RAII wall-time span. Created by [`Histogram::span`] (hot paths, reusing a
/// held handle) or [`Registry::span`](crate::Registry::span) (one-off);
/// records elapsed nanoseconds into the backing histogram on drop.
#[derive(Debug)]
pub struct Span {
    inner: Option<(Arc<HistogramCore>, Instant)>,
}

impl Span {
    /// A span that records nothing (issued by disabled registries).
    pub fn disabled() -> Self {
        Span { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((core, start)) = self.inner.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            core.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(nanos, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_covers_index() {
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(
                bucket_index(bucket_upper(i)),
                i,
                "upper bound of bucket {i}"
            );
        }
    }

    #[test]
    fn exemplar_tracks_last_traced_sample() {
        let reg = crate::Registry::enabled();
        let h = reg.histogram("stage.nanos");
        assert_eq!(h.exemplar(), None);
        h.record(5);
        assert_eq!(h.exemplar(), None, "untraced samples leave no exemplar");
        h.record_traced(7, Some(40));
        h.record_traced(9, None);
        assert_eq!(h.exemplar(), Some((40, 7)), "None trace id keeps prior");
        h.record_traced(11, Some(80));
        assert_eq!(h.exemplar(), Some((80, 11)), "last traced sample wins");
        assert_eq!(h.count(), 4);
        let dis = Histogram::disabled();
        dis.record_traced(1, Some(1));
        assert_eq!(dis.exemplar(), None);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::disabled();
        h.record(10);
        drop(h.span());
        assert_eq!(h.count(), 0);
    }
}
