//! Bounded structured event journal.
//!
//! A fixed-capacity ring buffer of `(seq, timestamp, kind, fields)` entries
//! for discrete runtime events: breaker trips, drift verdicts, mode
//! transitions, partial-match sheds, pool queue-depth samples. When the ring
//! is full the oldest entry is evicted and a `dropped` counter keeps the
//! loss visible. Timestamps are nanoseconds since the registry's epoch
//! (monotonic, `Instant`-based) and are the *only* nondeterministic part of
//! an entry: sequence numbers, kinds, and fields must be identical across
//! `DLACEP_THREADS` settings for everything outside the `pool.` namespace.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Default ring capacity used by [`Registry::enabled`](crate::Registry::enabled).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// A single typed field value attached to a journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(v as f64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event in the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Monotonic sequence number, never reused; survives ring eviction.
    pub seq: u64,
    /// Nanoseconds since the registry epoch (timing — exempt from the
    /// determinism contract).
    pub at_nanos: u64,
    /// Event kind, e.g. `"mode"`, `"breaker"`, `"drift"`, `"shed"`.
    pub kind: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

#[derive(Debug)]
struct JournalState {
    ring: VecDeque<JournalEntry>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

#[derive(Debug)]
pub(crate) struct JournalCore {
    epoch: Instant,
    state: Mutex<JournalState>,
}

/// Cheap cloneable handle on the journal ring. Handles from a disabled
/// registry hold `None`, and [`Journal::record`] is a single branch.
#[derive(Clone, Debug, Default)]
pub struct Journal(pub(crate) Option<Arc<JournalCore>>);

impl Journal {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Journal(Some(Arc::new(JournalCore {
            epoch: Instant::now(),
            state: Mutex::new(JournalState {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
            }),
        })))
    }

    /// A journal that ignores every record (what disabled registries issue).
    pub fn disabled() -> Self {
        Journal(None)
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Append an event. The oldest entry is evicted (and counted as
    /// dropped) once the ring is at capacity.
    pub fn record(&self, kind: &str, fields: &[(&str, FieldValue)]) {
        let Some(core) = &self.0 else { return };
        let at_nanos = u64::try_from(core.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut state = core.state.lock().unwrap();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.ring.len() == state.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(JournalEntry {
            seq,
            at_nanos,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Sequence number the next entry will receive (== total entries ever
    /// recorded). Cheap — no ring copy; `0` when disabled. Checkpoints use
    /// this as a journal watermark so recovered runs can be compared to
    /// uninterrupted ones from the same point.
    pub fn next_seq(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(core) => core.state.lock().unwrap().next_seq,
        }
    }

    /// Copy out the current ring contents.
    pub fn snapshot(&self) -> JournalSnapshot {
        match &self.0 {
            None => JournalSnapshot::default(),
            Some(core) => {
                let state = core.state.lock().unwrap();
                JournalSnapshot {
                    next_seq: state.next_seq,
                    dropped: state.dropped,
                    entries: state.ring.iter().cloned().collect(),
                }
            }
        }
    }
}

/// Point-in-time copy of the journal ring.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JournalSnapshot {
    /// Sequence number the *next* entry will receive (== total entries ever
    /// recorded).
    pub next_seq: u64,
    /// Entries evicted by ring wraparound.
    pub dropped: u64,
    /// Surviving entries, oldest first.
    pub entries: Vec<JournalEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_evicts_oldest_and_counts_dropped() {
        let j = Journal::with_capacity(3);
        for i in 0..5u64 {
            j.record("tick", &[("i", i.into())]);
        }
        let snap = j.snapshot();
        assert_eq!(snap.next_seq, 5);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.entries.len(), 3);
        assert_eq!(
            snap.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest entries evicted first"
        );
        assert_eq!(
            snap.entries[0].fields,
            vec![("i".to_string(), FieldValue::U64(2))]
        );
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::disabled();
        j.record("tick", &[]);
        assert_eq!(j.snapshot(), JournalSnapshot::default());
    }
}
