//! Prometheus text exposition (format version 0.0.4), built from a
//! [`MetricsSnapshot`] with no external dependencies.

use crate::metrics::bucket_upper;
use crate::snapshot::MetricsSnapshot;

/// Sanitize a dotted metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing the exporter namespace:
/// `cep.partials_created` → `dlacep_cep_partials_created`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("dlacep_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render the snapshot as Prometheus text format. Counters, gauges, and
/// histograms are emitted in name order with `# TYPE` headers; histogram
/// buckets are cumulative with power-of-two `le` bounds (empty buckets are
/// skipped; `+Inf` always present). The journal is not exposed here — it is
/// part of the JSON snapshot only.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} counter\n{pname} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} gauge\n{pname} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        let mut cumulative = 0u64;
        for &(index, count) in &hist.buckets {
            cumulative += count;
            let le = bucket_upper(index as usize);
            out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{pname}_bucket{{le=\"+Inf\"}} {count}\n{pname}_sum {sum}\n{pname}_count {count}\n",
            count = hist.count,
            sum = hist.sum,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_into_prometheus_grammar() {
        assert_eq!(
            prometheus_name("cep.partials_created"),
            "dlacep_cep_partials_created"
        );
        assert_eq!(
            prometheus_name("pool.queue-depth"),
            "dlacep_pool_queue_depth"
        );
    }
}
