//! Prometheus text exposition (format version 0.0.4), built from a
//! [`MetricsSnapshot`] with no external dependencies.

use crate::metrics::bucket_upper;
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeSet;

/// Sanitize a dotted metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing the exporter namespace:
/// `cep.partials_created` → `dlacep_cep_partials_created`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("dlacep_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format (`\` → `\\`, `"` → `\"`,
/// newline → `\n`).
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Render `labels` plus optional extra pairs as a `{k="v",…}` block; empty
/// input renders as the empty string.
fn label_block(pairs: &[(&str, &str)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Render the snapshot as Prometheus text format. Counters, gauges, and
/// histograms are emitted in name order with `# TYPE` headers; histogram
/// buckets are cumulative with power-of-two `le` bounds (empty buckets are
/// skipped; `+Inf` always present). The journal is not exposed here — it is
/// part of the JSON snapshot only.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    render_prometheus_with_labels(snapshot, &[])
}

/// [`render_prometheus`] with a constant label set attached to every
/// series, e.g. `&[("shard", "3")]` for one shard of a sharded fleet.
/// Histogram buckets merge the labels with their `le` bound.
pub fn render_prometheus_with_labels(
    snapshot: &MetricsSnapshot,
    labels: &[(&str, &str)],
) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let pname = prometheus_name(name);
        let lb = label_block(labels);
        out.push_str(&format!("# TYPE {pname} counter\n{pname}{lb} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let pname = prometheus_name(name);
        let lb = label_block(labels);
        out.push_str(&format!("# TYPE {pname} gauge\n{pname}{lb} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        push_histogram_series(&mut out, &pname, labels, hist);
    }
    out
}

/// Render one snapshot per shard as a single merged scrape: each metric
/// name appears once with its `# TYPE` header, followed by one series per
/// shard labeled `{label_key="<shard label>"}` — the exposition-format
/// shape scrapers expect for a partitioned exporter (a repeated `# TYPE`
/// for the same name, as naive per-shard concatenation would produce, is
/// malformed).
pub fn render_prometheus_sharded(label_key: &str, shards: &[(String, MetricsSnapshot)]) -> String {
    let mut out = String::new();

    let counter_names: BTreeSet<&String> =
        shards.iter().flat_map(|(_, s)| s.counters.keys()).collect();
    for name in counter_names {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} counter\n"));
        for (label, snap) in shards {
            if let Some(value) = snap.counters.get(name) {
                let lb = label_block(&[(label_key, label.as_str())]);
                out.push_str(&format!("{pname}{lb} {value}\n"));
            }
        }
    }

    let gauge_names: BTreeSet<&String> = shards.iter().flat_map(|(_, s)| s.gauges.keys()).collect();
    for name in gauge_names {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} gauge\n"));
        for (label, snap) in shards {
            if let Some(value) = snap.gauges.get(name) {
                let lb = label_block(&[(label_key, label.as_str())]);
                out.push_str(&format!("{pname}{lb} {value}\n"));
            }
        }
    }

    let hist_names: BTreeSet<&String> = shards
        .iter()
        .flat_map(|(_, s)| s.histograms.keys())
        .collect();
    for name in hist_names {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} histogram\n"));
        for (label, snap) in shards {
            if let Some(hist) = snap.histograms.get(name) {
                push_histogram_series(&mut out, &pname, &[(label_key, label.as_str())], hist);
            }
        }
    }
    out
}

fn push_histogram_series(
    out: &mut String,
    pname: &str,
    labels: &[(&str, &str)],
    hist: &crate::snapshot::HistogramSnapshot,
) {
    let lb = label_block(labels);
    let mut cumulative = 0u64;
    for &(index, count) in &hist.buckets {
        cumulative += count;
        let le = bucket_upper(index as usize);
        let mut pairs: Vec<(&str, &str)> = labels.to_vec();
        let le_str = le.to_string();
        pairs.push(("le", le_str.as_str()));
        out.push_str(&format!(
            "{pname}_bucket{} {cumulative}\n",
            label_block(&pairs)
        ));
    }
    let mut inf_pairs: Vec<(&str, &str)> = labels.to_vec();
    inf_pairs.push(("le", "+Inf"));
    out.push_str(&format!(
        "{pname}_bucket{} {count}\n{pname}_sum{lb} {sum}\n{pname}_count{lb} {count}\n",
        label_block(&inf_pairs),
        count = hist.count,
        sum = hist.sum,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn names_are_sanitized_into_prometheus_grammar() {
        assert_eq!(
            prometheus_name("cep.partials_created"),
            "dlacep_cep_partials_created"
        );
        assert_eq!(
            prometheus_name("pool.queue-depth"),
            "dlacep_pool_queue_depth"
        );
    }

    #[test]
    fn labels_attach_to_every_series() {
        let reg = Registry::enabled();
        reg.counter("serve.events_routed").add(7);
        reg.histogram("serve.batch_nanos").record(100);
        let text = render_prometheus_with_labels(&reg.snapshot(), &[("shard", "3")]);
        assert!(text.contains("dlacep_serve_events_routed{shard=\"3\"} 7"));
        assert!(text.contains("dlacep_serve_batch_nanos_bucket{shard=\"3\",le=\""));
        assert!(text.contains("dlacep_serve_batch_nanos_count{shard=\"3\"} 1"));
        // The unlabeled renderer is the empty-label special case.
        let plain = render_prometheus(&reg.snapshot());
        assert!(plain.contains("dlacep_serve_events_routed 7"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            label_block(&[("k", "a\"b\\c\nd")]),
            "{k=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn sharded_render_emits_one_type_header_per_metric() {
        let a = Registry::enabled();
        a.counter("serve.events_routed").add(3);
        let b = Registry::enabled();
        b.counter("serve.events_routed").add(5);
        b.counter("serve.only_on_b").inc();
        let text = render_prometheus_sharded(
            "shard",
            &[
                ("0".to_string(), a.snapshot()),
                ("1".to_string(), b.snapshot()),
            ],
        );
        assert_eq!(
            text.matches("# TYPE dlacep_serve_events_routed counter")
                .count(),
            1,
            "one TYPE header even with two shards:\n{text}"
        );
        assert!(text.contains("dlacep_serve_events_routed{shard=\"0\"} 3"));
        assert!(text.contains("dlacep_serve_events_routed{shard=\"1\"} 5"));
        assert!(text.contains("dlacep_serve_only_on_b{shard=\"1\"} 1"));
    }
}
