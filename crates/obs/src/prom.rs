//! Prometheus text exposition (format version 0.0.4), built from a
//! [`MetricsSnapshot`] with no external dependencies.

use crate::metrics::bucket_upper;
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeSet;

/// Sanitize a dotted metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing the exporter namespace:
/// `cep.partials_created` → `dlacep_cep_partials_created`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("dlacep_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Counter sample name per naming conventions: `_total`-suffixed, unless
/// the sanitized name already carries the suffix.
pub fn counter_name(name: &str) -> String {
    let pname = prometheus_name(name);
    if pname.ends_with("_total") {
        pname
    } else {
        format!("{pname}_total")
    }
}

/// Escape a `# HELP` docstring per the exposition format (`\` → `\\`,
/// newline → `\n`; quotes are legal in help text).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Emit the `# HELP` + `# TYPE` header pair for one metric family. The
/// registry keys metrics by dotted name only, so help text is synthesized
/// from the raw name — enough for scrapers that require the header's
/// presence, and stable for golden tests.
fn push_header(out: &mut String, pname: &str, kind: &str, raw_name: &str) {
    out.push_str(&format!(
        "# HELP {pname} DLACEP {kind} `{}`.\n# TYPE {pname} {kind}\n",
        escape_help(raw_name)
    ));
}

/// Emit a histogram's exemplar — a pointer from the aggregate to one
/// sampled trace — as a comment line. Plain `#` comments (not HELP/TYPE)
/// are ignored by text-format parsers, so this is scrape-safe.
fn push_exemplar(out: &mut String, pname: &str, lb: &str, exemplar: Option<(u64, u64)>) {
    if let Some((trace_id, value)) = exemplar {
        out.push_str(&format!(
            "# EXEMPLAR {pname}{lb} trace_id={trace_id} value={value}\n"
        ));
    }
}

/// Escape a label value per the exposition format (`\` → `\\`, `"` → `\"`,
/// newline → `\n`).
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Render `labels` plus optional extra pairs as a `{k="v",…}` block; empty
/// input renders as the empty string.
fn label_block(pairs: &[(&str, &str)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Render the snapshot as Prometheus text format. Counters, gauges, and
/// histograms are emitted in name order with `# HELP`/`# TYPE` headers;
/// counters take the conventional `_total` suffix; histogram buckets are
/// cumulative with power-of-two `le` bounds (empty buckets are skipped;
/// `+Inf` always present) and carry their exemplar, when one exists, as a
/// trailing `# EXEMPLAR` comment. The journal is not exposed here — it is
/// part of the JSON snapshot only.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    render_prometheus_with_labels(snapshot, &[])
}

/// [`render_prometheus`] with a constant label set attached to every
/// series, e.g. `&[("shard", "3")]` for one shard of a sharded fleet.
/// Histogram buckets merge the labels with their `le` bound.
pub fn render_prometheus_with_labels(
    snapshot: &MetricsSnapshot,
    labels: &[(&str, &str)],
) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let pname = counter_name(name);
        let lb = label_block(labels);
        push_header(&mut out, &pname, "counter", name);
        out.push_str(&format!("{pname}{lb} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let pname = prometheus_name(name);
        let lb = label_block(labels);
        push_header(&mut out, &pname, "gauge", name);
        out.push_str(&format!("{pname}{lb} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let pname = prometheus_name(name);
        push_header(&mut out, &pname, "histogram", name);
        push_histogram_series(&mut out, &pname, labels, hist);
        push_exemplar(&mut out, &pname, &label_block(labels), hist.exemplar);
    }
    out
}

/// Render one snapshot per shard as a single merged scrape: each metric
/// name appears once with its `# TYPE` header, followed by one series per
/// shard labeled `{label_key="<shard label>"}` — the exposition-format
/// shape scrapers expect for a partitioned exporter (a repeated `# TYPE`
/// for the same name, as naive per-shard concatenation would produce, is
/// malformed).
pub fn render_prometheus_sharded(label_key: &str, shards: &[(String, MetricsSnapshot)]) -> String {
    let mut out = String::new();

    let counter_names: BTreeSet<&String> =
        shards.iter().flat_map(|(_, s)| s.counters.keys()).collect();
    for name in counter_names {
        let pname = counter_name(name);
        push_header(&mut out, &pname, "counter", name);
        for (label, snap) in shards {
            if let Some(value) = snap.counters.get(name) {
                let lb = label_block(&[(label_key, label.as_str())]);
                out.push_str(&format!("{pname}{lb} {value}\n"));
            }
        }
    }

    let gauge_names: BTreeSet<&String> = shards.iter().flat_map(|(_, s)| s.gauges.keys()).collect();
    for name in gauge_names {
        let pname = prometheus_name(name);
        push_header(&mut out, &pname, "gauge", name);
        for (label, snap) in shards {
            if let Some(value) = snap.gauges.get(name) {
                let lb = label_block(&[(label_key, label.as_str())]);
                out.push_str(&format!("{pname}{lb} {value}\n"));
            }
        }
    }

    let hist_names: BTreeSet<&String> = shards
        .iter()
        .flat_map(|(_, s)| s.histograms.keys())
        .collect();
    for name in hist_names {
        let pname = prometheus_name(name);
        push_header(&mut out, &pname, "histogram", name);
        for (label, snap) in shards {
            if let Some(hist) = snap.histograms.get(name) {
                let labels = [(label_key, label.as_str())];
                push_histogram_series(&mut out, &pname, &labels, hist);
                push_exemplar(&mut out, &pname, &label_block(&labels), hist.exemplar);
            }
        }
    }
    out
}

fn push_histogram_series(
    out: &mut String,
    pname: &str,
    labels: &[(&str, &str)],
    hist: &crate::snapshot::HistogramSnapshot,
) {
    let lb = label_block(labels);
    let mut cumulative = 0u64;
    for &(index, count) in &hist.buckets {
        cumulative += count;
        let le = bucket_upper(index as usize);
        let mut pairs: Vec<(&str, &str)> = labels.to_vec();
        let le_str = le.to_string();
        pairs.push(("le", le_str.as_str()));
        out.push_str(&format!(
            "{pname}_bucket{} {cumulative}\n",
            label_block(&pairs)
        ));
    }
    let mut inf_pairs: Vec<(&str, &str)> = labels.to_vec();
    inf_pairs.push(("le", "+Inf"));
    out.push_str(&format!(
        "{pname}_bucket{} {count}\n{pname}_sum{lb} {sum}\n{pname}_count{lb} {count}\n",
        label_block(&inf_pairs),
        count = hist.count,
        sum = hist.sum,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn names_are_sanitized_into_prometheus_grammar() {
        assert_eq!(
            prometheus_name("cep.partials_created"),
            "dlacep_cep_partials_created"
        );
        assert_eq!(
            prometheus_name("pool.queue-depth"),
            "dlacep_pool_queue_depth"
        );
    }

    #[test]
    fn labels_attach_to_every_series() {
        let reg = Registry::enabled();
        reg.counter("serve.events_routed").add(7);
        reg.histogram("serve.batch_nanos").record(100);
        let text = render_prometheus_with_labels(&reg.snapshot(), &[("shard", "3")]);
        assert!(text.contains("dlacep_serve_events_routed_total{shard=\"3\"} 7"));
        assert!(text.contains("dlacep_serve_batch_nanos_bucket{shard=\"3\",le=\""));
        assert!(text.contains("dlacep_serve_batch_nanos_count{shard=\"3\"} 1"));
        // The unlabeled renderer is the empty-label special case.
        let plain = render_prometheus(&reg.snapshot());
        assert!(plain.contains("dlacep_serve_events_routed_total 7"));
    }

    #[test]
    fn counters_take_total_suffix_with_help_and_type_headers() {
        let reg = Registry::enabled();
        reg.counter("cep.matches_emitted").add(2);
        // A name already ending in `_total` is not double-suffixed.
        reg.counter("pipeline.events_total").add(9);
        reg.gauge("pool.depth").set(1.5);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains(
            "# HELP dlacep_cep_matches_emitted_total DLACEP counter `cep.matches_emitted`.\n\
             # TYPE dlacep_cep_matches_emitted_total counter\n\
             dlacep_cep_matches_emitted_total 2\n"
        ));
        assert!(text.contains("dlacep_pipeline_events_total 9"));
        assert!(!text.contains("events_total_total"));
        assert!(text.contains("# HELP dlacep_pool_depth DLACEP gauge `pool.depth`.\n"));
        // Every sample line is preceded by headers for its family.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn histogram_exemplar_renders_as_comment() {
        let reg = Registry::enabled();
        let h = reg.histogram("runtime.window_nanos");
        h.record_traced(100, Some(42));
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# EXEMPLAR dlacep_runtime_window_nanos trace_id=42 value=100\n"));
        // Exemplar comments never masquerade as HELP/TYPE directives.
        assert!(!text.contains("# HELP dlacep_runtime_window_nanos trace_id"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            label_block(&[("k", "a\"b\\c\nd")]),
            "{k=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn sharded_render_emits_one_type_header_per_metric() {
        let a = Registry::enabled();
        a.counter("serve.events_routed").add(3);
        let b = Registry::enabled();
        b.counter("serve.events_routed").add(5);
        b.counter("serve.only_on_b").inc();
        let text = render_prometheus_sharded(
            "shard",
            &[
                ("0".to_string(), a.snapshot()),
                ("1".to_string(), b.snapshot()),
            ],
        );
        assert_eq!(
            text.matches("# TYPE dlacep_serve_events_routed_total counter")
                .count(),
            1,
            "one TYPE header even with two shards:\n{text}"
        );
        assert!(text.contains("dlacep_serve_events_routed_total{shard=\"0\"} 3"));
        assert!(text.contains("dlacep_serve_events_routed_total{shard=\"1\"} 5"));
        assert!(text.contains("dlacep_serve_only_on_b_total{shard=\"1\"} 1"));
    }
}
