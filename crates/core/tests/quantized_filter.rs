//! [`QuantizedFilter`] as a drop-in [`Filter`]: agreement with the f32
//! filter it was quantized from inside the full batch pipeline, zero heap
//! allocations per window in steady state, compatibility with the filter
//! guard's score validation, determinism on the parallel batch path, and
//! checkpoint/restore equivalence under the streaming runtime.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::durable::{decode_checkpoint, encode_checkpoint};
use dlacep_core::filter::Filter;
use dlacep_core::runtime::StreamingDlacep;
use dlacep_core::trainer::{train_event_filter, TrainConfig};
use dlacep_core::{
    Dlacep, EventNetFilter, GuardConfig, Parallelism, QuantizedFilter, RuntimeConfig,
};
use dlacep_data::SyntheticConfig;
use dlacep_events::{EventStream, PrimitiveEvent, TypeId, WindowSpec};
use dlacep_obs::Registry;

/// Allocation counter gated per-thread so parallel test threads don't
/// pollute each other's counts. Counting is off unless the current thread
/// explicitly arms it.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ARMED.with(|a| {
            if a.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ARMED.with(|a| {
            if a.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.get())
}

fn seq_pattern(types: &[u32], w: u64) -> Pattern {
    let leaves = types
        .iter()
        .enumerate()
        .map(|(i, &t)| PatternExpr::event(TypeSet::single(TypeId(t)), format!("s{i}")))
        .collect();
    Pattern::new(PatternExpr::Seq(leaves), vec![], WindowSpec::Count(w))
}

/// Train a quick event-network filter and quantize it, returning both plus
/// the held-out evaluation slice.
fn trained_pair() -> (EventNetFilter, QuantizedFilter, Vec<PrimitiveEvent>) {
    let (_, stream) = SyntheticConfig {
        num_events: 8_000,
        ..Default::default()
    }
    .generate();
    let pattern = seq_pattern(&[0, 1], 8);
    let events = stream.events();
    let train = EventStream::from_events(events[..6_000].to_vec()).unwrap();
    let eval = events[6_000..].to_vec();

    let mut cfg = TrainConfig::quick();
    cfg.max_epochs = 8;
    let f32_filter = train_event_filter(&pattern, &train, &cfg).filter;

    let calib: Vec<&[PrimitiveEvent]> = events[..6_000].chunks(16).take(16).collect();
    let quant = QuantizedFilter::quantize(&f32_filter, &calib).unwrap();
    (f32_filter, quant, eval)
}

#[test]
fn quantized_filter_drops_into_pipeline_and_tracks_f32() {
    let (f32_filter, quant, eval) = trained_pair();
    let pattern = seq_pattern(&[0, 1], 8);

    // Window-level mark agreement: int8 arithmetic may flip events whose
    // marginal sits exactly at the decision boundary, but nothing more.
    let (mut agree, mut total) = (0usize, 0usize);
    for w in eval.chunks(16) {
        let a = f32_filter.mark(w);
        let b = quant.mark(w);
        assert_eq!(a.len(), b.len());
        agree += a.iter().zip(&b).filter(|(x, y)| x == y).count();
        total += a.len();
    }
    let rate = agree as f64 / total as f64;
    assert!(rate >= 0.95, "mark agreement {rate} below 95%");

    // Drop-in: the quantized filter drives the same pipeline the f32 one
    // does; §4.4's ID-distance constraint keeps precision at 1.0 either
    // way, so every quantized match must be a true match.
    let truth = dlacep_data::label::ground_truth_matches(&pattern, &eval);
    let dl = Dlacep::builder(pattern.clone(), quant).build().unwrap();
    let report = dl.run(&eval);
    let truth_keys: std::collections::BTreeSet<_> =
        truth.iter().map(|m| m.event_ids.clone()).collect();
    for m in &report.matches {
        assert!(truth_keys.contains(&m.event_ids), "spurious match");
    }

    let dl32 = Dlacep::builder(pattern, f32_filter).build().unwrap();
    let report32 = dl32.run(&eval);
    let delta = report.matches.len().abs_diff(report32.matches.len());
    assert!(
        delta <= 1 + report32.matches.len() / 10,
        "quantized found {} matches vs f32 {}",
        report.matches.len(),
        report32.matches.len()
    );
}

#[test]
fn steady_state_marking_does_not_allocate() {
    let (_, quant, eval) = trained_pair();
    let windows: Vec<&[PrimitiveEvent]> = eval.chunks(16).take(40).collect();

    // Warm-up: grows the arena pool and the output buffer to capacity.
    let mut out = Vec::new();
    for w in &windows {
        quant.mark_into(w, &mut out);
    }

    let allocs = count_allocs(|| {
        for w in &windows {
            quant.mark_into(w, &mut out);
        }
    });
    assert_eq!(allocs, 0, "steady-state mark_into allocated {allocs} times");
}

#[test]
fn guard_validates_quantized_scores_and_obs_counts_quant_windows() {
    let (_, quant, eval) = trained_pair();
    let pattern = seq_pattern(&[0, 1], 8);

    let reg = Arc::new(Registry::enabled());
    let cfg = RuntimeConfig {
        guard: GuardConfig {
            validate_scores: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut rt = StreamingDlacep::builder(pattern, quant)
        .config(cfg)
        .obs(reg.clone())
        .build()
        .unwrap();
    rt.ingest_all(&eval).unwrap();
    let report = rt.finish();

    // Finite int8-path scores must not trip the guard.
    assert!(report.windows_evaluated > 0);
    assert_eq!(report.windows_degraded, 0, "guard degraded on quant scores");

    // The marking counters attribute every window to the int8 path.
    let snap = reg.snapshot();
    let quant_windows = snap.counters.get("runtime.windows_marked_quant");
    assert!(
        quant_windows.is_some_and(|&n| n > 0),
        "no quant windows counted"
    );
    assert_eq!(
        snap.counters.get("runtime.windows_marked_f32"),
        Some(&0),
        "f32 counter must stay zero under a quantized filter"
    );
}

#[test]
fn parallel_batch_path_matches_serial() {
    let (_, quant, eval) = trained_pair();
    let pattern = seq_pattern(&[0, 1], 8);

    let serial = Dlacep::builder(pattern.clone(), quant.clone())
        .build()
        .unwrap();
    let parallel = Dlacep::builder(pattern, quant)
        .parallelism(Parallelism::with_threads(2))
        .build()
        .unwrap();

    let a = serial.run(&eval);
    let b = parallel.run(&eval);
    assert_eq!(
        a.matches, b.matches,
        "parallel marking must be deterministic"
    );
}

#[test]
fn checkpoint_restore_equivalence_with_quantized_filter() {
    let (_, quant, eval) = trained_pair();
    let pattern = seq_pattern(&[0, 1], 8);
    let cfg = RuntimeConfig::default();
    let n = eval.len().min(400);
    let offers = &eval[..n];

    let feed = |rt: &mut StreamingDlacep<QuantizedFilter>, evs: &[PrimitiveEvent]| {
        for ev in evs {
            rt.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
        }
    };

    // Reference: uninterrupted run.
    let mut reference = StreamingDlacep::builder(pattern.clone(), quant.clone())
        .config(cfg)
        .build()
        .unwrap();
    feed(&mut reference, offers);
    let ref_report = reference.finish();

    for split in [0, n / 3, n / 2, n - 1] {
        let mut first = StreamingDlacep::builder(pattern.clone(), quant.clone())
            .config(cfg)
            .build()
            .unwrap();
        feed(&mut first, &offers[..split]);
        let ckpt = first.checkpoint();
        let ckpt = decode_checkpoint(&encode_checkpoint(&ckpt)).expect("codec round-trip");
        drop(first);

        let mut recovered =
            StreamingDlacep::restore(pattern.clone(), quant.clone(), cfg, None, ckpt).unwrap();
        feed(&mut recovered, &offers[split..]);
        let rec_report = recovered.finish();

        assert_eq!(rec_report.matches, ref_report.matches, "split at {split}");
        assert_eq!(rec_report.windows_evaluated, ref_report.windows_evaluated);
        assert_eq!(rec_report.windows_degraded, ref_report.windows_degraded);
    }
}
