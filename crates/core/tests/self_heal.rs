//! The self-healing loop, end to end: a filter silently dies mid-stream,
//! the drift monitor fails open, the retrain supervisor trains a candidate
//! on the replay buffer, the validation gate scores it against exact-CEP
//! labels on a held-out slice, and a passing candidate is hot-swapped in —
//! returning the runtime to `Filtering` with zero dropped windows and a
//! match sequence identical to exact CEP.
//!
//! Fault injection rides on [`ChaosTrainer`]: training-job panics are
//! retried with exponential backoff, gate-flapping candidates are rejected
//! without ever being deployed, and exhausted retries land in a permanent
//! degraded verdict. Checkpoints taken mid-retrain (signal raised, attempt
//! scheduled) and post-swap (model lineage, rebaselined monitor) must
//! restore into runs indistinguishable from the uninterrupted reference.

use std::sync::Arc;

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::runtime::{RuntimeConfig, StreamingDlacep};
use dlacep_core::{
    ChaosTrainer, DriftConfig, Filter, ModeCause, ModelTrainer, OracleFilter, PassthroughFilter,
    QuantizedRetrainer, RetrainConfig, RetrainState, RuntimeMode, RuntimeReport, TrainConfig,
    TrainFault,
};
use dlacep_events::{AttrValue, PrimitiveEvent, TypeId, WindowSpec};
use dlacep_obs::{FieldValue, Registry};

const A: TypeId = TypeId(0);
const B: TypeId = TypeId(1);

fn seq_ab(w: u64) -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(A), "a"),
            PatternExpr::event(TypeSet::single(B), "b"),
        ]),
        vec![],
        WindowSpec::Count(w),
    )
}

type Offer = (TypeId, u64, Vec<AttrValue>);

/// A/B every fourth event with filler in between: every assembler window
/// contains matches, so the oracle marking rate is stable and non-zero.
fn offers(n: usize) -> Vec<Offer> {
    (0..n)
        .map(|i| {
            let t = match i % 4 {
                0 => A,
                2 => B,
                _ => TypeId(2),
            };
            (t, i as u64, vec![i as f64])
        })
        .collect()
}

/// A filter that silently dies: correct (oracle) marks for windows starting
/// before `silent_from`, all-false marks after. The failure is keyed to
/// window *content* (first event id), so replay after a restore draws the
/// same behaviour — and it is exactly the failure the breaker cannot see
/// (no panic, no NaN), leaving drift detection as the only tripwire.
enum HealFilter {
    Broken {
        oracle: OracleFilter,
        silent_from: u64,
    },
    Healed(OracleFilter),
}

impl HealFilter {
    fn broken(p: &Pattern, silent_from: u64) -> Self {
        Self::Broken {
            oracle: OracleFilter::new(p.clone()),
            silent_from,
        }
    }
}

impl Filter for HealFilter {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        match self {
            Self::Broken {
                oracle,
                silent_from,
            } => {
                let silent = window.first().is_some_and(|e| e.id.0 >= *silent_from);
                if silent {
                    vec![false; window.len()]
                } else {
                    oracle.mark(window)
                }
            }
            Self::Healed(oracle) => oracle.mark(window),
        }
    }

    fn name(&self) -> &'static str {
        "heal-test"
    }
}

/// Trainer producing a healed (oracle-equivalent) model; encode/decode is a
/// one-byte tag so registry persistence and checkpoint redeploy round-trip.
struct HealTrainer {
    pattern: Pattern,
}

impl ModelTrainer<HealFilter> for HealTrainer {
    fn retrain(
        &self,
        pattern: &Pattern,
        windows: &[Vec<PrimitiveEvent>],
        _attempt: u64,
    ) -> Result<HealFilter, String> {
        assert!(!windows.is_empty(), "supervisor must pass a train slice");
        Ok(HealFilter::Healed(OracleFilter::new(pattern.clone())))
    }

    fn encode(&self, filter: &HealFilter) -> Vec<u8> {
        match filter {
            HealFilter::Broken { .. } => vec![0],
            HealFilter::Healed(_) => vec![1],
        }
    }

    fn decode(&self, bytes: &[u8]) -> Result<HealFilter, String> {
        match bytes {
            [1] => Ok(HealFilter::Healed(OracleFilter::new(self.pattern.clone()))),
            other => Err(format!("unknown model encoding: {other:?}")),
        }
    }
}

/// Drift detection tuned so the *first* silent window trips the signal —
/// the drifted verdict covers that window too (fail-open marks everything),
/// so no match is ever lost to the dying filter.
fn drift_cfg() -> DriftConfig {
    DriftConfig {
        baseline_rate: 0.5,
        tolerance: 0.8,
        alpha: 1.0,
        patience: 1,
    }
}

fn retrain_cfg() -> RetrainConfig {
    RetrainConfig {
        backoff_base_windows: 2,
        max_retries: 3,
        replay_windows: 16,
        holdout_every: 4,
        ..Default::default()
    }
}

/// The exact-CEP reference: everything marked, nothing approximated.
fn exact_reference(p: &Pattern, input: &[Offer]) -> RuntimeReport {
    let mut rt = StreamingDlacep::new(p.clone(), PassthroughFilter).unwrap();
    for (t, ts, attrs) in input {
        rt.ingest(*t, *ts, attrs.clone()).unwrap();
    }
    rt.finish()
}

fn ingest_all(rt: &mut StreamingDlacep<HealFilter>, input: &[Offer]) {
    for (t, ts, attrs) in input {
        rt.ingest(*t, *ts, attrs.clone()).unwrap();
    }
}

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.snapshot().counters.get(name).copied().unwrap_or(0)
}

/// All `(phase, reason)` pairs of "retrain" journal entries, in order.
fn retrain_phases(reg: &Registry) -> Vec<(String, String)> {
    reg.journal()
        .snapshot()
        .entries
        .into_iter()
        .filter(|e| e.kind == "retrain")
        .map(|e| {
            let get = |k: &str| {
                e.fields
                    .iter()
                    .find(|(n, _)| n == k)
                    .map(|(_, v)| match v {
                        FieldValue::Str(s) => s.clone(),
                        other => other.to_string(),
                    })
                    .unwrap_or_default()
            };
            (get("phase"), get("reason"))
        })
        .collect()
}

fn heal_runtime(
    p: &Pattern,
    silent_from: u64,
    trainer: Box<dyn ModelTrainer<HealFilter>>,
    retrain: RetrainConfig,
    reg: &Arc<Registry>,
) -> StreamingDlacep<HealFilter> {
    StreamingDlacep::builder(p.clone(), HealFilter::broken(p, silent_from))
        .config(RuntimeConfig {
            drift: Some(drift_cfg()),
            ..Default::default()
        })
        .retrain(retrain, trainer)
        .obs(reg.clone())
        .build()
        .unwrap()
}

#[test]
fn drift_retrain_swap_returns_to_filtering_with_exact_matches() {
    let p = seq_ab(6);
    let input = offers(240);
    let expected = exact_reference(&p, &input);

    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let trainer = Box::new(HealTrainer { pattern: p.clone() });
    let mut rt = heal_runtime(&p, 120, trainer, retrain_cfg(), &reg);
    ingest_all(&mut rt, &input);
    assert_eq!(
        rt.mode(),
        RuntimeMode::Filtering,
        "a validated swap must re-admit the filter"
    );
    assert_eq!(rt.active_model_version(), Some(1));
    let report = rt.finish();

    // Zero dropped windows, zero lost matches: the degraded interval failed
    // open, so the approximate run equals exact CEP bit for bit.
    assert_eq!(report.matches, expected.matches);
    assert_eq!(report.windows_evaluated, expected.windows_evaluated);
    assert_eq!(report.events_admitted, expected.events_admitted);

    // Mode timeline: Start → Drift (degrade) → Swapped (healed).
    let causes: Vec<(RuntimeMode, ModeCause)> =
        report.timeline.iter().map(|t| (t.mode, t.cause)).collect();
    assert_eq!(
        causes,
        vec![
            (RuntimeMode::Filtering, ModeCause::Start),
            (RuntimeMode::DegradedExact, ModeCause::Drift),
            (RuntimeMode::Filtering, ModeCause::Swapped),
        ]
    );

    let retrain = report.retrain.expect("retrain supervisor was configured");
    assert_eq!(retrain.state, RetrainState::Idle);
    assert_eq!(retrain.active_version, Some(1));
    assert_eq!(retrain.models_accepted, 1);

    assert_eq!(counter(&reg, "runtime.retrain_started"), 1);
    assert_eq!(counter(&reg, "runtime.retrain_validated"), 1);
    assert_eq!(counter(&reg, "runtime.retrain_swapped"), 1);
    assert_eq!(counter(&reg, "runtime.retrain_rejected"), 0);
    assert_eq!(counter(&reg, "runtime.retrain_retried"), 0);
    let phases: Vec<String> = retrain_phases(&reg).into_iter().map(|(p, _)| p).collect();
    assert_eq!(phases, ["scheduled", "validated", "swapped"]);
}

#[test]
fn gate_failing_candidate_is_never_swapped_in() {
    let p = seq_ab(6);
    let input = offers(240);
    let expected = exact_reference(&p, &input);

    // Attempt 0 produces a flaky candidate that marks nothing — it must die
    // at the validation gate (recall 0 on a holdout that contains matches).
    // Attempt 1 trains clean.
    let pf = p.clone();
    let trainer = ChaosTrainer::new(Box::new(HealTrainer { pattern: p.clone() }))
        .fault_at(0, TrainFault::Flaky)
        .flaky_candidates(move || HealFilter::broken(&pf, 0));
    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut rt = heal_runtime(&p, 120, Box::new(trainer), retrain_cfg(), &reg);
    ingest_all(&mut rt, &input);

    assert_eq!(rt.mode(), RuntimeMode::Filtering);
    let report = rt.finish();
    assert_eq!(report.matches, expected.matches);

    // Exactly one swap, and it is not the gate-failing candidate: version 1
    // is the accepted model of attempt 1.
    assert_eq!(counter(&reg, "runtime.retrain_rejected"), 1);
    assert_eq!(counter(&reg, "runtime.retrain_swapped"), 1);
    let retrain = report.retrain.unwrap();
    assert_eq!(retrain.models_accepted, 1);
    let phases = retrain_phases(&reg);
    let rejected: Vec<&(String, String)> = phases.iter().filter(|(p, _)| p == "rejected").collect();
    assert_eq!(rejected.len(), 1);
    assert!(
        rejected[0].1.contains("gate failed"),
        "rejection must cite the gate: {:?}",
        rejected[0].1
    );
    // The rejection precedes the swap in the journal: the bad candidate was
    // never deployed.
    let order: Vec<&str> = phases.iter().map(|(p, _)| p.as_str()).collect();
    assert_eq!(
        order,
        ["scheduled", "rejected", "scheduled", "validated", "swapped"]
    );
}

#[test]
fn training_panic_and_failure_are_retried_with_backoff() {
    let p = seq_ab(6);
    let input = offers(240);
    let expected = exact_reference(&p, &input);

    // Attempt 0 panics inside the training job, attempt 1 returns an error,
    // attempt 2 trains clean. The panic is fenced inside the pool task and
    // must surface as a retryable rejection, not tear the runtime down.
    let trainer = ChaosTrainer::new(Box::new(HealTrainer { pattern: p.clone() }))
        .fault_at(0, TrainFault::Panic)
        .fault_at(1, TrainFault::Fail);
    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut rt = heal_runtime(&p, 120, Box::new(trainer), retrain_cfg(), &reg);
    ingest_all(&mut rt, &input);

    assert_eq!(rt.mode(), RuntimeMode::Filtering);
    let report = rt.finish();
    assert_eq!(report.matches, expected.matches);
    assert_eq!(counter(&reg, "runtime.retrain_retried"), 2);
    assert_eq!(counter(&reg, "runtime.retrain_swapped"), 1);

    // Backoff doubles per retry: attempts run at signal+2, +4 later, +8
    // later. Read the schedule back from the journal.
    let entries: Vec<(u64, u64)> = reg
        .journal()
        .snapshot()
        .entries
        .iter()
        .filter(|e| e.kind == "retrain")
        .filter(|e| {
            e.fields
                .iter()
                .any(|(n, v)| n == "phase" && matches!(v, FieldValue::Str(s) if s == "scheduled"))
        })
        .map(|e| {
            let num = |k: &str| {
                e.fields
                    .iter()
                    .find_map(|(n, v)| match (n.as_str() == k, v) {
                        (true, FieldValue::U64(x)) => Some(*x),
                        _ => None,
                    })
                    .unwrap()
            };
            (num("window"), num("resume_at"))
        })
        .collect();
    assert_eq!(entries.len(), 3, "one schedule per attempt");
    assert_eq!(
        entries[0].1 - entries[0].0,
        2,
        "first attempt: base backoff"
    );
    assert_eq!(entries[1].1 - entries[1].0, 4, "second attempt: base << 1");
    assert_eq!(entries[2].1 - entries[2].0, 8, "third attempt: base << 2");

    let reasons: Vec<String> = retrain_phases(&reg)
        .into_iter()
        .filter(|(p, _)| p == "rejected")
        .map(|(_, r)| r)
        .collect();
    assert_eq!(reasons.len(), 2);
    assert!(reasons[0].contains("panicked"), "got: {:?}", reasons[0]);
    assert!(
        reasons[1].contains("injected training failure"),
        "got: {:?}",
        reasons[1]
    );
}

#[test]
fn exhausted_retries_degrade_permanently_without_losing_matches() {
    let p = seq_ab(6);
    let input = offers(240);
    let expected = exact_reference(&p, &input);

    let trainer = ChaosTrainer::new(Box::new(HealTrainer { pattern: p.clone() }))
        .fault_from(0, TrainFault::Fail);
    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let cfg = RetrainConfig {
        max_retries: 1,
        ..retrain_cfg()
    };
    let mut rt = heal_runtime(&p, 120, Box::new(trainer), cfg, &reg);
    ingest_all(&mut rt, &input);

    // Every retry failed: the runtime stays failed-open, permanently.
    assert_eq!(rt.mode(), RuntimeMode::DegradedExact);
    assert_eq!(rt.retrain_state(), Some(RetrainState::Exhausted));
    assert_eq!(rt.active_model_version(), None);
    let report = rt.finish();
    assert_eq!(
        report.matches, expected.matches,
        "permanent degrade is exact CEP: full recall"
    );
    assert_eq!(counter(&reg, "runtime.retrain_swapped"), 0);
    assert_eq!(counter(&reg, "runtime.retrain_rejected"), 2);
    let phases = retrain_phases(&reg);
    let last = phases.last().unwrap();
    assert_eq!(last.0, "exhausted");
    assert!(
        reg.journal().snapshot().entries.iter().any(|e| {
            e.kind == "retrain"
                && e.fields.iter().any(|(n, v)| {
                    n == "verdict" && matches!(v, FieldValue::Str(s) if s == "permanent-degraded")
                })
        }),
        "the permanent-degraded verdict must land in the journal"
    );

    // A manual rebaseline is the documented way out.
    rt_rebaseline_clears_exhaustion(&p);
}

fn rt_rebaseline_clears_exhaustion(p: &Pattern) {
    let trainer = ChaosTrainer::new(Box::new(HealTrainer { pattern: p.clone() }))
        .fault_from(0, TrainFault::Fail);
    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let cfg = RetrainConfig {
        max_retries: 0,
        ..retrain_cfg()
    };
    let mut rt = heal_runtime(p, 120, Box::new(trainer), cfg, &reg);
    ingest_all(&mut rt, &offers(240));
    assert_eq!(rt.retrain_state(), Some(RetrainState::Exhausted));
    rt.rebaseline(0.5);
    assert_eq!(rt.retrain_state(), Some(RetrainState::Idle));
    assert_eq!(rt.mode(), RuntimeMode::Filtering);
}

/// Satellite 6: a checkpoint taken while `retrain_signaled` is pending
/// (supervisor mid-backoff) must restore with the signal and the scheduled
/// attempt intact, and the restored run must be indistinguishable from the
/// uninterrupted one.
#[test]
fn mid_retrain_checkpoint_restores_signal_and_schedule() {
    let p = seq_ab(6);
    let input = offers(240);

    // Uninterrupted reference with the same trainer/config.
    let mk_trainer = || Box::new(HealTrainer { pattern: p.clone() });
    let ref_reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut reference = heal_runtime(&p, 120, mk_trainer(), retrain_cfg(), &ref_reg);
    ingest_all(&mut reference, &input);
    let ref_report = reference.finish();

    // Interrupted run: capture the checkpoint at the first ingest where the
    // supervisor is waiting on a scheduled attempt (drift signaled, swap
    // not yet executed).
    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut rt = heal_runtime(&p, 120, mk_trainer(), retrain_cfg(), &reg);
    let mut ckpt = None;
    let mut resume_from = 0;
    for (i, (t, ts, attrs)) in input.iter().enumerate() {
        rt.ingest(*t, *ts, attrs.clone()).unwrap();
        if ckpt.is_none() && matches!(rt.retrain_state(), Some(RetrainState::Waiting { .. })) {
            assert!(rt.retrain_signaled(), "waiting implies a pending signal");
            assert_eq!(rt.mode(), RuntimeMode::DegradedExact);
            ckpt = Some(rt.checkpoint());
            resume_from = i + 1;
            break;
        }
    }
    let ckpt = ckpt.expect("the workload must reach a mid-retrain state");
    drop(rt);

    let reg2 = Arc::new(Registry::with_journal_capacity(4096));
    let mut restored = StreamingDlacep::builder(p.clone(), HealFilter::broken(&p, 120))
        .config(RuntimeConfig {
            drift: Some(drift_cfg()),
            ..Default::default()
        })
        .retrain(retrain_cfg(), mk_trainer())
        .obs(reg2.clone())
        .restore(ckpt)
        .unwrap();
    assert!(restored.retrain_signaled(), "signal must survive restore");
    assert!(matches!(
        restored.retrain_state(),
        Some(RetrainState::Waiting { .. })
    ));
    ingest_all(&mut restored, &input[resume_from..]);
    let restored_report = restored.finish();

    assert_eq!(restored_report.matches, ref_report.matches);
    assert_eq!(restored_report.timeline, ref_report.timeline);
    assert_eq!(
        restored_report.windows_evaluated,
        ref_report.windows_evaluated
    );
    assert_eq!(
        restored_report.windows_degraded,
        ref_report.windows_degraded
    );
    let (a, b) = (
        restored_report.retrain.unwrap(),
        ref_report.retrain.unwrap(),
    );
    assert_eq!(a.state, b.state);
    assert_eq!(a.active_version, b.active_version);
    assert_eq!(a.models_accepted, b.models_accepted);
}

/// A checkpoint taken *after* the swap must redeploy the accepted model and
/// re-apply the rebaselined drift monitor — the restored run continues on
/// the healed filter, not the broken constructor argument.
#[test]
fn post_swap_checkpoint_redeploys_the_accepted_model() {
    let p = seq_ab(6);
    let input = offers(240);
    let expected = exact_reference(&p, &input);
    let mk_trainer = || Box::new(HealTrainer { pattern: p.clone() });

    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut rt = heal_runtime(&p, 120, mk_trainer(), retrain_cfg(), &reg);
    let mut ckpt = None;
    let mut resume_from = 0;
    for (i, (t, ts, attrs)) in input.iter().enumerate() {
        rt.ingest(*t, *ts, attrs.clone()).unwrap();
        if ckpt.is_none() && rt.active_model_version() == Some(1) {
            ckpt = Some(rt.checkpoint());
            resume_from = i + 1;
            break;
        }
    }
    let ckpt = ckpt.expect("the workload must reach a post-swap state");
    let ref_report = {
        ingest_all(&mut rt, &input[resume_from..]);
        rt.finish()
    };
    assert_eq!(ref_report.matches, expected.matches);

    // Restore with the *broken* filter as the constructor argument: the
    // checkpointed model lineage must win, or the stream dies again.
    let reg2 = Arc::new(Registry::with_journal_capacity(4096));
    let mut restored = StreamingDlacep::builder(p.clone(), HealFilter::broken(&p, 120))
        .config(RuntimeConfig {
            drift: Some(drift_cfg()),
            ..Default::default()
        })
        .retrain(retrain_cfg(), mk_trainer())
        .obs(reg2.clone())
        .restore(ckpt)
        .unwrap();
    assert_eq!(restored.active_model_version(), Some(1));
    assert_eq!(restored.mode(), RuntimeMode::Filtering);
    ingest_all(&mut restored, &input[resume_from..]);
    let restored_report = restored.finish();

    assert_eq!(restored_report.matches, ref_report.matches);
    assert_eq!(restored_report.timeline, ref_report.timeline);
    assert_eq!(
        restored_report.windows_degraded, ref_report.windows_degraded,
        "a resurrected broken filter would re-degrade; the healed model must not"
    );
    // No second drift signal after the swap: the restored monitor runs on
    // the rebaselined rate, and the healed filter stays in band. (The Drift
    // entry before the swap is checkpointed history, faithfully restored.)
    let swap_at = restored_report
        .timeline
        .iter()
        .find(|t| t.cause == ModeCause::Swapped)
        .expect("swap is part of the restored history")
        .window;
    assert!(
        !restored_report
            .timeline
            .iter()
            .any(|t| t.cause == ModeCause::Drift && t.window > swap_at),
        "restored run must not re-drift: {:?}",
        restored_report.timeline
    );
}

/// The real trainer path: an int8-quantized candidate is trained on the
/// replay buffer, re-calibrated on those windows, validated at the gate,
/// and swapped in — the post-heal stream runs quantized inference.
#[test]
fn quantized_retrainer_heals_with_int8_recalibration() {
    let p = seq_ab(6);
    let input = offers(320);
    let expected = exact_reference(&p, &input);

    // Start from a filter that marks nothing: drift fires on the first
    // window and the supervisor trains a fresh quantized model from the
    // replay buffer alone.
    #[allow(clippy::large_enum_variant)] // test-only; one instance per run
    enum QHeal {
        Silent,
        Quant(dlacep_core::QuantizedFilter),
    }
    impl Filter for QHeal {
        fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
            match self {
                Self::Silent => vec![false; window.len()],
                Self::Quant(q) => q.mark(window),
            }
        }
        fn scores(&self, window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
            match self {
                Self::Silent => None,
                Self::Quant(q) => q.scores(window),
            }
        }
        fn name(&self) -> &'static str {
            "q-heal"
        }
        fn quantized(&self) -> bool {
            matches!(self, Self::Quant(_))
        }
    }
    struct QTrainer(QuantizedRetrainer);
    impl ModelTrainer<QHeal> for QTrainer {
        fn retrain(
            &self,
            pattern: &Pattern,
            windows: &[Vec<PrimitiveEvent>],
            attempt: u64,
        ) -> Result<QHeal, String> {
            self.0.retrain(pattern, windows, attempt).map(QHeal::Quant)
        }
        fn encode(&self, filter: &QHeal) -> Vec<u8> {
            match filter {
                QHeal::Silent => Vec::new(),
                QHeal::Quant(q) => self.0.encode(q),
            }
        }
        fn decode(&self, bytes: &[u8]) -> Result<QHeal, String> {
            self.0.decode(bytes).map(QHeal::Quant)
        }
    }
    let trainer = QTrainer(QuantizedRetrainer {
        train: TrainConfig::quick(),
    });

    let reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut rt = StreamingDlacep::builder(p.clone(), QHeal::Silent)
        .config(RuntimeConfig {
            drift: Some(drift_cfg()),
            ..Default::default()
        })
        .retrain(
            RetrainConfig {
                backoff_base_windows: 8,
                replay_windows: 32,
                holdout_every: 4,
                min_recall: 0.7,
                min_precision: 0.2,
                ..Default::default()
            },
            Box::new(trainer),
        )
        .obs(reg.clone())
        .build()
        .unwrap();
    for (t, ts, attrs) in &input {
        rt.ingest(*t, *ts, attrs.clone()).unwrap();
    }

    assert_eq!(
        rt.mode(),
        RuntimeMode::Filtering,
        "the trained int8 candidate must pass the gate and swap in"
    );
    assert_eq!(rt.active_model_version(), Some(1));
    let report = rt.finish();
    assert_eq!(counter(&reg, "runtime.retrain_swapped"), 1);
    assert!(
        counter(&reg, "runtime.windows_marked_quant") > 0,
        "post-heal inference must run on the quantized path"
    );
    // Recall floor: the degraded prefix failed open, and the gate enforced
    // recall ≥ 0.7 on the holdout, so the run keeps the bulk of the exact
    // matches.
    let kept = report
        .matches
        .iter()
        .filter(|m| expected.matches.contains(m))
        .count();
    assert!(
        kept as f64 >= 0.7 * expected.matches.len() as f64,
        "kept {kept} of {} exact matches",
        expected.matches.len()
    );
}
