//! The crash-point sweep: the durability layer's equivalence proof.
//!
//! One reference run ingests a stream uninterrupted. Then, for **every**
//! durability tick the workload consumes (each byte an fsync makes durable,
//! each metadata operation), a fresh run is killed at exactly that tick —
//! mid-record, mid-checkpoint, mid-rotation, mid-prune — leaving only what
//! a power cut would leave on disk. Recovery restores the newest valid
//! checkpoint, replays the WAL suffix, re-feeds the source from
//! `resume_seq`, and must finish with a match sequence bitwise identical to
//! the reference and an observability journal equal to the reference's
//! suffix from the restored checkpoint's watermark.
//!
//! The sweep runs on a healthy stream and on a fault-injected degraded one
//! (filter panics/I-O faults keyed by window content, so replay draws the
//! same faults), each with out-of-order arrivals under the Drop policy.

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::chaos::{
    out_of_order_timestamps, ChaosFault, ChaosFilter, ChaosTrainer, TrainFault,
};
use dlacep_core::durable::{DurConfig, DurError, DurableDlacep};
use dlacep_core::filter::{Filter, OracleFilter, PassthroughFilter};
use dlacep_core::guard::GuardConfig;
use dlacep_core::retrain::{ModelTrainer, RetrainConfig};
use dlacep_core::runtime::{RuntimeConfig, RuntimeError, RuntimeReport};
use dlacep_core::DriftConfig;
use dlacep_dur::{FailingStore, MemStore, Schedule, Store, WalConfig, WalError};
use dlacep_events::PrimitiveEvent;
use dlacep_events::{AttrValue, OutOfOrderPolicy, TypeId, WindowSpec};
use dlacep_obs::{FieldValue, Registry};
use std::sync::Arc;

const A: TypeId = TypeId(0);
const B: TypeId = TypeId(1);

fn seq_ab(w: u64) -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(A), "a"),
            PatternExpr::event(TypeSet::single(B), "b"),
        ]),
        vec![],
        WindowSpec::Count(w),
    )
}

type Offer = (TypeId, u64, Vec<AttrValue>);

fn offers(n: usize, disorder: f64, seed: u64) -> Vec<Offer> {
    let ts = out_of_order_timestamps(n, disorder, 3, seed);
    (0..n)
        .map(|i| {
            let t = match i % 4 {
                1 => A,
                3 => B,
                _ => TypeId(2),
            };
            (t, ts[i], vec![i as f64])
        })
        .collect()
}

fn dur_config() -> DurConfig {
    DurConfig {
        // Small segments and a short sync cadence: the sweep crosses many
        // rotations, fsync batches, checkpoints, and prunes.
        wal: WalConfig {
            segment_max_bytes: 384,
            sync_every: 4,
        },
        checkpoint_every_events: 12,
        keep_checkpoints: 2,
        keep_models: 2,
    }
}

fn journal_tail(reg: &Registry, from_seq: u64) -> Vec<(String, Vec<(String, FieldValue)>)> {
    reg.journal()
        .snapshot()
        .entries
        .into_iter()
        .filter(|e| e.seq >= from_seq)
        .map(|e| (e.kind, e.fields))
        .collect()
}

fn is_crash(e: &DurError) -> bool {
    matches!(e, DurError::Io(_) | DurError::Wal(WalError::Io(_)))
}

/// Drive the full workload on `store` until completion or injected crash;
/// returns whatever runs to the end, or `None` if the store died.
fn drive<F: Filter, S: Store>(
    dur: &mut DurableDlacep<F, S>,
    input: &[Offer],
    from: usize,
) -> Result<(), DurError> {
    for (t, ts, attrs) in &input[from..] {
        match dur.ingest(*t, *ts, attrs.clone()) {
            Ok(_) => {}
            // Out-of-order rejections are part of the workload under
            // `Reject`; both the original and the recovered run see them.
            Err(DurError::Runtime(RuntimeError::Stream(_))) => {}
            Err(e) => return Err(e),
        }
    }
    dur.checkpoint_now()?;
    Ok(())
}

/// No retrain supervisor: the scenario runs without a trainer.
fn no_trainer<F: Filter>() -> Option<Box<dyn ModelTrainer<F>>> {
    None
}

struct Scenario<F, MkF, MkT>
where
    F: Filter,
    MkF: Fn() -> F,
    MkT: Fn() -> Option<Box<dyn ModelTrainer<F>>>,
{
    pattern: Pattern,
    config: RuntimeConfig,
    mk_filter: MkF,
    mk_trainer: MkT,
    input: Vec<Offer>,
}

impl<F, MkF, MkT> Scenario<F, MkF, MkT>
where
    F: Filter,
    MkF: Fn() -> F,
    MkT: Fn() -> Option<Box<dyn ModelTrainer<F>>>,
{
    /// The uninterrupted run: reference matches, report, and journal.
    fn reference(&self) -> (RuntimeReport, Arc<Registry>) {
        let reg = Arc::new(Registry::with_journal_capacity(8192));
        let mut dur = DurableDlacep::new_with_trainer(
            self.pattern.clone(),
            (self.mk_filter)(),
            self.config,
            dur_config(),
            MemStore::new(),
            Some(reg.clone()),
            (self.mk_trainer)(),
        )
        .unwrap();
        drive(&mut dur, &self.input, 0).expect("reference run must not fail");
        (dur.finish(), reg)
    }

    /// Run the workload on a store that dies at `crash_tick`; return the
    /// durable disk image (or `None` if the workload outlived the tick).
    fn crashed_disk_image(&self, crash_tick: u64) -> Option<MemStore> {
        let store = FailingStore::crash_at(MemStore::new(), crash_tick);
        let reg = Arc::new(Registry::with_journal_capacity(8192));
        let mut dur = DurableDlacep::new_with_trainer(
            self.pattern.clone(),
            (self.mk_filter)(),
            self.config,
            dur_config(),
            store,
            Some(reg),
            (self.mk_trainer)(),
        )
        .expect("opening a fresh store consumes no durability ticks");
        match drive(&mut dur, &self.input, 0) {
            Ok(()) => None,
            Err(e) => {
                assert!(
                    is_crash(&e),
                    "only the injected crash may fail the run: {e}"
                );
                Some(dur.into_store().into_durable())
            }
        }
    }

    /// Total durability ticks of the uncrashed workload.
    fn total_ticks(&self) -> u64 {
        let store = FailingStore::new(MemStore::new(), Schedule::never());
        let reg = Arc::new(Registry::with_journal_capacity(8192));
        let mut dur = DurableDlacep::new_with_trainer(
            self.pattern.clone(),
            (self.mk_filter)(),
            self.config,
            dur_config(),
            store,
            Some(reg),
            (self.mk_trainer)(),
        )
        .unwrap();
        drive(&mut dur, &self.input, 0).unwrap();
        dur.into_store().ticks()
    }

    fn sweep(&self) {
        let (ref_report, ref_reg) = self.reference();
        assert!(
            !ref_report.matches.is_empty(),
            "degenerate scenario: reference found no matches"
        );
        let total = self.total_ticks();
        assert!(total > 100, "workload too small to be a meaningful sweep");

        let mut with_checkpoint = 0u64;
        let mut cold_starts = 0u64;
        for tick in 0..total {
            let Some(disk) = self.crashed_disk_image(tick) else {
                panic!("crash at tick {tick} < total {total} must fire");
            };
            let rec_reg = Arc::new(Registry::with_journal_capacity(8192));
            let (mut rec, report) = DurableDlacep::recover_with_trainer(
                self.pattern.clone(),
                (self.mk_filter)(),
                self.config,
                dur_config(),
                disk,
                Some(rec_reg.clone()),
                (self.mk_trainer)(),
            )
            .unwrap_or_else(|e| panic!("recovery after crash at tick {tick} failed: {e}"));
            match report.checkpoint_seq {
                Some(_) => with_checkpoint += 1,
                None => cold_starts += 1,
            }
            assert!(
                report.resume_seq as usize <= self.input.len(),
                "tick {tick}: resume_seq beyond the source"
            );

            drive(&mut rec, &self.input, report.resume_seq as usize)
                .unwrap_or_else(|e| panic!("recovered run at tick {tick} failed: {e}"));
            let rec_report = rec.finish();

            assert_eq!(
                rec_report.matches, ref_report.matches,
                "tick {tick}: match sequence diverged"
            );
            assert_eq!(
                rec_report.events_admitted, ref_report.events_admitted,
                "tick {tick}"
            );
            assert_eq!(
                rec_report.windows_evaluated, ref_report.windows_evaluated,
                "tick {tick}"
            );
            assert_eq!(
                rec_report.windows_degraded, ref_report.windows_degraded,
                "tick {tick}"
            );
            assert_eq!(rec_report.guard, ref_report.guard, "tick {tick}");
            assert_eq!(rec_report.timeline, ref_report.timeline, "tick {tick}");
            assert_eq!(
                rec_report.extractor_stats, ref_report.extractor_stats,
                "tick {tick}: engine work counters diverged"
            );
            assert_eq!(
                journal_tail(&rec_reg, 0),
                journal_tail(&ref_reg, report.journal_watermark),
                "tick {tick}: journal sequence diverged from the reference suffix"
            );
        }
        assert!(
            with_checkpoint > 0 && cold_starts > 0,
            "sweep must exercise both cold starts ({cold_starts}) and \
             checkpoint restores ({with_checkpoint})"
        );
    }
}

#[test]
fn crash_sweep_healthy_stream() {
    Scenario {
        pattern: seq_ab(6),
        config: RuntimeConfig::default(),
        mk_filter: || PassthroughFilter,
        mk_trainer: no_trainer,
        input: offers(48, 0.0, 5),
    }
    .sweep();
}

#[test]
fn crash_sweep_degraded_fault_injected_stream() {
    let pattern = seq_ab(6);
    let p = pattern.clone();
    Scenario {
        pattern,
        config: RuntimeConfig {
            ooo_policy: OutOfOrderPolicy::Drop,
            guard: GuardConfig {
                fault_threshold: 2,
                cooldown_windows: 3,
                ..Default::default()
            },
            ..Default::default()
        },
        // Faults keyed by window content: the recovered run re-marks
        // replayed windows and must draw exactly the faults the original
        // run drew, breaker trips, degraded windows, recovery probes and
        // all.
        mk_filter: move || {
            ChaosFilter::new(OracleFilter::new(p.clone()))
                .fault_at(6, ChaosFault::Panic)
                .fault_at(12, ChaosFault::Io)
                .fault_every(18, ChaosFault::Panic)
                .key_by_window_start()
        },
        mk_trainer: no_trainer,
        input: offers(48, 0.25, 9),
    }
    .sweep();
}

// ---------------------------------------------------------------------------
// Scenario 3: crash at every tick of an *active retrain* — drift signal,
// backoff schedule, panicked attempt, gate-rejected attempt, validated swap,
// and the registry writes publishing the accepted model. The recovered run
// must replay the supervisor to the identical trajectory.
// ---------------------------------------------------------------------------

/// Silently-dying filter keyed by window content (first event id), so a
/// recovered run re-draws the same drift the original saw.
enum SweepFilter {
    Broken {
        oracle: OracleFilter,
        silent_from: u64,
    },
    Healed(OracleFilter),
}

impl Filter for SweepFilter {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        match self {
            Self::Broken {
                oracle,
                silent_from,
            } => {
                if window.first().is_some_and(|e| e.id.0 >= *silent_from) {
                    vec![false; window.len()]
                } else {
                    oracle.mark(window)
                }
            }
            Self::Healed(oracle) => oracle.mark(window),
        }
    }

    fn name(&self) -> &'static str {
        "sweep-heal"
    }
}

/// Deterministic healer with a one-byte model encoding: the registry and
/// checkpoint redeploy paths both round-trip through it.
struct SweepTrainer {
    pattern: Pattern,
}

impl ModelTrainer<SweepFilter> for SweepTrainer {
    fn retrain(
        &self,
        pattern: &Pattern,
        _windows: &[Vec<PrimitiveEvent>],
        _attempt: u64,
    ) -> Result<SweepFilter, String> {
        Ok(SweepFilter::Healed(OracleFilter::new(pattern.clone())))
    }

    fn encode(&self, filter: &SweepFilter) -> Vec<u8> {
        match filter {
            SweepFilter::Broken { .. } => vec![0],
            SweepFilter::Healed(_) => vec![1],
        }
    }

    fn decode(&self, bytes: &[u8]) -> Result<SweepFilter, String> {
        match bytes {
            [1] => Ok(SweepFilter::Healed(OracleFilter::new(self.pattern.clone()))),
            // A Broken candidate can legitimately pass the gate on a key
            // whose windows hold no matches (nothing to recall, nothing
            // marked — the fleet sweep's quiet key); it must round-trip so
            // recovery can redeploy it.
            [0] => Ok(SweepFilter::Broken {
                oracle: OracleFilter::new(self.pattern.clone()),
                silent_from: 0,
            }),
            other => Err(format!("unknown model encoding: {other:?}")),
        }
    }
}

#[test]
fn crash_sweep_active_retrain_with_registry_writes() {
    let pattern = seq_ab(6);
    let p = pattern.clone();
    let pt = pattern.clone();
    Scenario {
        pattern,
        config: RuntimeConfig {
            // First silent window trips the signal: drift at window 6,
            // attempt 0 (panic) at 7, attempt 1 (gate-flaky) at 9, attempt
            // 2 validates and swaps at 13 — the sweep kills at every
            // durability tick across that whole trajectory, including the
            // registry publish of the accepted model.
            drift: Some(DriftConfig {
                baseline_rate: 0.5,
                tolerance: 0.8,
                alpha: 1.0,
                patience: 1,
            }),
            retrain: Some(RetrainConfig {
                backoff_base_windows: 1,
                max_retries: 3,
                replay_windows: 16,
                holdout_every: 4,
                ..Default::default()
            }),
            ..Default::default()
        },
        mk_filter: move || SweepFilter::Broken {
            oracle: OracleFilter::new(p.clone()),
            silent_from: 36,
        },
        mk_trainer: move || {
            let flaky = pt.clone();
            Some(Box::new(
                ChaosTrainer::new(Box::new(SweepTrainer {
                    pattern: pt.clone(),
                }))
                .fault_at(0, TrainFault::Panic)
                .fault_at(1, TrainFault::Flaky)
                .flaky_candidates(move || SweepFilter::Broken {
                    oracle: OracleFilter::new(flaky.clone()),
                    silent_from: 0,
                }),
            ))
        },
        input: offers(120, 0.0, 7),
    }
    .sweep();
}

// ---------------------------------------------------------------------------
// Scenario 4: the *fleet* sweep. A two-shard `dlacep-serve` fleet carries
// the scenario-3 retrain workload on key 0 (shard 0) interleaved with
// quieter key-1 traffic (shard 1). For every durability tick of every
// shard, the whole fleet is killed with exactly one shard's disk frozen at
// that tick — including ticks that land while key 0's supervisor is
// mid-retrain (drift signalled, attempts panicking/flaky, swap pending) —
// and the recovered fleet, re-fed from `resume_seq`, must finish bitwise
// equal to the uninterrupted reference.
// ---------------------------------------------------------------------------

use dlacep_serve::{
    shard_of, FleetConfig, FleetError, FleetReport, ShardedDlacep, DEFAULT_HASH_SEED,
};

const FLEET_SHARDS: u32 = 2;

/// Key-0 traffic is exactly the scenario-3 stream (types 0..3, so key 0
/// under `ByTypeGroup(4)`), preserving its retrain trajectory event for
/// event; after every fourth key-0 event one key-1 event (types 4..7)
/// rides along on its own timeline.
fn fleet_offers() -> Vec<Offer> {
    let key0 = offers(120, 0.0, 7);
    let mut out = Vec::with_capacity(150);
    let mut j = 0u64;
    for (i, o) in key0.into_iter().enumerate() {
        out.push(o);
        if i % 4 == 3 {
            let t = match j % 4 {
                1 => TypeId(4),
                3 => TypeId(5),
                _ => TypeId(6),
            };
            out.push((t, j, vec![1_000.0 + j as f64]));
            j += 1;
        }
    }
    out
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        shards: FLEET_SHARDS,
        key_extractor: dlacep_events::KeyExtractor::ByTypeGroup(4),
        runtime: RuntimeConfig {
            drift: Some(DriftConfig {
                baseline_rate: 0.5,
                tolerance: 0.8,
                alpha: 1.0,
                patience: 1,
            }),
            retrain: Some(RetrainConfig {
                backoff_base_windows: 1,
                max_retries: 3,
                // Half the scenario-3 ring: the replay buffer is serialized
                // into every shard checkpoint, and checkpoint bytes are
                // durability ticks — i.e. sweep iterations.
                replay_windows: 8,
                holdout_every: 4,
                ..Default::default()
            }),
            ..Default::default()
        },
        wal: WalConfig {
            segment_max_bytes: 384,
            sync_every: 4,
        },
        sync_every_events: 16,
        // Coarser than scenario 3 (12): every fleet checkpoint writes a
        // full per-key state image on *each* shard, so the cadence sets the
        // sweep's tick count (and wall-clock) almost by itself. Four
        // checkpoints still straddle the whole retrain trajectory.
        checkpoint_every_events: 36,
        keep_checkpoints: 2,
        ..FleetConfig::default()
    }
}

type FilterFactory = Arc<dyn Fn() -> SweepFilter + Send + Sync>;
type TrainerFactory = Arc<dyn Fn() -> Option<Box<dyn ModelTrainer<SweepFilter>>> + Send + Sync>;

fn fleet_factories(pattern: &Pattern) -> (FilterFactory, TrainerFactory) {
    let p = pattern.clone();
    let mk_filter: FilterFactory = Arc::new(move || SweepFilter::Broken {
        oracle: OracleFilter::new(p.clone()),
        silent_from: 36,
    });
    let pt = pattern.clone();
    let mk_trainer: TrainerFactory = Arc::new(move || {
        let flaky = pt.clone();
        Some(Box::new(
            ChaosTrainer::new(Box::new(SweepTrainer {
                pattern: pt.clone(),
            }))
            .fault_at(0, TrainFault::Panic)
            .fault_at(1, TrainFault::Flaky)
            .flaky_candidates(move || SweepFilter::Broken {
                oracle: OracleFilter::new(flaky.clone()),
                silent_from: 0,
            }),
        ) as Box<dyn ModelTrainer<SweepFilter>>)
    });
    (mk_filter, mk_trainer)
}

fn drive_fleet<S: Store>(
    fleet: &mut ShardedDlacep<SweepFilter, S>,
    input: &[Offer],
    from: usize,
) -> Result<(), FleetError> {
    for (t, ts, attrs) in &input[from..] {
        fleet.ingest(*t, *ts, attrs.clone())?;
    }
    fleet.checkpoint_now()?;
    Ok(())
}

fn is_fleet_crash(e: &FleetError) -> bool {
    matches!(e, FleetError::Io(_) | FleetError::Wal(WalError::Io(_)))
}

fn assert_fleet_equal(rec: &FleetReport, reference: &FleetReport, ctx: &str) {
    // refeed_skipped legitimately differs: it counts the re-feed itself.
    let mut tr = rec.totals;
    let mut tf = reference.totals;
    tr.refeed_skipped = 0;
    tf.refeed_skipped = 0;
    assert_eq!(tr, tf, "{ctx}: fleet totals diverged");
    assert_eq!(
        rec.keys
            .iter()
            .map(|k| (k.key, k.shard))
            .collect::<Vec<_>>(),
        reference
            .keys
            .iter()
            .map(|k| (k.key, k.shard))
            .collect::<Vec<_>>(),
        "{ctx}: key placement diverged"
    );
    for (kr, kf) in rec.keys.iter().zip(&reference.keys) {
        let c = format!("{ctx}: key {}", kr.key);
        assert_eq!(kr.report.matches, kf.report.matches, "{c}: matches");
        assert_eq!(kr.report.events_admitted, kf.report.events_admitted, "{c}");
        assert_eq!(
            kr.report.windows_evaluated, kf.report.windows_evaluated,
            "{c}"
        );
        assert_eq!(
            kr.report.windows_degraded, kf.report.windows_degraded,
            "{c}"
        );
        assert_eq!(kr.report.guard, kf.report.guard, "{c}: guard");
        assert_eq!(kr.report.timeline, kf.report.timeline, "{c}: timeline");
        assert_eq!(kr.report.final_mode, kf.report.final_mode, "{c}: mode");
        assert_eq!(kr.report.drift_state, kf.report.drift_state, "{c}: drift");
        assert_eq!(
            kr.report.retrain, kf.report.retrain,
            "{c}: retrain trajectory diverged"
        );
        assert_eq!(
            kr.report.extractor_stats, kf.report.extractor_stats,
            "{c}: engine work counters"
        );
    }
}

#[test]
fn fleet_crash_sweep_multi_shard_with_mid_retrain_shard() {
    let pattern = seq_ab(6);
    let input = fleet_offers();
    let (mk_filter, mk_trainer) = fleet_factories(&pattern);
    let hash_seed = FleetConfig::default().hash_seed;
    assert_eq!(hash_seed, DEFAULT_HASH_SEED);
    assert_ne!(
        shard_of(hash_seed, 0, FLEET_SHARDS),
        shard_of(hash_seed, 1, FLEET_SHARDS),
        "the two keys must land on different shards for the sweep to be multi-shard"
    );

    // Uninterrupted reference.
    let reference = {
        let mut fleet = ShardedDlacep::create(
            pattern.clone(),
            fleet_config(),
            mk_filter.clone(),
            mk_trainer.clone(),
            (0..FLEET_SHARDS).map(|_| MemStore::new()).collect(),
        )
        .unwrap();
        drive_fleet(&mut fleet, &input, 0).expect("reference fleet run must not fail");
        fleet.finish()
    };
    let key0 = reference
        .keys
        .iter()
        .find(|k| k.key == 0)
        .expect("key 0 present");
    assert!(
        !key0.report.matches.is_empty(),
        "degenerate fleet scenario: key 0 found no matches"
    );
    let retrain = key0.report.retrain.expect("key 0 runs a supervisor");
    assert!(
        retrain.models_accepted >= 1 && retrain.active_version.is_some(),
        "key 0's reference run must complete a validated swap so the sweep \
         provably kills shards mid-retrain: {retrain:?}"
    );
    assert_eq!(reference.keys.len(), 2, "both keys must carry traffic");

    // Per-shard tick budgets: (a) ticks consumed by `create` alone (its
    // manifest publish), (b) ticks of the full uncrashed workload. `create`
    // consumes its input stores on failure, so the per-tick sweep starts at
    // the first post-create tick; crash-during-create is covered by the
    // stale-manifest.tmp recovery path in dlacep-serve itself.
    let probe = |full: bool| -> Vec<u64> {
        let stores: Vec<FailingStore<MemStore>> = (0..FLEET_SHARDS)
            .map(|_| FailingStore::new(MemStore::new(), Schedule::never()))
            .collect();
        let mut fleet = ShardedDlacep::create(
            pattern.clone(),
            fleet_config(),
            mk_filter.clone(),
            mk_trainer.clone(),
            stores,
        )
        .unwrap();
        if full {
            drive_fleet(&mut fleet, &input, 0).unwrap();
        }
        fleet.into_stores().iter().map(|s| s.ticks()).collect()
    };
    let create_ticks = probe(false);
    let total_ticks = probe(true);

    let mut with_checkpoint = 0u64;
    let mut replay_only = 0u64;
    let mut swept = 0u64;
    for shard in 0..FLEET_SHARDS as usize {
        assert!(
            total_ticks[shard] > create_ticks[shard] + 20,
            "shard {shard}: workload too small to sweep \
             ({} ticks past create)",
            total_ticks[shard] - create_ticks[shard]
        );
        for tick in create_ticks[shard]..total_ticks[shard] {
            // Freeze exactly one shard's disk at `tick`; the other shards'
            // disks stay healthy — a real fleet loses one machine, and
            // recovery still restarts every shard from durable state.
            let stores: Vec<FailingStore<MemStore>> = (0..FLEET_SHARDS as usize)
                .map(|i| {
                    if i == shard {
                        FailingStore::crash_at(MemStore::new(), tick)
                    } else {
                        FailingStore::new(MemStore::new(), Schedule::never())
                    }
                })
                .collect();
            let mut fleet = ShardedDlacep::create(
                pattern.clone(),
                fleet_config(),
                mk_filter.clone(),
                mk_trainer.clone(),
                stores,
            )
            .expect("create consumes only pre-sweep ticks");
            let err = drive_fleet(&mut fleet, &input, 0)
                .expect_err("crash tick within the workload must fire");
            assert!(
                is_fleet_crash(&err),
                "shard {shard} tick {tick}: only the injected crash may fail: {err}"
            );
            let disks: Vec<MemStore> = fleet
                .into_stores()
                .into_iter()
                .map(FailingStore::into_durable)
                .collect();

            let (mut rec, report) = ShardedDlacep::recover(
                pattern.clone(),
                fleet_config(),
                mk_filter.clone(),
                mk_trainer.clone(),
                disks,
            )
            .unwrap_or_else(|e| panic!("shard {shard} tick {tick}: fleet recovery failed: {e}"));
            assert!(
                report.resume_seq >= 1 && report.resume_seq as usize <= input.len() + 1,
                "shard {shard} tick {tick}: resume_seq {} out of range",
                report.resume_seq
            );
            for s in &report.shards {
                if s.checkpoint_seq.is_some() {
                    with_checkpoint += 1;
                } else {
                    replay_only += 1;
                }
            }
            drive_fleet(&mut rec, &input, (report.resume_seq - 1) as usize).unwrap_or_else(|e| {
                panic!("shard {shard} tick {tick}: recovered fleet failed: {e}")
            });
            assert_fleet_equal(
                &rec.finish(),
                &reference,
                &format!("shard {shard} tick {tick}"),
            );
            swept += 1;
        }
    }
    assert!(
        with_checkpoint > 0 && replay_only > 0,
        "fleet sweep must exercise both checkpoint restores ({with_checkpoint}) \
         and WAL-only replays ({replay_only})"
    );
    assert!(swept > 40, "sweep covered only {swept} crash points");
}
