//! Builder-surface contracts: the fluent builders are the one construction
//! path for non-default options. Option order must not matter, the builder
//! must agree byte-for-byte with the direct construction entry points that
//! remain, and invalid option combinations must be rejected at `build()`.

use std::sync::Arc;

use dlacep_cep::{Match, Pattern, PatternExpr, PatternSet, TypeSet};
use dlacep_core::runtime::{RuntimeConfig, StreamingDlacep};
use dlacep_core::{
    AssemblerConfig, Dlacep, DriftConfig, ModelTrainer, OracleFilter, Parallelism,
    PassthroughFilter, RetrainConfig, RuntimeError,
};
use dlacep_events::{EventStream, OutOfOrderPolicy, TypeId, WindowSpec};
use dlacep_obs::{FieldValue, Registry};

const A: TypeId = TypeId(0);
const B: TypeId = TypeId(1);

fn seq_ab(w: u64) -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(A), "a"),
            PatternExpr::event(TypeSet::single(B), "b"),
        ]),
        vec![],
        WindowSpec::Count(w),
    )
}

fn stream(n: usize) -> EventStream {
    let mut s = EventStream::new();
    for i in 0..n {
        let t = match i % 4 {
            0 => A,
            2 => B,
            _ => TypeId(2),
        };
        s.push(t, i as u64, vec![i as f64]);
    }
    s
}

fn journal_kinds_and_fields(reg: &Registry) -> Vec<(String, Vec<(String, FieldValue)>)> {
    reg.journal()
        .snapshot()
        .entries
        .into_iter()
        .map(|e| (e.kind, e.fields))
        .collect()
}

#[test]
fn batch_builder_options_are_order_independent() {
    let p = seq_ab(6);
    let s = stream(160);
    let asm = AssemblerConfig {
        mark_size: 10,
        step_size: 3,
    };

    let reg_a = Arc::new(Registry::enabled());
    let report_a = Dlacep::builder(p.clone(), OracleFilter::new(p.clone()))
        .assembler(asm)
        .parallelism(Parallelism::serial())
        .obs(reg_a.clone())
        .build()
        .unwrap()
        .run(s.events());

    let reg_b = Arc::new(Registry::enabled());
    let report_b = Dlacep::builder(p.clone(), OracleFilter::new(p))
        .obs(reg_b.clone())
        .parallelism(Parallelism::serial())
        .assembler(asm)
        .build()
        .unwrap()
        .run(s.events());

    assert_eq!(report_a.matches, report_b.matches);
    assert_eq!(report_a.events_total, report_b.events_total);
    assert_eq!(report_a.events_relayed, report_b.events_relayed);
    assert_eq!(reg_a.snapshot().counters, reg_b.snapshot().counters);
}

#[test]
fn streaming_builder_setters_match_whole_config() {
    let p = seq_ab(6);
    let s = stream(200);
    let cfg = RuntimeConfig {
        ooo_policy: OutOfOrderPolicy::ClampToLastTs,
        ..Default::default()
    };

    let built_reg = Arc::new(Registry::with_journal_capacity(2048));
    let mut built = StreamingDlacep::builder(p.clone(), PassthroughFilter)
        .config(cfg)
        .obs(built_reg.clone())
        .build()
        .unwrap();

    let setter_reg = Arc::new(Registry::with_journal_capacity(2048));
    let mut setter = StreamingDlacep::builder(p, PassthroughFilter)
        .ooo_policy(OutOfOrderPolicy::ClampToLastTs)
        .obs(setter_reg.clone())
        .build()
        .unwrap();

    built.ingest_all(s.events()).unwrap();
    setter.ingest_all(s.events()).unwrap();
    let br = built.finish();
    let sr = setter.finish();

    assert_eq!(br.matches, sr.matches);
    assert_eq!(br.windows_evaluated, sr.windows_evaluated);
    assert_eq!(br.timeline, sr.timeline);
    assert_eq!(
        built_reg.snapshot().counters,
        setter_reg.snapshot().counters
    );
    // The journals must agree entry-for-entry: both paths install obs before
    // the initial mode transition, so the (kind, fields) sequences line up
    // from entry zero.
    assert_eq!(
        journal_kinds_and_fields(&built_reg),
        journal_kinds_and_fields(&setter_reg)
    );
}

/// Trainer stub for option-validation tests: never actually called.
struct NoopTrainer;

impl ModelTrainer<OracleFilter> for NoopTrainer {
    fn retrain(
        &self,
        _pattern: &Pattern,
        _windows: &[Vec<dlacep_events::PrimitiveEvent>],
        _attempt: u64,
    ) -> Result<OracleFilter, String> {
        Err("noop".into())
    }

    fn encode(&self, _filter: &OracleFilter) -> Vec<u8> {
        Vec::new()
    }

    fn decode(&self, _bytes: &[u8]) -> Result<OracleFilter, String> {
        Err("noop".into())
    }
}

#[test]
fn retrain_without_drift_is_rejected_at_build() {
    let p = seq_ab(6);
    let err = StreamingDlacep::builder(p, OracleFilter::new(seq_ab(6)))
        .retrain(RetrainConfig::default(), Box::new(NoopTrainer))
        .build()
        .err()
        .expect("retrain without drift must be rejected");
    assert!(
        matches!(err, RuntimeError::Config(ref m) if m.contains("drift")),
        "got: {err:?}"
    );
}

#[test]
fn retrain_config_without_trainer_is_rejected_at_build() {
    let p = seq_ab(6);
    let err = StreamingDlacep::builder(p, OracleFilter::new(seq_ab(6)))
        .config(RuntimeConfig {
            drift: Some(DriftConfig::with_baseline(0.4)),
            retrain: Some(RetrainConfig::default()),
            ..Default::default()
        })
        .build()
        .err()
        .expect("retrain config without trainer must be rejected");
    assert!(
        matches!(err, RuntimeError::Config(ref m) if m.contains("trainer")),
        "got: {err:?}"
    );
}

fn seq_bc(w: u64) -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(B), "b"),
            PatternExpr::event(TypeSet::single(TypeId(2)), "c"),
        ]),
        vec![],
        WindowSpec::Count(w),
    )
}

fn match_keys(ms: &[Match]) -> std::collections::BTreeSet<Vec<dlacep_events::EventId>> {
    ms.iter().map(|m| m.event_ids.clone()).collect()
}

#[test]
fn multi_per_pattern_attribution_agrees_with_independent_runs() {
    let p1 = seq_ab(6);
    let p2 = seq_bc(6);
    let s = stream(200);

    // A passthrough filter relays every window, so each run is exact CEP:
    // the shared plan's per-pattern attribution must reproduce what each
    // pattern finds when evaluated on its own.
    let solo1 = Dlacep::new(p1.clone(), PassthroughFilter)
        .unwrap()
        .run(s.events());
    let solo2 = Dlacep::new(p2.clone(), PassthroughFilter)
        .unwrap()
        .run(s.events());

    let set = PatternSet::new(vec![p1, p2]).unwrap();
    let multi = Dlacep::multi(set, PassthroughFilter)
        .build()
        .unwrap()
        .run(s.events());

    assert_eq!(multi.per_pattern.len(), 2);
    assert!(
        !solo1.matches.is_empty() && !solo2.matches.is_empty(),
        "workload must exercise both patterns"
    );
    assert_eq!(
        match_keys(&multi.per_pattern[0]),
        match_keys(&solo1.matches)
    );
    assert_eq!(
        match_keys(&multi.per_pattern[1]),
        match_keys(&solo2.matches)
    );
    // The union report covers exactly the attributed matches.
    let mut union = match_keys(&multi.per_pattern[0]);
    union.extend(match_keys(&multi.per_pattern[1]));
    assert_eq!(match_keys(&multi.matches), union);
}

#[test]
fn single_pattern_report_attributes_everything_to_that_pattern() {
    let p = seq_ab(6);
    let report = Dlacep::new(p.clone(), OracleFilter::new(p))
        .unwrap()
        .run(stream(160).events());
    assert_eq!(report.per_pattern.len(), 1);
    assert_eq!(report.per_pattern[0], report.matches);
}

#[test]
fn builder_patterns_appends_to_the_registered_set() {
    let p1 = seq_ab(6);
    let p2 = seq_bc(6);
    let s = stream(200);

    let via_append = Dlacep::builder(p1.clone(), PassthroughFilter)
        .patterns([p2.clone()])
        .build()
        .unwrap()
        .run(s.events());
    let via_set = Dlacep::multi(PatternSet::new(vec![p1, p2]).unwrap(), PassthroughFilter)
        .build()
        .unwrap()
        .run(s.events());

    assert_eq!(via_append.matches, via_set.matches);
    assert_eq!(via_append.per_pattern, via_set.per_pattern);
}

#[test]
fn streaming_build_rejects_extra_patterns() {
    let err = Dlacep::builder(seq_ab(6), PassthroughFilter)
        .patterns([seq_bc(6)])
        .streaming()
        .build()
        .err()
        .expect("streaming runtime must reject multi-pattern sets");
    assert!(
        matches!(err, RuntimeError::Config(ref m) if m.contains("extra pattern")),
        "got: {err:?}"
    );
}
