//! Builder-vs-legacy equivalence: the fluent builders are the blessed
//! construction path, but until the deprecated constructors are removed
//! they must keep producing byte-identical behaviour — matches, metric
//! counters, and the observability journal all agree.

use std::sync::Arc;

use dlacep_cep::{Pattern, PatternExpr, TypeSet};
use dlacep_core::runtime::{RuntimeConfig, StreamingDlacep};
use dlacep_core::{AssemblerConfig, Dlacep, OracleFilter, Parallelism, PassthroughFilter};
use dlacep_events::{EventStream, OutOfOrderPolicy, TypeId, WindowSpec};
use dlacep_obs::{FieldValue, Registry};

const A: TypeId = TypeId(0);
const B: TypeId = TypeId(1);

fn seq_ab(w: u64) -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(A), "a"),
            PatternExpr::event(TypeSet::single(B), "b"),
        ]),
        vec![],
        WindowSpec::Count(w),
    )
}

fn stream(n: usize) -> EventStream {
    let mut s = EventStream::new();
    for i in 0..n {
        let t = match i % 4 {
            0 => A,
            2 => B,
            _ => TypeId(2),
        };
        s.push(t, i as u64, vec![i as f64]);
    }
    s
}

fn journal_kinds_and_fields(reg: &Registry) -> Vec<(String, Vec<(String, FieldValue)>)> {
    reg.journal()
        .snapshot()
        .entries
        .into_iter()
        .map(|e| (e.kind, e.fields))
        .collect()
}

#[test]
fn batch_builder_matches_deprecated_constructors() {
    let p = seq_ab(6);
    let s = stream(160);
    let asm = AssemblerConfig {
        mark_size: 10,
        step_size: 3,
    };

    let built_reg = Arc::new(Registry::enabled());
    let built = Dlacep::builder(p.clone(), OracleFilter::new(p.clone()))
        .assembler(asm)
        .parallelism(Parallelism::serial())
        .obs(built_reg.clone())
        .build()
        .unwrap();

    let legacy_reg = Arc::new(Registry::enabled());
    #[allow(deprecated)]
    let legacy = {
        let mut dl = Dlacep::with_assembler(p.clone(), OracleFilter::new(p), asm).unwrap();
        dl.set_obs(legacy_reg.clone());
        dl
    };

    let built_report = built.run(s.events());
    let legacy_report = legacy.run(s.events());
    assert_eq!(built_report.matches, legacy_report.matches);
    assert_eq!(built_report.events_total, legacy_report.events_total);
    assert_eq!(built_report.events_relayed, legacy_report.events_relayed);

    // Metric equivalence: identical counter maps in the custom registries.
    assert_eq!(
        built_reg.snapshot().counters,
        legacy_reg.snapshot().counters
    );
}

#[test]
fn streaming_builder_journal_matches_deprecated_path() {
    let p = seq_ab(6);
    let s = stream(200);
    let cfg = RuntimeConfig {
        ooo_policy: OutOfOrderPolicy::ClampToLastTs,
        ..Default::default()
    };

    let built_reg = Arc::new(Registry::with_journal_capacity(2048));
    let mut built = StreamingDlacep::builder(p.clone(), PassthroughFilter)
        .config(cfg)
        .obs(built_reg.clone())
        .build()
        .unwrap();

    let legacy_reg = Arc::new(Registry::with_journal_capacity(2048));
    #[allow(deprecated)]
    let mut legacy = {
        let mut rt = StreamingDlacep::with_config(p, PassthroughFilter, cfg).unwrap();
        rt.set_obs(legacy_reg.clone());
        rt
    };

    built.ingest_all(s.events()).unwrap();
    legacy.ingest_all(s.events()).unwrap();
    let br = built.finish();
    let lr = legacy.finish();

    assert_eq!(br.matches, lr.matches);
    assert_eq!(br.windows_evaluated, lr.windows_evaluated);
    assert_eq!(br.timeline, lr.timeline);
    assert_eq!(
        built_reg.snapshot().counters,
        legacy_reg.snapshot().counters
    );
    // The journals must agree entry-for-entry: the builder installs obs
    // before the initial mode transition, the legacy path re-records it via
    // set_obs — both end up with the same (kind, fields) sequence.
    assert_eq!(
        journal_kinds_and_fields(&built_reg),
        journal_kinds_and_fields(&legacy_reg)
    );
}
