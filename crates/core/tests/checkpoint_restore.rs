//! Runtime-level restore equivalence: checkpointing a [`StreamingDlacep`]
//! at *any* point, round-tripping the checkpoint through the binary codec,
//! restoring into a freshly constructed runtime, and finishing the stream
//! there must be indistinguishable from never having stopped — matches,
//! counters, degradation timeline, and the observability journal's
//! (kind, fields) suffix all identical. Covered across out-of-order ingest
//! policies and a fault-injected degraded run; the storage-crash dimension
//! is `crash_sweep.rs`.

use dlacep_cep::Pattern;
use dlacep_cep::{PatternExpr, TypeSet};
use dlacep_core::chaos::{out_of_order_timestamps, ChaosFault, ChaosFilter};
use dlacep_core::durable::{decode_checkpoint, encode_checkpoint};
use dlacep_core::filter::{Filter, OracleFilter, PassthroughFilter};
use dlacep_core::guard::GuardConfig;
use dlacep_core::runtime::{RuntimeConfig, RuntimeError, StreamingDlacep};
use dlacep_core::DriftConfig;
use dlacep_events::{AttrValue, OutOfOrderPolicy, TypeId, WindowSpec};
use dlacep_obs::{FieldValue, Registry};
use std::sync::Arc;

const A: TypeId = TypeId(0);
const B: TypeId = TypeId(1);

fn seq_ab(w: u64) -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(A), "a"),
            PatternExpr::event(TypeSet::single(B), "b"),
        ]),
        vec![],
        WindowSpec::Count(w),
    )
}

/// The offered input: (type, ts, attrs) triples — ids are assigned by the
/// runtime, so equivalence covers id stamping too.
type Offer = (TypeId, u64, Vec<AttrValue>);

fn plain_offers(n: usize) -> Vec<Offer> {
    (0..n)
        .map(|i| {
            let t = match i % 5 {
                1 => A,
                3 => B,
                _ => TypeId(2),
            };
            (t, i as u64, vec![i as f64])
        })
        .collect()
}

fn disordered_offers(n: usize, seed: u64) -> Vec<Offer> {
    let ts = out_of_order_timestamps(n, 0.3, 4, seed);
    (0..n)
        .map(|i| {
            let t = match i % 5 {
                1 => A,
                3 => B,
                _ => TypeId(2),
            };
            (t, ts[i], vec![i as f64])
        })
        .collect()
}

fn feed<F: Filter>(rt: &mut StreamingDlacep<F>, offers: &[Offer]) {
    for (t, ts, attrs) in offers {
        match rt.ingest(*t, *ts, attrs.clone()) {
            Ok(_) => {}
            // `Reject` policy refuses out-of-order events; the caller drops
            // them and carries on — deterministically on both runs.
            Err(RuntimeError::Stream(_)) => {}
            Err(e) => panic!("unexpected ingest error: {e}"),
        }
    }
}

fn journal_tail(reg: &Registry, from_seq: u64) -> Vec<(String, Vec<(String, FieldValue)>)> {
    reg.journal()
        .snapshot()
        .entries
        .into_iter()
        .filter(|e| e.seq >= from_seq)
        .map(|e| (e.kind, e.fields))
        .collect()
}

/// Run `offers` uninterrupted, and split at `split` with a codec-round-
/// tripped checkpoint/restore; both outcomes must agree exactly.
fn assert_restore_equivalent<F: Filter>(
    pattern: Pattern,
    cfg: RuntimeConfig,
    mk_filter: impl Fn() -> F,
    offers: &[Offer],
    split: usize,
) {
    // Reference: one uninterrupted run.
    let ref_reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut reference = StreamingDlacep::builder(pattern.clone(), mk_filter())
        .config(cfg)
        .obs(ref_reg.clone())
        .build()
        .unwrap();
    feed(&mut reference, offers);
    let ref_report = reference.finish();

    // Interrupted: run to `split`, checkpoint, restore elsewhere, continue.
    let first_reg = Arc::new(Registry::with_journal_capacity(4096));
    let mut first = StreamingDlacep::builder(pattern.clone(), mk_filter())
        .config(cfg)
        .obs(first_reg.clone())
        .build()
        .unwrap();
    feed(&mut first, &offers[..split]);
    let ckpt = first.checkpoint();
    let ckpt = decode_checkpoint(&encode_checkpoint(&ckpt)).expect("checkpoint codec round-trip");
    drop(first); // the original runtime is gone — only the checkpoint survives

    let rec_reg = Arc::new(Registry::with_journal_capacity(4096));
    let watermark = ckpt.journal_next_seq;
    let mut recovered =
        StreamingDlacep::restore(pattern, mk_filter(), cfg, Some(rec_reg.clone()), ckpt).unwrap();
    feed(&mut recovered, &offers[split..]);
    let rec_report = recovered.finish();

    // Output equivalence: matches bitwise-identical, in order.
    assert_eq!(rec_report.matches, ref_report.matches, "split at {split}");
    // Trajectory equivalence: every admission/degradation counter agrees.
    assert_eq!(rec_report.events_offered, ref_report.events_offered);
    assert_eq!(rec_report.events_admitted, ref_report.events_admitted);
    assert_eq!(rec_report.events_dropped, ref_report.events_dropped);
    assert_eq!(rec_report.events_clamped, ref_report.events_clamped);
    assert_eq!(rec_report.events_relayed, ref_report.events_relayed);
    assert_eq!(rec_report.windows_evaluated, ref_report.windows_evaluated);
    assert_eq!(rec_report.windows_degraded, ref_report.windows_degraded);
    assert_eq!(rec_report.guard, ref_report.guard, "split at {split}");
    assert_eq!(rec_report.timeline, ref_report.timeline, "split at {split}");
    assert_eq!(rec_report.final_mode, ref_report.final_mode);
    assert_eq!(rec_report.drift_state, ref_report.drift_state);
    assert_eq!(rec_report.retrain_signaled, ref_report.retrain_signaled);
    assert_eq!(
        rec_report.extractor_stats, ref_report.extractor_stats,
        "split at {split}: extractor work counters must continue, not reset"
    );
    // Journal equivalence: the recovered run's journal is exactly the
    // reference journal from the checkpoint's watermark on.
    assert_eq!(
        journal_tail(&rec_reg, 0),
        journal_tail(&ref_reg, watermark),
        "split at {split}: journal suffixes diverge"
    );
}

fn splits(n: usize) -> Vec<usize> {
    vec![0, 1, n / 3, n / 2, n - 7, n - 1, n]
}

#[test]
fn restore_equivalence_healthy_stream() {
    let offers = plain_offers(120);
    for split in splits(offers.len()) {
        assert_restore_equivalent(
            seq_ab(6),
            RuntimeConfig::default(),
            || PassthroughFilter,
            &offers,
            split,
        );
    }
}

#[test]
fn restore_equivalence_under_drop_policy() {
    let offers = disordered_offers(150, 11);
    let cfg = RuntimeConfig {
        ooo_policy: OutOfOrderPolicy::Drop,
        ..Default::default()
    };
    let p = seq_ab(6);
    for split in splits(offers.len()) {
        assert_restore_equivalent(
            p.clone(),
            cfg,
            || OracleFilter::new(p.clone()),
            &offers,
            split,
        );
    }
}

#[test]
fn restore_equivalence_under_clamp_policy() {
    let offers = disordered_offers(150, 23);
    let cfg = RuntimeConfig {
        ooo_policy: OutOfOrderPolicy::ClampToLastTs,
        ..Default::default()
    };
    for split in splits(offers.len()) {
        assert_restore_equivalent(seq_ab(6), cfg, || PassthroughFilter, &offers, split);
    }
}

#[test]
fn restore_equivalence_under_reject_policy() {
    let offers = disordered_offers(150, 37);
    let cfg = RuntimeConfig {
        ooo_policy: OutOfOrderPolicy::Reject,
        ..Default::default()
    };
    for split in splits(offers.len()) {
        assert_restore_equivalent(seq_ab(6), cfg, || PassthroughFilter, &offers, split);
    }
}

/// Degraded-mode equivalence: faults keyed by window content (not call
/// index) so the restored run draws the same faults on the same windows,
/// including mid-cooldown and half-open-probe splits.
#[test]
fn restore_equivalence_with_fault_injected_filter() {
    let p = seq_ab(6);
    let offers = plain_offers(200);
    let cfg = RuntimeConfig {
        guard: GuardConfig {
            fault_threshold: 2,
            cooldown_windows: 3,
            validate_scores: true,
        },
        drift: Some(DriftConfig::with_baseline(0.4)),
        ..Default::default()
    };
    let mk = || {
        ChaosFilter::new(OracleFilter::new(seq_ab(6)))
            .fault_at(30, ChaosFault::Panic)
            .fault_at(40, ChaosFault::Io)
            .fault_at(50, ChaosFault::WrongLength)
            .fault_at(60, ChaosFault::NonFiniteScores)
            .fault_every(45, ChaosFault::Panic)
            .key_by_window_start()
    };
    for split in splits(offers.len()) {
        assert_restore_equivalent(p.clone(), cfg, mk, &offers, split);
    }
}

/// Restoring into a runtime built with a different configuration must be
/// refused — silently continuing with changed window/guard semantics would
/// void the equivalence guarantee.
#[test]
fn restore_rejects_config_mismatch() {
    let offers = plain_offers(40);
    let mut rt = StreamingDlacep::builder(seq_ab(6), PassthroughFilter)
        .build()
        .unwrap();
    feed(&mut rt, &offers);
    let ckpt = rt.checkpoint();

    let other = RuntimeConfig {
        ooo_policy: OutOfOrderPolicy::Drop,
        ..Default::default()
    };
    match StreamingDlacep::restore(seq_ab(6), PassthroughFilter, other, None, ckpt) {
        Err(RuntimeError::Restore(msg)) => {
            assert!(msg.contains("configuration"), "got: {msg}")
        }
        Err(e) => panic!("expected Restore error, got {e}"),
        Ok(_) => panic!("config mismatch must not restore"),
    }
}
