//! End-to-end degradation tests of the streaming runtime: every fault class
//! the batch pipeline would panic on (filter panics, malformed marks,
//! poisoned scores, state explosions, concept drift, out-of-order input)
//! must leave the process alive, the match set a subset of exact ECEP, and a
//! faithful record in the report's timeline.

use dlacep_cep::{Match, Pattern, PatternExpr, TypeSet};
use dlacep_core::chaos::{out_of_order_timestamps, ChaosFault, ChaosFilter};
use dlacep_core::filter::{Filter, OracleFilter, PassthroughFilter};
use dlacep_core::guard::GuardConfig;
use dlacep_core::runtime::{ModeCause, RuntimeConfig, RuntimeMode, RuntimeReport, StreamingDlacep};
use dlacep_core::{DriftConfig, DriftState};
use dlacep_data::label::ground_truth_matches;
use dlacep_events::{EventId, EventStream, OutOfOrderPolicy, TypeId, WindowSpec};
use std::collections::BTreeSet;

const A: TypeId = TypeId(0);
const B: TypeId = TypeId(1);
const C: TypeId = TypeId(2);

fn seq_ab(w: u64) -> Pattern {
    Pattern::new(
        PatternExpr::Seq(vec![
            PatternExpr::event(TypeSet::single(A), "a"),
            PatternExpr::event(TypeSet::single(B), "b"),
        ]),
        vec![],
        WindowSpec::Count(w),
    )
}

/// Sparse A..B pairs (one match per 17-event block) in a sea of C noise.
fn noisy_stream(n: usize) -> EventStream {
    let mut s = EventStream::new();
    for i in 0..n {
        let t = match i % 17 {
            3 => A,
            6 => B,
            _ => C,
        };
        s.push(t, i as u64, vec![0.0]);
    }
    s
}

fn keys(ms: &[Match]) -> BTreeSet<Vec<EventId>> {
    ms.iter().map(|m| m.event_ids.clone()).collect()
}

fn run_with<F: Filter>(
    pattern: Pattern,
    filter: F,
    cfg: RuntimeConfig,
    s: &EventStream,
) -> RuntimeReport {
    let mut rt = StreamingDlacep::builder(pattern, filter)
        .config(cfg)
        .build()
        .unwrap();
    rt.ingest_all(s.events()).unwrap();
    rt.finish()
}

#[test]
fn permanently_panicking_filter_degrades_to_exact_cep() {
    let p = seq_ab(8);
    let s = noisy_stream(400);
    let truth = ground_truth_matches(&p, s.events());
    assert!(!truth.is_empty());

    let chaos = ChaosFilter::new(OracleFilter::new(p.clone())).fault_from(0, ChaosFault::Panic);
    let cfg = RuntimeConfig {
        guard: GuardConfig {
            fault_threshold: 3,
            cooldown_windows: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = run_with(p, chaos, cfg, &s);

    // The process survived (we are here), recall is fully preserved because
    // every faulty or bypassed window fails open...
    assert_eq!(keys(&report.matches), keys(&truth));
    assert_eq!(report.events_relayed, report.events_admitted);
    // ...the breaker tripped after exactly `fault_threshold` faults and the
    // run ended degraded, all of it on the record.
    assert!(report.guard.panics >= 3);
    assert!(report.guard.breaker_trips >= 1);
    assert!(
        report.guard.windows_bypassed > 0,
        "open breaker stops invoking the filter"
    );
    assert_eq!(report.final_mode, RuntimeMode::DegradedExact);
    assert!(report
        .timeline
        .iter()
        .any(|t| t.cause == ModeCause::FaultThreshold && t.mode == RuntimeMode::DegradedExact));
    assert!(report.windows_degraded > 0);
}

#[test]
fn transient_faults_recover_through_half_open_probe() {
    let p = seq_ab(8);
    let s = noisy_stream(600);
    let truth = ground_truth_matches(&p, s.events());

    // Faults on the first three invocations only: trip at call 1 (threshold
    // 2), fail one probe (call 2), succeed the next — Closed again.
    let chaos = ChaosFilter::new(OracleFilter::new(p.clone()))
        .fault_at(0, ChaosFault::Panic)
        .fault_at(1, ChaosFault::WrongLength)
        .fault_at(2, ChaosFault::NonFiniteScores);
    let cfg = RuntimeConfig {
        guard: GuardConfig {
            fault_threshold: 2,
            cooldown_windows: 2,
            validate_scores: true,
        },
        ..Default::default()
    };
    let report = run_with(p, chaos, cfg, &s);

    assert_eq!(
        keys(&report.matches),
        keys(&truth),
        "fail-open + oracle keeps full recall"
    );
    assert_eq!(report.guard.panics, 1);
    assert_eq!(report.guard.wrong_length, 1);
    assert_eq!(report.guard.non_finite, 1);
    assert_eq!(
        report.guard.breaker_trips, 2,
        "initial trip plus one failed probe"
    );
    assert_eq!(report.guard.recoveries, 1);
    assert_eq!(report.final_mode, RuntimeMode::Filtering);
    let causes: Vec<ModeCause> = report.timeline.iter().map(|t| t.cause).collect();
    assert!(causes.contains(&ModeCause::FaultThreshold));
    assert!(causes.contains(&ModeCause::ProbeFailed));
    assert!(causes.contains(&ModeCause::Recovered));
    // Timeline window indices are non-decreasing and start at the beginning.
    assert_eq!(report.timeline[0].cause, ModeCause::Start);
    assert!(report
        .timeline
        .windows(2)
        .all(|p| p[0].window <= p[1].window));
}

#[test]
fn mixed_chaos_storm_never_panics_and_never_invents_matches() {
    let p = seq_ab(8);
    let s = noisy_stream(800);
    let truth = keys(&ground_truth_matches(&p, s.events()));

    let chaos = ChaosFilter::new(OracleFilter::new(p.clone()))
        .fault_every(7, ChaosFault::Panic)
        .fault_every(5, ChaosFault::WrongLength)
        .fault_every(3, ChaosFault::Silent);
    let cfg = RuntimeConfig {
        guard: GuardConfig {
            fault_threshold: 2,
            cooldown_windows: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = run_with(p, chaos, cfg, &s);

    // Safety: whatever the fault mix does, the ID-distance constraint keeps
    // the output inside the exact match set.
    assert!(keys(&report.matches).is_subset(&truth));
    assert!(report.guard.faults_total > 0);
    assert!(report.windows_degraded > 0);
    assert!(report.degraded_fraction() > 0.0);
}

#[test]
fn partial_match_budget_bounds_state_and_reports_shedding() {
    // SEQ(A, B) over a long all-A prefix: skip-till-any-match stores one
    // partial per A — unbounded without the budget.
    let p = seq_ab(64);
    let budget = 8;
    let cfg = RuntimeConfig {
        max_partials: Some(budget),
        ..Default::default()
    };
    let mut rt = StreamingDlacep::builder(p.clone(), PassthroughFilter)
        .config(cfg)
        .build()
        .unwrap();
    let mut s = EventStream::new();
    for i in 0..300u64 {
        s.push(A, i, vec![]);
    }
    for i in 300..310u64 {
        s.push(B, i, vec![]);
    }
    for ev in s.events() {
        rt.ingest(ev.type_id, ev.ts.0, ev.attrs.clone()).unwrap();
        assert!(
            rt.stored_partials() <= budget,
            "live state within budget at every step"
        );
    }
    let report = rt.finish();
    assert!(
        report.extractor_stats.partials_shed > 0,
        "shedding must be reported"
    );
    assert!(report.extractor_stats.peak_partial_matches <= budget as u64);

    // Shedding loses matches, never invents them.
    let truth = keys(&ground_truth_matches(&p, s.events()));
    let got = keys(&report.matches);
    assert!(got.is_subset(&truth));
    assert!(
        got.len() < truth.len(),
        "a budget this tight must actually shed matches"
    );
}

#[test]
fn drift_fallback_restores_recall_on_shifted_stream() {
    // The filter goes silent from invocation 10 on — a model whose training
    // distribution no longer matches the stream. Well-formed output, so the
    // guard sees nothing; the marking-rate collapse is the drift monitor's
    // signal.
    let p = seq_ab(8);
    let s = noisy_stream(1200);
    let truth = keys(&ground_truth_matches(&p, s.events()));
    let silent_from = 10;
    let chaos = || {
        ChaosFilter::new(OracleFilter::new(p.clone())).fault_from(silent_from, ChaosFault::Silent)
    };
    // Healthy marking rate is 2/17 ≈ 0.118 (one A and one B per 17 events).
    let drift = DriftConfig {
        baseline_rate: 0.118,
        tolerance: 0.5,
        alpha: 0.5,
        patience: 2,
    };

    let blind = run_with(p.clone(), chaos(), RuntimeConfig::default(), &s);
    let cfg = RuntimeConfig {
        drift: Some(drift),
        ..Default::default()
    };
    let watched = run_with(p.clone(), chaos(), cfg, &s);

    // Without drift detection the silent filter silently loses the tail.
    assert!(keys(&blind.matches).len() < truth.len());
    assert!(!blind.retrain_signaled);
    // With it, the runtime falls back to exact CEP and recovers the tail.
    assert!(watched.matches.len() > blind.matches.len());
    assert!(keys(&watched.matches).is_subset(&truth));
    assert!(
        watched.retrain_signaled,
        "drift must raise the retrain signal"
    );
    assert_eq!(watched.drift_state, Some(DriftState::Drifted));
    assert_eq!(watched.final_mode, RuntimeMode::DegradedExact);
    assert!(watched
        .timeline
        .iter()
        .any(|t| t.cause == ModeCause::Drift && t.mode == RuntimeMode::DegradedExact));
    // The fallback engages within patience + a few EMA windows of the shift.
    let drift_window = watched
        .timeline
        .iter()
        .find(|t| t.cause == ModeCause::Drift)
        .map(|t| t.window)
        .unwrap();
    assert!(
        (silent_from..silent_from + 8).contains(&drift_window),
        "fallback at window {drift_window}, shift at {silent_from}"
    );
}

#[test]
fn rebaseline_acknowledges_retrain_and_resumes_filtering() {
    let p = seq_ab(8);
    let drift = DriftConfig {
        baseline_rate: 0.118,
        tolerance: 0.5,
        alpha: 0.5,
        patience: 2,
    };
    let cfg = RuntimeConfig {
        drift: Some(drift),
        ..Default::default()
    };
    let chaos = ChaosFilter::new(OracleFilter::new(p.clone())).fault_from(0, ChaosFault::Silent);
    let mut rt = StreamingDlacep::builder(p, chaos)
        .config(cfg)
        .build()
        .unwrap();
    let s = noisy_stream(200);
    rt.ingest_all(s.events()).unwrap();
    assert_eq!(rt.mode(), RuntimeMode::DegradedExact);
    assert!(rt.retrain_signaled());

    rt.rebaseline(0.118);
    assert_eq!(rt.mode(), RuntimeMode::Filtering);
    assert!(!rt.retrain_signaled());
    assert_eq!(rt.drift_state(), Some(DriftState::Stable));
    let report = rt.finish();
    assert!(report
        .timeline
        .iter()
        .any(|t| t.cause == ModeCause::Rebaselined));
}

#[test]
fn out_of_order_feed_under_drop_policy_equals_filtered_batch() {
    let p = seq_ab(8);
    let raw_ts = out_of_order_timestamps(500, 0.2, 6, 99);

    // The admitted subsequence the policy should leave behind.
    let mut expected = EventStream::new();
    for (i, &ts) in raw_ts.iter().enumerate() {
        let t = match i % 17 {
            3 => A,
            6 => B,
            _ => C,
        };
        expected
            .push_with_policy(t, ts, vec![0.0], OutOfOrderPolicy::Drop)
            .unwrap();
    }
    let truth = keys(&ground_truth_matches(&p, expected.events()));

    let cfg = RuntimeConfig {
        ooo_policy: OutOfOrderPolicy::Drop,
        ..Default::default()
    };
    let mut rt = StreamingDlacep::builder(p, PassthroughFilter)
        .config(cfg)
        .build()
        .unwrap();
    for (i, &ts) in raw_ts.iter().enumerate() {
        let t = match i % 17 {
            3 => A,
            6 => B,
            _ => C,
        };
        rt.ingest(t, ts, vec![0.0]).unwrap();
    }
    let report = rt.finish();

    assert!(
        report.events_dropped > 0,
        "20% disorder must drop something"
    );
    assert_eq!(report.events_offered, 500);
    assert_eq!(
        report.events_admitted + report.events_dropped,
        report.events_offered
    );
    assert_eq!(report.events_admitted, expected.len());
    // Passthrough + in-order admitted subsequence: exact equality with the
    // batch ground truth over that subsequence (ids align densely).
    assert_eq!(keys(&report.matches), truth);
}

#[test]
fn reject_policy_keeps_runtime_usable_across_errors() {
    let p = seq_ab(8);
    let raw_ts = out_of_order_timestamps(300, 0.15, 4, 7);
    let mut rt = StreamingDlacep::new(p, PassthroughFilter).unwrap();
    let mut rejected = 0usize;
    for (i, &ts) in raw_ts.iter().enumerate() {
        let t = match i % 17 {
            3 => A,
            6 => B,
            _ => C,
        };
        if rt.ingest(t, ts, vec![0.0]).is_err() {
            rejected += 1;
        }
    }
    assert!(rejected > 0);
    let report = rt.finish();
    assert_eq!(report.events_offered, 300);
    assert_eq!(report.events_admitted, 300 - rejected);
    assert!(!report.matches.is_empty());
}
