//! The ACEP objective function (paper §3.1, Definition 3).
//!
//! `F(M', {t, t'}) = −w₁ · Jaccard(M, M') − w₂ · (t' / t)` scores an ACEP
//! mechanism against an ECEP reference: lower is better, rewarding both
//! match-set similarity and throughput gain. In practice the value is used
//! as a relative score between mechanisms, not minimized in ℝ.

use crate::metrics::ComparisonReport;
use serde::{Deserialize, Serialize};

/// Weights of the two objective terms (`w₁ + w₂ = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcepObjective {
    /// Weight of the match-similarity term.
    pub w1: f64,
    /// Weight of the throughput term.
    pub w2: f64,
}

impl AcepObjective {
    /// Build; weights must be in `[0, 1]` and sum to 1.
    pub fn new(w1: f64, w2: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&w1) && (0.0..=1.0).contains(&w2),
            "weights in [0,1]"
        );
        assert!((w1 + w2 - 1.0).abs() < 1e-9, "weights must sum to 1");
        Self { w1, w2 }
    }

    /// Equal weighting.
    pub fn balanced() -> Self {
        Self::new(0.5, 0.5)
    }

    /// Score from raw quantities: Jaccard similarity of the match sets and
    /// the ACEP/ECEP throughput ratio.
    pub fn score_raw(&self, jaccard: f64, throughput_ratio: f64) -> f64 {
        -self.w1 * jaccard - self.w2 * throughput_ratio
    }

    /// Score a [`ComparisonReport`]. The Jaccard similarity is derived from
    /// the match counts: `|M ∩ M'| / |M ∪ M'|`.
    pub fn score(&self, r: &ComparisonReport) -> f64 {
        let union = r.ecep_matches + r.acep_matches - r.common_matches;
        let jaccard = if union == 0 {
            1.0
        } else {
            r.common_matches as f64 / union as f64
        };
        self.score_raw(jaccard, r.throughput_gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_is_better() {
        let o = AcepObjective::balanced();
        let slow_exact = o.score_raw(1.0, 1.0);
        let fast_exact = o.score_raw(1.0, 100.0);
        let fast_lossy = o.score_raw(0.5, 100.0);
        assert!(fast_exact < slow_exact);
        assert!(fast_exact < fast_lossy);
    }

    #[test]
    fn weights_trade_off() {
        let quality_heavy = AcepObjective::new(0.99, 0.01);
        let speed_heavy = AcepObjective::new(0.01, 0.99);
        // A lossy-but-fast run wins under speed weighting only.
        let lossy_fast = (0.2, 50.0);
        let exact_slow = (1.0, 1.0);
        assert!(
            speed_heavy.score_raw(lossy_fast.0, lossy_fast.1)
                < speed_heavy.score_raw(exact_slow.0, exact_slow.1)
        );
        assert!(
            quality_heavy.score_raw(exact_slow.0, exact_slow.1)
                < quality_heavy.score_raw(lossy_fast.0, lossy_fast.1)
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weights_must_sum_to_one() {
        let _ = AcepObjective::new(0.5, 0.6);
    }
}
