//! Durable streaming runtime: write-ahead event log + checkpoint/restore.
//!
//! [`DurableDlacep`] wraps a [`StreamingDlacep`] with the `dlacep-dur`
//! persistence primitives so a crash at *any* byte of *any* write loses no
//! acknowledged state:
//!
//! * every **offered** event is appended to a [`Wal`] *before* it reaches the
//!   runtime — admission (out-of-order policy, id stamping) is deterministic,
//!   so replaying the log re-derives it exactly;
//! * [`DurableDlacep::checkpoint_now`] syncs the WAL, captures the full
//!   runtime trajectory ([`RuntimeCheckpoint`]) and publishes it atomically
//!   (tmp + fsync + rename), then prunes checkpoints and fully-covered WAL
//!   segments;
//! * [`DurableDlacep::recover`] loads the newest *valid* checkpoint (corrupt
//!   or torn ones are skipped), restores the runtime, and replays the WAL
//!   suffix. The result is byte-identical — matches, counters, timeline,
//!   journal sequence — to a run that never crashed, which
//!   `tests/crash_sweep.rs` proves for every possible crash point.
//!
//! The recovery protocol relies on two orderings, both enforced here: a
//! checkpoint is written only after the WAL is synced (so its sequence number
//! is always ≤ the durable log end), and WAL segments are pruned only below
//! the oldest *retained* checkpoint (so recovery always finds the suffix it
//! needs).
//!
//! What is **not** covered: the filter model itself (persist it with
//! [`crate::persist`] and pass the reloaded filter to `recover`), and output
//! already handed to a downstream consumer — use
//! [`RuntimeCheckpoint::matches`]' length as the emitted-match watermark to
//! deduplicate on the consumer side.

use crate::filter::Filter;
use crate::retrain::{ModelTrainer, RetrainCheckpoint, RetrainState};
use crate::runtime::{
    ModeCause, ModeTransition, RuntimeCheckpoint, RuntimeConfig, RuntimeError, RuntimeMode,
    RuntimeReport, StreamingDlacep,
};
use crate::{BreakerState, GuardStats};
use crate::{DriftMonitorState, GuardState};
use dlacep_cep::Pattern;
use dlacep_dur::{
    load_latest_checkpoint, load_latest_model, prune_checkpoints, prune_models, publish_model,
    write_checkpoint, CodecError, Dec, Decoder, Enc, Encoder, Store, Wal, WalConfig, WalError,
};
use dlacep_events::{AttrValue, EventId, TypeId};
use dlacep_obs::{Counter, Registry};
use std::io;
use std::sync::Arc;

/// Environment variable naming the durability directory (see the README).
pub const DUR_DIR_ENV: &str = "DLACEP_DUR_DIR";

/// The durability directory configured via [`DUR_DIR_ENV`], if set.
/// Typically fed to [`dlacep_dur::DirStore::open`].
pub fn dur_dir_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os(DUR_DIR_ENV).map(std::path::PathBuf::from)
}

/// Durability tuning.
#[derive(Debug, Clone, Copy)]
pub struct DurConfig {
    /// WAL segment size and fsync batching.
    pub wal: WalConfig,
    /// Take a checkpoint every N offered events; `0` = only on explicit
    /// [`DurableDlacep::checkpoint_now`] calls.
    pub checkpoint_every_events: u64,
    /// Checkpoints retained after each new one (≥ 1). Older checkpoints and
    /// the WAL segments below the oldest retained one are pruned.
    pub keep_checkpoints: usize,
    /// Registry models retained after each publication (≥ 1). Models below
    /// the newest `keep_models` versions are pruned.
    pub keep_models: usize,
}

impl Default for DurConfig {
    fn default() -> Self {
        Self {
            wal: WalConfig::default(),
            checkpoint_every_events: 1024,
            keep_checkpoints: 2,
            keep_models: 2,
        }
    }
}

/// Errors of the durable runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum DurError {
    /// Store I/O failed (or the injected crash fired, in tests).
    Io(io::Error),
    /// The WAL is unreadable in a way recovery must not paper over
    /// (interior corruption, sequence gap).
    Wal(WalError),
    /// A checkpoint frame validated but its payload did not decode — a
    /// version/logic mismatch, not a torn write.
    Corrupt(CodecError),
    /// The wrapped runtime rejected something (configuration, restore
    /// mismatch, or an out-of-order event under `Reject`).
    Runtime(RuntimeError),
}

impl std::fmt::Display for DurError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurError::Io(e) => write!(f, "durability io: {e}"),
            DurError::Wal(e) => write!(f, "wal: {e}"),
            DurError::Corrupt(e) => write!(f, "checkpoint payload: {e}"),
            DurError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for DurError {}

impl From<io::Error> for DurError {
    fn from(e: io::Error) -> Self {
        DurError::Io(e)
    }
}

impl From<WalError> for DurError {
    fn from(e: WalError) -> Self {
        DurError::Wal(e)
    }
}

impl From<RuntimeError> for DurError {
    fn from(e: RuntimeError) -> Self {
        DurError::Runtime(e)
    }
}

/// What [`DurableDlacep::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint restored from; `None` = cold start
    /// (no valid checkpoint, full WAL replay).
    pub checkpoint_seq: Option<u64>,
    /// Invalid (torn/corrupt) checkpoint files skipped while searching.
    pub checkpoints_skipped: u64,
    /// WAL records replayed into the restored runtime.
    pub wal_replayed: u64,
    /// Bytes cut from the WAL's torn tail on open.
    pub truncated_bytes: u64,
    /// Torn header-less segments removed on open.
    pub removed_segments: u64,
    /// Next WAL sequence number — the stream position the source must
    /// re-feed from.
    pub resume_seq: u64,
    /// The restored checkpoint's journal watermark (0 on cold start):
    /// uninterrupted-run journal entries from this sequence on must equal
    /// the recovered run's journal.
    pub journal_watermark: u64,
    /// Active retrained-model version after recovery (checkpoint redeploy
    /// plus WAL replay); `None` when no validated swap has happened yet or
    /// retraining is not configured.
    pub model_version: Option<u64>,
    /// Torn/corrupt registry files skipped while scanning for the newest
    /// published model.
    pub models_skipped: u64,
}

/// One WAL record: the offered event's payload. The id is *not* logged —
/// admission re-stamps ids deterministically, and the WAL sequence number
/// already identifies the offer position. Public so higher serving tiers
/// (the sharded fleet in `dlacep-serve`) log the exact same offer encoding
/// after their own routing prefix.
pub fn encode_offer(type_id: TypeId, ts: u64, attrs: &[AttrValue]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(type_id.0);
    e.put_u64(ts);
    e.put_u64(attrs.len() as u64);
    for a in attrs {
        e.put(a);
    }
    e.into_bytes()
}

/// Inverse of [`encode_offer`]. Rejects trailing bytes, so a caller that
/// wraps the offer in a larger record must slice the exact offer region.
pub fn decode_offer(payload: &[u8]) -> Result<(TypeId, u64, Vec<AttrValue>), CodecError> {
    let mut d = Decoder::new(payload);
    let type_id = TypeId(d.take_u32()?);
    let ts = d.take_u64()?;
    let n = d.take_u64()? as usize;
    let mut attrs = Vec::with_capacity(n.min(d.remaining()));
    for _ in 0..n {
        attrs.push(d.get::<f64>()?);
    }
    d.finish()?;
    Ok((type_id, ts, attrs))
}

/// Crash-recoverable [`StreamingDlacep`]. See the [module docs](self).
pub struct DurableDlacep<F: Filter, S: Store> {
    rt: StreamingDlacep<F>,
    wal: Wal,
    store: S,
    cfg: DurConfig,
    offered_since_ckpt: u64,
    ckpt_bytes: Counter,
    wal_replayed: Counter,
    recovery_truncated: Counter,
    model_bytes: Counter,
}

impl<F: Filter, S: Store> DurableDlacep<F, S> {
    /// Start a durable runtime on `store`. For a store that may already hold
    /// a log (i.e. after a crash), use [`DurableDlacep::recover`] — it
    /// handles the empty store as a cold start, so it is always safe to call
    /// instead of `new`.
    ///
    /// When `registry` is `Some`, runtime metrics and journal land there
    /// from the first entry (the initial mode included).
    pub fn new(
        pattern: Pattern,
        filter: F,
        config: RuntimeConfig,
        dur: DurConfig,
        store: S,
        registry: Option<Arc<Registry>>,
    ) -> Result<Self, DurError> {
        Self::new_with_trainer(pattern, filter, config, dur, store, registry, None)
    }

    /// [`DurableDlacep::new`] with a retrain trainer attached. Required
    /// whenever [`RuntimeConfig::retrain`] is set: accepted models are
    /// published to the store's versioned registry as they are swapped in.
    pub fn new_with_trainer(
        pattern: Pattern,
        filter: F,
        config: RuntimeConfig,
        dur: DurConfig,
        mut store: S,
        registry: Option<Arc<Registry>>,
        trainer: Option<Box<dyn ModelTrainer<F>>>,
    ) -> Result<Self, DurError> {
        let (wal, _) = Wal::open(&mut store, dur.wal)?;
        let rt = StreamingDlacep::with_config_obs_trainer(
            pattern,
            filter,
            config,
            registry.clone(),
            trainer,
        )?;
        let reg = registry.unwrap_or_else(dlacep_obs::global);
        Ok(Self::assemble(rt, wal, store, dur, &reg))
    }

    fn assemble(
        rt: StreamingDlacep<F>,
        wal: Wal,
        store: S,
        cfg: DurConfig,
        registry: &Registry,
    ) -> Self {
        Self {
            rt,
            wal,
            store,
            cfg,
            offered_since_ckpt: 0,
            ckpt_bytes: registry.counter("dur.checkpoint.bytes"),
            wal_replayed: registry.counter("dur.wal.replayed"),
            recovery_truncated: registry.counter("dur.recovery.truncated_tail"),
            model_bytes: registry.counter("dur.model.bytes"),
        }
    }

    /// Rebuild from whatever `store` holds: open the WAL (truncating a torn
    /// tail), load the newest valid checkpoint, restore the runtime, replay
    /// the WAL suffix. An empty store is a cold start. `pattern`, `filter`
    /// and `config` must be what the original runtime ran with; a
    /// configuration mismatch is a [`RuntimeError::Restore`] error.
    ///
    /// Replayed events that the original run rejected (out-of-order under
    /// [`Reject`](dlacep_events::OutOfOrderPolicy::Reject)) are rejected
    /// again — deterministically — and skipped, exactly as the live path
    /// experienced them.
    pub fn recover(
        pattern: Pattern,
        filter: F,
        config: RuntimeConfig,
        dur: DurConfig,
        store: S,
        registry: Option<Arc<Registry>>,
    ) -> Result<(Self, RecoveryReport), DurError> {
        Self::recover_with_trainer(pattern, filter, config, dur, store, registry, None)
    }

    /// [`DurableDlacep::recover`] with a retrain trainer attached. Required
    /// whenever [`RuntimeConfig::retrain`] is set: the trainer decodes the
    /// checkpointed active model (so marking resumes on the same weights)
    /// and an interrupted in-flight retrain resumes at its checkpointed
    /// schedule during WAL replay. Models accepted during replay that the
    /// crashed run had already published are re-published idempotently.
    pub fn recover_with_trainer(
        pattern: Pattern,
        filter: F,
        config: RuntimeConfig,
        dur: DurConfig,
        mut store: S,
        registry: Option<Arc<Registry>>,
        trainer: Option<Box<dyn ModelTrainer<F>>>,
    ) -> Result<(Self, RecoveryReport), DurError> {
        let (wal, wal_report) = Wal::open(&mut store, dur.wal)?;
        let scan = load_latest_checkpoint(&store)?;
        let checkpoints_skipped = scan.skipped;
        let reg = match &registry {
            Some(r) => r.clone(),
            None => dlacep_obs::global(),
        };

        let (rt, checkpoint_seq, journal_watermark) = match scan.latest {
            Some((seq, payload)) => {
                let ckpt = decode_checkpoint(&payload).map_err(DurError::Corrupt)?;
                let watermark = ckpt.journal_next_seq;
                let rt = StreamingDlacep::restore_with_trainer(
                    pattern, filter, config, registry, ckpt, trainer,
                )?;
                (rt, Some(seq), watermark)
            }
            None => {
                let rt = StreamingDlacep::with_config_obs_trainer(
                    pattern, filter, config, registry, trainer,
                )?;
                (rt, None, 0)
            }
        };
        let from_seq = checkpoint_seq.unwrap_or(0);

        let mut this = Self::assemble(rt, wal, store, dur, &reg);
        if wal_report.truncated_bytes > 0 || wal_report.removed_segments > 0 {
            this.recovery_truncated.inc();
        }

        let suffix = Wal::replay(&this.store, from_seq)?;
        let mut replayed = 0u64;
        for (_seq, payload) in &suffix {
            let (type_id, ts, attrs) = decode_offer(payload).map_err(DurError::Corrupt)?;
            match this.rt.ingest(type_id, ts, attrs) {
                Ok(_) => {}
                // The original run saw the same rejection and carried on.
                Err(RuntimeError::Stream(_)) => {}
                Err(e) => return Err(e.into()),
            }
            replayed += 1;
        }
        this.wal_replayed.add(replayed);
        // Models the checkpoint held as unpublished, plus any accepted
        // during replay. Publication is idempotent, so a crash between the
        // original publication and the covering checkpoint only causes a
        // harmless re-publish here.
        this.publish_pending_models()?;
        let resume_seq = this.wal.next_seq();
        this.offered_since_ckpt = resume_seq - from_seq;

        let models_skipped = load_latest_model(&this.store)?.skipped;
        let report = RecoveryReport {
            checkpoint_seq,
            checkpoints_skipped,
            wal_replayed: replayed,
            truncated_bytes: wal_report.truncated_bytes,
            removed_segments: wal_report.removed_segments,
            resume_seq,
            journal_watermark,
            model_version: this.rt.active_model_version(),
            models_skipped,
        };
        Ok((this, report))
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &StreamingDlacep<F> {
        &self.rt
    }

    /// Next WAL sequence number == offered events durably loggable so far.
    pub fn wal_next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Offer one event: logged to the WAL first, then ingested. A rejected
    /// event (out-of-order under `Reject`) stays in the log — replay
    /// re-rejects it deterministically.
    pub fn ingest(
        &mut self,
        type_id: TypeId,
        ts: u64,
        attrs: Vec<AttrValue>,
    ) -> Result<Option<EventId>, DurError> {
        let payload = encode_offer(type_id, ts, &attrs);
        self.wal.append(&mut self.store, &payload)?;
        self.offered_since_ckpt += 1;
        let id = self.rt.ingest(type_id, ts, attrs);
        // Publish freshly accepted models before any covering checkpoint:
        // once a checkpoint records them as drained, the registry must
        // already hold them.
        self.publish_pending_models()?;
        if self.cfg.checkpoint_every_events > 0
            && self.offered_since_ckpt >= self.cfg.checkpoint_every_events
        {
            self.checkpoint_now()?;
        }
        id.map_err(DurError::from)
    }

    /// Drain models accepted by the retrain supervisor into the versioned
    /// registry (tmp + fsync + rename per model), then prune old versions.
    fn publish_pending_models(&mut self) -> Result<(), DurError> {
        let pending = self.rt.take_pending_models();
        if pending.is_empty() {
            return Ok(());
        }
        for (version, bytes) in &pending {
            let n = publish_model(&mut self.store, *version, bytes)?;
            self.model_bytes.add(n);
        }
        prune_models(&mut self.store, self.cfg.keep_models)?;
        Ok(())
    }

    /// Force the WAL to stable storage without checkpointing.
    pub fn sync(&mut self) -> Result<(), DurError> {
        self.wal.sync(&mut self.store).map_err(DurError::from)
    }

    /// Sync the WAL, publish a checkpoint of the current state atomically,
    /// and prune old checkpoints plus fully-covered WAL segments. Returns
    /// the checkpoint's sequence number (== offered events logged).
    pub fn checkpoint_now(&mut self) -> Result<u64, DurError> {
        self.publish_pending_models()?;
        self.wal.sync(&mut self.store)?;
        let seq = self.wal.next_seq();
        let payload = encode_checkpoint(&self.rt.checkpoint());
        let bytes = write_checkpoint(&mut self.store, seq, &payload)?;
        self.ckpt_bytes.add(bytes);
        if let Some(oldest_kept) = prune_checkpoints(&mut self.store, self.cfg.keep_checkpoints)? {
            self.wal.prune_below(&mut self.store, oldest_kept)?;
        }
        self.offered_since_ckpt = 0;
        Ok(seq)
    }

    /// Flush trailing windows and produce the final report. Purely
    /// in-memory — take a [`checkpoint`](Self::checkpoint_now) first if the
    /// stream may resume later.
    pub fn finish(self) -> RuntimeReport {
        self.rt.finish()
    }

    /// Tear down into the backing store (tests use this to inspect or crash
    /// it).
    pub fn into_store(self) -> S {
        self.store
    }
}

/// Serialize a [`RuntimeCheckpoint`] into a checkpoint payload.
pub fn encode_checkpoint(ckpt: &RuntimeCheckpoint) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put(ckpt);
    e.into_bytes()
}

/// Deserialize a checkpoint payload.
pub fn decode_checkpoint(payload: &[u8]) -> Result<RuntimeCheckpoint, CodecError> {
    let mut d = Decoder::new(payload);
    let ckpt = d.get()?;
    d.finish()?;
    Ok(ckpt)
}

// ---- binary codec impls for the checkpointed core types ----

impl Enc for BreakerState {
    fn enc(&self, e: &mut Encoder) {
        e.put_u8(match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        });
    }
}

impl Dec for BreakerState {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(BreakerState::Closed),
            1 => Ok(BreakerState::Open),
            2 => Ok(BreakerState::HalfOpen),
            t => Err(CodecError::Malformed(format!("breaker state tag {t}"))),
        }
    }
}

impl Enc for GuardStats {
    fn enc(&self, e: &mut Encoder) {
        e.put_u64(self.faults_total);
        e.put_u64(self.panics);
        e.put_u64(self.wrong_length);
        e.put_u64(self.non_finite);
        e.put_u64(self.breaker_trips);
        e.put_u64(self.recoveries);
        e.put_u64(self.windows_bypassed);
    }
}

impl Dec for GuardStats {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(GuardStats {
            faults_total: d.take_u64()?,
            panics: d.take_u64()?,
            wrong_length: d.take_u64()?,
            non_finite: d.take_u64()?,
            breaker_trips: d.take_u64()?,
            recoveries: d.take_u64()?,
            windows_bypassed: d.take_u64()?,
        })
    }
}

impl Enc for GuardState {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.state);
        e.put_u64(self.consecutive_faults);
        e.put_u64(self.open_windows);
        e.put(&self.stats);
    }
}

impl Dec for GuardState {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(GuardState {
            state: d.get()?,
            consecutive_faults: d.take_u64()?,
            open_windows: d.take_u64()?,
            stats: d.get()?,
        })
    }
}

impl Enc for DriftMonitorState {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.ema);
        e.put_u64(self.consecutive_out);
        e.put_u64(self.windows_seen);
    }
}

impl Dec for DriftMonitorState {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(DriftMonitorState {
            ema: d.get()?,
            consecutive_out: d.take_u64()?,
            windows_seen: d.take_u64()?,
        })
    }
}

impl Enc for RuntimeMode {
    fn enc(&self, e: &mut Encoder) {
        e.put_u8(match self {
            RuntimeMode::Filtering => 0,
            RuntimeMode::DegradedExact => 1,
        });
    }
}

impl Dec for RuntimeMode {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(RuntimeMode::Filtering),
            1 => Ok(RuntimeMode::DegradedExact),
            t => Err(CodecError::Malformed(format!("runtime mode tag {t}"))),
        }
    }
}

impl Enc for ModeCause {
    fn enc(&self, e: &mut Encoder) {
        e.put_u8(match self {
            ModeCause::Start => 0,
            ModeCause::FaultThreshold => 1,
            ModeCause::ProbeFailed => 2,
            ModeCause::Recovered => 3,
            ModeCause::Drift => 4,
            ModeCause::Rebaselined => 5,
            ModeCause::Swapped => 6,
        });
    }
}

impl Dec for ModeCause {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(match d.take_u8()? {
            0 => ModeCause::Start,
            1 => ModeCause::FaultThreshold,
            2 => ModeCause::ProbeFailed,
            3 => ModeCause::Recovered,
            4 => ModeCause::Drift,
            5 => ModeCause::Rebaselined,
            6 => ModeCause::Swapped,
            t => return Err(CodecError::Malformed(format!("mode cause tag {t}"))),
        })
    }
}

impl Enc for ModeTransition {
    fn enc(&self, e: &mut Encoder) {
        e.put_u64(self.window);
        e.put(&self.mode);
        e.put(&self.cause);
    }
}

impl Dec for ModeTransition {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ModeTransition {
            window: d.take_u64()?,
            mode: d.get()?,
            cause: d.get()?,
        })
    }
}

impl Enc for RetrainState {
    fn enc(&self, e: &mut Encoder) {
        match self {
            RetrainState::Idle => e.put_u8(0),
            RetrainState::Waiting { resume_at, attempt } => {
                e.put_u8(1);
                e.put_u64(*resume_at);
                e.put_u32(*attempt);
            }
            RetrainState::Exhausted => e.put_u8(2),
        }
    }
}

impl Dec for RetrainState {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(match d.take_u8()? {
            0 => RetrainState::Idle,
            1 => RetrainState::Waiting {
                resume_at: d.take_u64()?,
                attempt: d.take_u32()?,
            },
            2 => RetrainState::Exhausted,
            t => return Err(CodecError::Malformed(format!("retrain state tag {t}"))),
        })
    }
}

// Model bytes are opaque `Vec<u8>` blobs (the trainer's own wire format),
// so they are framed manually: u64 length + raw bytes.
fn enc_model(e: &mut Encoder, (version, bytes): &(u64, Vec<u8>)) {
    e.put_u64(*version);
    e.put_u64(bytes.len() as u64);
    e.put_bytes(bytes);
}

fn dec_model(d: &mut Decoder<'_>) -> Result<(u64, Vec<u8>), CodecError> {
    let version = d.take_u64()?;
    let len = usize::try_from(d.take_u64()?)
        .map_err(|_| CodecError::Malformed("model length exceeds usize".into()))?;
    Ok((version, d.take_bytes(len)?.to_vec()))
}

impl Enc for RetrainCheckpoint {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.state);
        e.put(&self.replay);
        e.put_u64(self.next_version);
        match &self.active_model {
            Some(m) => {
                e.put_u8(1);
                enc_model(e, m);
            }
            None => e.put_u8(0),
        }
        e.put_u64(self.pending_models.len() as u64);
        for m in &self.pending_models {
            enc_model(e, m);
        }
        e.put(&self.baseline_override);
    }
}

impl Dec for RetrainCheckpoint {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let state = d.get()?;
        let replay = d.get()?;
        let next_version = d.take_u64()?;
        let active_model = match d.take_u8()? {
            0 => None,
            1 => Some(dec_model(d)?),
            t => return Err(CodecError::Malformed(format!("active model tag {t}"))),
        };
        let n = usize::try_from(d.take_u64()?)
            .map_err(|_| CodecError::Malformed("pending model count exceeds usize".into()))?;
        let mut pending_models = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            pending_models.push(dec_model(d)?);
        }
        Ok(RetrainCheckpoint {
            state,
            replay,
            next_version,
            active_model,
            pending_models,
            baseline_override: d.get()?,
        })
    }
}

impl Enc for RuntimeCheckpoint {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.config_fingerprint);
        e.put(&self.engine);
        e.put(&self.guard);
        e.put(&self.drift);
        e.put(&self.drift_fallback);
        e.put(&self.retrain_signaled);
        e.put(&self.buf);
        e.put(&self.marks);
        e.put_u64(self.base);
        e.put_u64(self.admitted);
        e.put_u64(self.next_window_start);
        e.put_u64(self.last_window_end);
        e.put_u64(self.relayed_upto);
        e.put(&self.last_ts);
        e.put_u64(self.next_id);
        e.put_u64(self.events_offered);
        e.put_u64(self.events_dropped);
        e.put_u64(self.events_clamped);
        e.put_u64(self.events_relayed);
        e.put_u64(self.windows_evaluated);
        e.put_u64(self.windows_degraded);
        e.put(&self.timeline);
        e.put(&self.matches);
        e.put_u64(self.journaled_sheds);
        e.put_u64(self.journal_next_seq);
        e.put(&self.retrain);
    }
}

impl Dec for RuntimeCheckpoint {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(RuntimeCheckpoint {
            config_fingerprint: d.get::<Vec<u8>>()?,
            engine: d.get()?,
            guard: d.get()?,
            drift: d.get()?,
            drift_fallback: d.get()?,
            retrain_signaled: d.get()?,
            buf: d.get()?,
            marks: d.get()?,
            base: d.take_u64()?,
            admitted: d.take_u64()?,
            next_window_start: d.take_u64()?,
            last_window_end: d.take_u64()?,
            relayed_upto: d.take_u64()?,
            last_ts: d.get()?,
            next_id: d.take_u64()?,
            events_offered: d.take_u64()?,
            events_dropped: d.take_u64()?,
            events_clamped: d.take_u64()?,
            events_relayed: d.take_u64()?,
            windows_evaluated: d.take_u64()?,
            windows_degraded: d.take_u64()?,
            timeline: d.get()?,
            matches: d.get()?,
            journaled_sheds: d.take_u64()?,
            journal_next_seq: d.take_u64()?,
            // Appended in a later format revision: checkpoints written
            // before the retrain supervisor existed simply end here.
            retrain: if d.remaining() == 0 { None } else { d.get()? },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::PassthroughFilter;
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_dur::MemStore;
    use dlacep_events::WindowSpec;

    fn seq_ab(w: u64) -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
                PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
            ]),
            vec![],
            WindowSpec::Count(w),
        )
    }

    #[test]
    fn checkpoint_payload_round_trips() {
        let mut rt = StreamingDlacep::new(seq_ab(4), PassthroughFilter).unwrap();
        for i in 0..20u64 {
            rt.ingest(TypeId((i % 2) as u32), i, vec![i as f64])
                .unwrap();
        }
        let ckpt = rt.checkpoint();
        let back = decode_checkpoint(&encode_checkpoint(&ckpt)).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn recover_from_empty_store_is_cold_start() {
        let (dur, report) = DurableDlacep::recover(
            seq_ab(4),
            PassthroughFilter,
            RuntimeConfig::default(),
            DurConfig::default(),
            MemStore::new(),
            None,
        )
        .unwrap();
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(report.wal_replayed, 0);
        assert_eq!(report.resume_seq, 0);
        assert_eq!(dur.wal_next_seq(), 0);
    }

    #[test]
    fn offer_log_checkpoint_recover_continues_identically() {
        let p = seq_ab(4);
        // Reference: uninterrupted.
        let mut reference = StreamingDlacep::new(p.clone(), PassthroughFilter).unwrap();
        for i in 0..40u64 {
            reference
                .ingest(TypeId((i % 3) as u32), i, vec![i as f64])
                .unwrap();
        }
        let ref_report = reference.finish();

        // Durable run: 25 events, checkpoint, "crash" (drop), recover, rest.
        let mut dur = DurableDlacep::new(
            p.clone(),
            PassthroughFilter,
            RuntimeConfig::default(),
            DurConfig {
                checkpoint_every_events: 0,
                ..DurConfig::default()
            },
            MemStore::new(),
            None,
        )
        .unwrap();
        for i in 0..25u64 {
            dur.ingest(TypeId((i % 3) as u32), i, vec![i as f64])
                .unwrap();
        }
        dur.checkpoint_now().unwrap();
        let store = dur.into_store(); // crash: everything in-memory is gone

        let (mut recovered, report) = DurableDlacep::recover(
            p,
            PassthroughFilter,
            RuntimeConfig::default(),
            DurConfig::default(),
            store,
            None,
        )
        .unwrap();
        assert_eq!(report.checkpoint_seq, Some(25));
        assert_eq!(report.wal_replayed, 0, "checkpoint covers the whole log");
        assert_eq!(report.resume_seq, 25);
        for i in 25..40u64 {
            recovered
                .ingest(TypeId((i % 3) as u32), i, vec![i as f64])
                .unwrap();
        }
        let rec_report = recovered.finish();
        assert_eq!(rec_report.matches, ref_report.matches);
        assert_eq!(rec_report.events_offered, ref_report.events_offered);
        assert_eq!(rec_report.timeline, ref_report.timeline);
        assert_eq!(
            rec_report.extractor_stats, ref_report.extractor_stats,
            "work counters identical after recovery"
        );
    }

    #[test]
    fn uncheckpointed_wal_suffix_is_replayed() {
        let p = seq_ab(4);
        let dur_cfg = DurConfig {
            checkpoint_every_events: 10,
            wal: WalConfig {
                sync_every: 1, // every offer durable immediately
                ..WalConfig::default()
            },
            ..DurConfig::default()
        };
        let mut dur = DurableDlacep::new(
            p.clone(),
            PassthroughFilter,
            RuntimeConfig::default(),
            dur_cfg,
            MemStore::new(),
            None,
        )
        .unwrap();
        for i in 0..27u64 {
            dur.ingest(TypeId((i % 2) as u32), i, vec![]).unwrap();
        }
        let store = dur.into_store();
        let (recovered, report) = DurableDlacep::recover(
            p,
            PassthroughFilter,
            RuntimeConfig::default(),
            dur_cfg,
            store,
            None,
        )
        .unwrap();
        assert_eq!(
            report.checkpoint_seq,
            Some(20),
            "cadence checkpoints at 10, 20"
        );
        assert_eq!(report.wal_replayed, 7, "events 20..27 replayed");
        assert_eq!(report.resume_seq, 27);
        assert_eq!(recovered.runtime().matches_so_far().len() as u64, {
            // 27 alternating A/B events in a count-4 window produce matches;
            // just sanity-check against a fresh run.
            let mut fresh = StreamingDlacep::new(seq_ab(4), PassthroughFilter).unwrap();
            for i in 0..27u64 {
                fresh.ingest(TypeId((i % 2) as u32), i, vec![]).unwrap();
            }
            fresh.matches_so_far().len() as u64
        });
    }
}
