//! Fluent construction for every DLACEP execution surface.
//!
//! The pipeline once grew construction variants one orthogonal option at a
//! time until combining options meant chaining setters in the right order.
//! The builders collapse that into one chain per surface:
//!
//! * [`DlacepBuilder`] — the batch pipeline ([`Dlacep`]);
//! * [`StreamingBuilder`] — the supervised streaming runtime
//!   ([`StreamingDlacep`]), reached from the batch chain via
//!   [`DlacepBuilder::streaming`] or directly;
//! * [`DurableBuilder`] — the crash-recoverable runtime
//!   ([`DurableDlacep`]), reached via [`StreamingBuilder::durable`].
//!
//! Every option is applied at construction: the obs registry is installed
//! before the first journal entry (so a custom registry's journal is
//! self-contained from entry zero) and the pool is built against the final
//! registry (so `pool.*` metrics land with the pipeline's own).
//!
//! ```
//! use dlacep_core::prelude::*;
//! use dlacep_cep::{Pattern, PatternExpr, TypeSet};
//! use dlacep_events::{TypeId, WindowSpec};
//!
//! let pattern = Pattern::new(
//!     PatternExpr::Seq(vec![
//!         PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
//!         PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
//!     ]),
//!     vec![],
//!     WindowSpec::Count(4),
//! );
//! let dlacep = Dlacep::builder(pattern.clone(), OracleFilter::new(pattern))
//!     .parallelism(Parallelism::default())
//!     .build()
//!     .unwrap();
//! # let _ = dlacep;
//! ```

use crate::assembler::AssemblerConfig;
use crate::drift::DriftConfig;
use crate::durable::{DurConfig, DurError, DurableDlacep, RecoveryReport};
use crate::filter::Filter;
use crate::guard::GuardConfig;
use crate::pipeline::{Dlacep, DlacepError};
use crate::retrain::{ModelTrainer, RetrainConfig};
use crate::runtime::{RuntimeCheckpoint, RuntimeConfig, RuntimeError, StreamingDlacep};
use dlacep_cep::{Pattern, PatternSet};
use dlacep_dur::Store;
use dlacep_events::OutOfOrderPolicy;
use dlacep_obs::Registry;
use dlacep_par::Parallelism;
use std::sync::Arc;

/// Builder for the batch pipeline ([`Dlacep`]).
///
/// Unset options take the same defaults as [`Dlacep::new`]: paper-default
/// assembler geometry, serial execution, the global obs registry.
#[must_use = "builders do nothing until .build() is called"]
#[derive(Debug)]
pub struct DlacepBuilder<F: Filter> {
    patterns: Vec<Pattern>,
    filter: F,
    assembler: Option<AssemblerConfig>,
    parallelism: Parallelism,
    obs: Option<Arc<Registry>>,
}

impl<F: Filter> DlacepBuilder<F> {
    /// Start building a pipeline for `pattern` marked by `filter`.
    pub fn new(pattern: Pattern, filter: F) -> Self {
        Self {
            patterns: vec![pattern],
            filter,
            assembler: None,
            parallelism: Parallelism::default(),
            obs: None,
        }
    }

    /// Start building a pipeline monitoring a whole [`PatternSet`].
    pub fn multi(patterns: PatternSet, filter: F) -> Self {
        Self {
            patterns: patterns.patterns().to_vec(),
            filter,
            assembler: None,
            parallelism: Parallelism::default(),
            obs: None,
        }
    }

    /// Register additional patterns alongside the constructor's pattern.
    /// The whole set is validated as a [`PatternSet`] (one shared window) at
    /// [`DlacepBuilder::build`] and compiled into a shared plan evaluated in
    /// one stream scan; per-pattern matches land in
    /// [`crate::pipeline::DlacepReport::per_pattern`].
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = Pattern>) -> Self {
        self.patterns.extend(patterns);
        self
    }

    /// Assembler geometry (default: `MarkSize = 2W`, `StepSize = W`).
    /// Validated against the pattern's window at [`DlacepBuilder::build`].
    pub fn assembler(mut self, assembler: AssemblerConfig) -> Self {
        self.assembler = Some(assembler);
        self
    }

    /// Parallel execution config (default: serial). A config resolving to
    /// one thread keeps the serial path.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Obs registry for metrics, spans, and the event journal (default:
    /// [`dlacep_obs::global`]).
    pub fn obs(mut self, registry: Arc<Registry>) -> Self {
        self.obs = Some(registry);
        self
    }

    /// Carry the accumulated pattern/filter/assembler/parallelism/obs into
    /// a [`StreamingBuilder`] for the supervised streaming runtime. The
    /// streaming runtime monitors a single pattern; if extra patterns were
    /// registered via [`DlacepBuilder::patterns`], the streaming build
    /// reports a config error.
    pub fn streaming(self) -> StreamingBuilder<F> {
        let mut patterns = self.patterns.into_iter();
        let first = patterns.next().expect("builder always holds one pattern");
        let mut b = StreamingBuilder::new(first, self.filter);
        b.extra_patterns = patterns.count();
        b.config.assembler = self.assembler;
        b.config.parallelism = self.parallelism;
        b.obs = self.obs;
        b
    }

    /// Validate and construct the pipeline.
    pub fn build(self) -> Result<Dlacep<F>, DlacepError> {
        let set = PatternSet::new(self.patterns)?;
        let assembler = self
            .assembler
            .unwrap_or_else(|| AssemblerConfig::paper_default(set.window().size()));
        Dlacep::construct(set, self.filter, assembler, self.parallelism, self.obs)
    }
}

/// Builder for the supervised streaming runtime ([`StreamingDlacep`]).
///
/// Unset options take the [`RuntimeConfig`] defaults; the individual
/// setters and [`StreamingBuilder::config`] write to the same underlying
/// config, last write wins.
#[must_use = "builders do nothing until .build() is called"]
pub struct StreamingBuilder<F: Filter> {
    pattern: Pattern,
    filter: F,
    config: RuntimeConfig,
    obs: Option<Arc<Registry>>,
    trainer: Option<Box<dyn ModelTrainer<F>>>,
    /// Patterns beyond the first carried over from a multi-pattern batch
    /// chain; the streaming runtime cannot serve them, so `build` rejects.
    extra_patterns: usize,
}

impl<F: Filter + std::fmt::Debug> std::fmt::Debug for StreamingBuilder<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingBuilder")
            .field("pattern", &self.pattern)
            .field("filter", &self.filter)
            .field("config", &self.config)
            .field("obs", &self.obs)
            .field(
                "trainer",
                &self.trainer.as_ref().map(|_| "<dyn ModelTrainer>"),
            )
            .finish()
    }
}

impl<F: Filter> StreamingBuilder<F> {
    /// Start building a streaming runtime for `pattern` marked by `filter`.
    pub fn new(pattern: Pattern, filter: F) -> Self {
        Self {
            pattern,
            filter,
            config: RuntimeConfig::default(),
            obs: None,
            trainer: None,
            extra_patterns: 0,
        }
    }

    /// Replace the whole runtime configuration (resets any option a prior
    /// setter wrote).
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Assembler geometry (default: `MarkSize = 2W`, `StepSize = W`).
    pub fn assembler(mut self, assembler: AssemblerConfig) -> Self {
        self.config.assembler = Some(assembler);
        self
    }

    /// Parallel execution of batched window marking (default: serial).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Filter-guard / circuit-breaker tuning.
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.config.guard = guard;
        self
    }

    /// Enable drift detection with the given config.
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.config.drift = Some(drift);
        self
    }

    /// Policy for timestamp regressions (default: reject).
    pub fn ooo_policy(mut self, policy: OutOfOrderPolicy) -> Self {
        self.config.ooo_policy = policy;
        self
    }

    /// Enable the self-healing retrain supervisor: on a drift signal,
    /// `trainer` retrains on the replay buffer and a validated candidate is
    /// hot-swapped in. Requires [`StreamingBuilder::drift`] (the supervisor
    /// is armed by the drift signal); `build` rejects one without the other.
    pub fn retrain(mut self, retrain: RetrainConfig, trainer: Box<dyn ModelTrainer<F>>) -> Self {
        self.config.retrain = Some(retrain);
        self.trainer = Some(trainer);
        self
    }

    /// Partial-match budget for the extractor (default: unbounded).
    pub fn max_partials(mut self, max_partials: usize) -> Self {
        self.config.max_partials = Some(max_partials);
        self
    }

    /// Obs registry for metrics and the journal (default:
    /// [`dlacep_obs::global`]). Installed before the initial mode is
    /// recorded, so the registry's journal is self-contained.
    pub fn obs(mut self, registry: Arc<Registry>) -> Self {
        self.obs = Some(registry);
        self
    }

    /// Carry the accumulated options into a [`DurableBuilder`] for the
    /// crash-recoverable runtime on `store`.
    pub fn durable<S: Store>(self, dur: DurConfig, store: S) -> DurableBuilder<F, S> {
        DurableBuilder {
            inner: self,
            dur,
            store,
        }
    }

    fn reject_extra_patterns(&self) -> Result<(), RuntimeError> {
        if self.extra_patterns > 0 {
            return Err(RuntimeError::Config(format!(
                "streaming runtime monitors a single pattern; {} extra pattern(s) \
                 registered via DlacepBuilder::patterns are not supported — use the \
                 batch pipeline (DlacepBuilder::build) for multi-pattern sets",
                self.extra_patterns
            )));
        }
        Ok(())
    }

    /// Validate and construct the runtime.
    pub fn build(self) -> Result<StreamingDlacep<F>, RuntimeError> {
        self.reject_extra_patterns()?;
        StreamingDlacep::with_config_obs_trainer(
            self.pattern,
            self.filter,
            self.config,
            self.obs,
            self.trainer,
        )
    }

    /// Validate and reconstruct the runtime from a checkpoint instead of a
    /// cold start. Pattern, filter kind, config (and trainer, when retrain
    /// is enabled) must match what the checkpointed runtime ran with.
    pub fn restore(self, ckpt: RuntimeCheckpoint) -> Result<StreamingDlacep<F>, RuntimeError> {
        self.reject_extra_patterns()?;
        StreamingDlacep::restore_with_trainer(
            self.pattern,
            self.filter,
            self.config,
            self.obs,
            ckpt,
            self.trainer,
        )
    }
}

/// Builder for the crash-recoverable runtime ([`DurableDlacep`]). Created
/// via [`StreamingBuilder::durable`].
#[must_use = "builders do nothing until .build()/.recover() is called"]
pub struct DurableBuilder<F: Filter, S: Store> {
    inner: StreamingBuilder<F>,
    dur: DurConfig,
    store: S,
}

impl<F: Filter + std::fmt::Debug, S: Store + std::fmt::Debug> std::fmt::Debug
    for DurableBuilder<F, S>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableBuilder")
            .field("inner", &self.inner)
            .field("dur", &self.dur)
            .field("store", &self.store)
            .finish()
    }
}

impl<F: Filter, S: Store> DurableBuilder<F, S> {
    /// Start a durable runtime on a fresh store. For a store that may
    /// already hold a log (i.e. after a crash), use
    /// [`DurableBuilder::recover`] — it handles the empty store as a cold
    /// start, so it is always safe to call instead.
    pub fn build(self) -> Result<DurableDlacep<F, S>, DurError> {
        DurableDlacep::new_with_trainer(
            self.inner.pattern,
            self.inner.filter,
            self.inner.config,
            self.dur,
            self.store,
            self.inner.obs,
            self.inner.trainer,
        )
    }

    /// Recover from whatever the store holds (latest checkpoint + WAL
    /// replay), or cold-start on an empty store.
    pub fn recover(self) -> Result<(DurableDlacep<F, S>, RecoveryReport), DurError> {
        DurableDlacep::recover_with_trainer(
            self.inner.pattern,
            self.inner.filter,
            self.inner.config,
            self.dur,
            self.store,
            self.inner.obs,
            self.inner.trainer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{OracleFilter, PassthroughFilter};
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_events::{EventStream, TypeId, WindowSpec};

    fn seq_ab(w: u64) -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
                PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
            ]),
            vec![],
            WindowSpec::Count(w),
        )
    }

    fn stream(n: usize) -> EventStream {
        let mut s = EventStream::new();
        for i in 0..n {
            let t = match i % 7 {
                2 => TypeId(0),
                4 => TypeId(1),
                _ => TypeId(2),
            };
            s.push(t, i as u64, vec![0.0]);
        }
        s
    }

    #[test]
    fn builder_defaults_match_new() {
        let p = seq_ab(8);
        let s = stream(120);
        let built = Dlacep::builder(p.clone(), OracleFilter::new(p.clone()))
            .build()
            .unwrap()
            .run(s.events());
        let legacy = Dlacep::new(p.clone(), OracleFilter::new(p))
            .unwrap()
            .run(s.events());
        assert_eq!(built.matches, legacy.matches);
        assert_eq!(built.events_relayed, legacy.events_relayed);
    }

    #[test]
    fn builder_rejects_invalid_assembler() {
        let bad = AssemblerConfig {
            mark_size: 4,
            step_size: 1,
        };
        assert!(matches!(
            Dlacep::builder(seq_ab(10), PassthroughFilter)
                .assembler(bad)
                .build(),
            Err(DlacepError::Assembler(_))
        ));
    }

    #[test]
    fn builder_obs_lands_in_custom_registry() {
        let p = seq_ab(8);
        let s = stream(120);
        let registry = Arc::new(Registry::enabled());
        let dl = Dlacep::builder(p.clone(), OracleFilter::new(p))
            .obs(registry.clone())
            .build()
            .unwrap();
        let _ = dl.run(s.events());
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("pipeline.events_total"), Some(&120));
        assert!(*snap.counters.get("pipeline.windows_marked").unwrap() > 0);
        // An f32 filter's windows land on the f32 side of the quant split.
        assert_eq!(
            snap.counters.get("pipeline.windows_marked"),
            snap.counters.get("pipeline.windows_marked_f32")
        );
        assert_eq!(snap.counters.get("pipeline.windows_marked_quant"), Some(&0));
    }

    #[test]
    fn streaming_chain_from_batch_builder() {
        let p = seq_ab(8);
        let mut rt = Dlacep::builder(p, PassthroughFilter)
            .parallelism(Parallelism::default())
            .streaming()
            .max_partials(64)
            .build()
            .unwrap();
        rt.ingest_all(stream(40).events()).unwrap();
    }

    #[test]
    fn durable_chain_builds_and_recovers() {
        let p = seq_ab(8);
        let dur = DurConfig::default();
        let store = dlacep_dur::MemStore::new();
        let d = StreamingDlacep::builder(p.clone(), PassthroughFilter)
            .durable(dur, store)
            .build()
            .unwrap();
        drop(d);
        let (d2, report) = StreamingDlacep::builder(p, PassthroughFilter)
            .durable(DurConfig::default(), dlacep_dur::MemStore::new())
            .recover()
            .unwrap();
        assert_eq!(report.wal_replayed, 0, "cold start replays nothing");
        drop(d2);
    }
}
