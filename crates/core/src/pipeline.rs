//! The end-to-end DLACEP pipeline (paper Fig. 4): assemble → mark → dedupe →
//! extract → union.

use crate::assembler::{AssemblerConfig, AssemblerError};
use crate::filter::Filter;
use dlacep_cep::engine::CepEngine;
use dlacep_cep::plan::{CompileError, Plan};
use dlacep_cep::sharded::run_sharded_traced;
use dlacep_cep::{
    EngineStats, Match, NfaConfig, NfaEngine, Pattern, PatternError, PatternSet, SharedPlan,
};
use dlacep_events::PrimitiveEvent;
use dlacep_obs::{Counter, Histogram, MetricsSnapshot, Registry, TraceBuilder, Tracer};
use dlacep_par::{Parallelism, PoolStats, ThreadPool};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors raised when constructing a [`Dlacep`] pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DlacepError {
    /// Assembler configuration is invalid for the pattern's window.
    Assembler(AssemblerError),
    /// The pattern failed to compile into an extractor plan.
    Compile(CompileError),
    /// The pattern set was rejected (empty, mixed windows, or a rewrite
    /// failure) before compilation.
    Pattern(PatternError),
}

impl std::fmt::Display for DlacepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DlacepError::Assembler(e) => write!(f, "assembler: {e}"),
            DlacepError::Compile(e) => write!(f, "pattern compile: {e}"),
            DlacepError::Pattern(e) => write!(f, "pattern set: {e}"),
        }
    }
}

impl std::error::Error for DlacepError {}

impl From<AssemblerError> for DlacepError {
    fn from(e: AssemblerError) -> Self {
        DlacepError::Assembler(e)
    }
}

impl From<CompileError> for DlacepError {
    fn from(e: CompileError) -> Self {
        DlacepError::Compile(e)
    }
}

impl From<PatternError> for DlacepError {
    fn from(e: PatternError) -> Self {
        match e {
            // Preserve the historical shape: a plan-compilation failure
            // surfaces as `Compile` whether it came through a set or not.
            PatternError::Compile(c) => DlacepError::Compile(c),
            other => DlacepError::Pattern(other),
        }
    }
}

/// Outcome of one DLACEP run over a stream prefix.
#[derive(Debug, Clone)]
pub struct DlacepReport {
    /// Matches emitted by the CEP extractor on the filtered stream (the
    /// union across registered patterns, in emission order).
    pub matches: Vec<Match>,
    /// Matches attributed to each registered pattern, in registration
    /// order. For a single-pattern pipeline `per_pattern[0] == matches`.
    pub per_pattern: Vec<Vec<Match>>,
    /// Events fed to the pipeline.
    pub events_total: usize,
    /// Distinct events relayed to the extractor after marking + dedup.
    pub events_relayed: usize,
    /// Wall time spent in assembly + neural marking.
    pub filter_time: Duration,
    /// Wall time spent in CEP extraction on the filtered stream.
    pub cep_time: Duration,
    /// Fraction of events filtered *out* (the paper's Ψ).
    pub filtering_ratio: f64,
    /// Extractor work counters.
    pub extractor_stats: EngineStats,
    /// Windows whose filter output was invalid (wrong mark-vector length).
    /// Each such window fails open: all of its events are relayed, trading
    /// throughput for recall.
    pub filter_faults: usize,
    /// Cumulative scheduling counters of the pipeline's pool; `None` on the
    /// serial path.
    pub pool: Option<PoolStats>,
    /// Snapshot of the pipeline's obs registry taken as the run finished;
    /// `None` when the registry is disabled. Cumulative across runs of the
    /// same `Dlacep` instance — diff successive snapshots with
    /// [`MetricsSnapshot::diff`] for per-run values.
    pub obs: Option<MetricsSnapshot>,
}

impl DlacepReport {
    /// Total processing time (filtering + extraction).
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.cep_time
    }

    /// Events per second over the whole pipeline.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.events_total as f64 / secs
        }
    }
}

/// Cached handles into the pipeline's obs registry, resolved once at
/// construction so the hot loops never touch the registry's name map.
/// Counter values follow the determinism contract; the histograms are
/// timing and exempt.
struct PipelineObs {
    registry: Arc<Registry>,
    events_total: Counter,
    events_relayed: Counter,
    windows_marked: Counter,
    windows_marked_quant: Counter,
    windows_marked_f32: Counter,
    filter_faults: Counter,
    mark_nanos: Histogram,
    filter_stage_nanos: Histogram,
    cep_stage_nanos: Histogram,
    shard_nanos: Histogram,
    cep_events_processed: Counter,
    cep_partials_created: Counter,
    cep_partials_shed: Counter,
    cep_condition_evals: Counter,
    cep_matches_emitted: Counter,
}

impl PipelineObs {
    fn new(registry: Arc<Registry>) -> Self {
        PipelineObs {
            events_total: registry.counter("pipeline.events_total"),
            events_relayed: registry.counter("pipeline.events_relayed"),
            windows_marked: registry.counter("pipeline.windows_marked"),
            windows_marked_quant: registry.counter("pipeline.windows_marked_quant"),
            windows_marked_f32: registry.counter("pipeline.windows_marked_f32"),
            filter_faults: registry.counter("pipeline.filter_faults"),
            mark_nanos: registry.histogram("pipeline.mark_nanos"),
            filter_stage_nanos: registry.histogram("pipeline.filter_stage_nanos"),
            cep_stage_nanos: registry.histogram("pipeline.cep_stage_nanos"),
            shard_nanos: registry.histogram("cep.shard_extract_nanos"),
            cep_events_processed: registry.counter("cep.events_processed"),
            cep_partials_created: registry.counter("cep.partials_created"),
            cep_partials_shed: registry.counter("cep.partials_shed"),
            cep_condition_evals: registry.counter("cep.condition_evals"),
            cep_matches_emitted: registry.counter("cep.matches_emitted"),
            registry,
        }
    }

    /// Fold one extraction's engine counters into the `cep.*` namespace.
    fn record_engine_stats(&self, stats: &EngineStats) {
        self.cep_events_processed.add(stats.events_processed);
        self.cep_partials_created.add(stats.partial_matches_created);
        self.cep_partials_shed.add(stats.partials_shed);
        self.cep_condition_evals.add(stats.condition_evaluations);
        self.cep_matches_emitted.add(stats.matches_emitted);
    }

    fn snapshot_if_enabled(&self) -> Option<MetricsSnapshot> {
        if self.registry.is_enabled() {
            Some(self.registry.snapshot())
        } else {
            None
        }
    }
}

/// One sampled batch-pipeline trace: event id, builder, and root span.
struct PipeTrace {
    id: u64,
    builder: TraceBuilder,
    root: u32,
}

/// Open a trace per sampled event (1-in-N on the event id). Empty when the
/// tracer is disabled, so the batch path stays allocation-free by default.
fn begin_pipeline_traces(tracer: &Tracer, events: &[PrimitiveEvent]) -> Vec<PipeTrace> {
    let mut out = Vec::new();
    if !tracer.is_enabled() {
        return out;
    }
    for ev in events {
        if let Some(mut b) = tracer.begin(ev.id.0) {
            let root = b.start("ingest", None);
            b.annotate(root, "event_id", ev.id.0.into());
            b.annotate(root, "type_id", u64::from(ev.type_id.0).into());
            b.end(root);
            out.push(PipeTrace {
                id: ev.id.0,
                builder: b,
                root,
            });
        }
    }
    out
}

/// Attach the stage spans (mark → cep → emit/filtered) to every sampled
/// trace and publish them. The batch pipeline marks whole stages, so all
/// traces of one run share the stage timestamps; causality per event comes
/// from the relayed/matched annotations.
fn finish_pipeline_traces(
    traces: Vec<PipeTrace>,
    windows_marked: u64,
    filtered: &[PrimitiveEvent],
    matches: &[Match],
    t_mark: (u64, u64),
    t_cep: (u64, u64),
) {
    if traces.is_empty() {
        return;
    }
    let matched: BTreeSet<u64> = matches
        .iter()
        .flat_map(|m| m.event_ids.iter().map(|id| id.0))
        .collect();
    for mut t in traces {
        // `filtered` is ordered by id (dedupe map is keyed on it).
        let relayed = filtered.binary_search_by_key(&t.id, |ev| ev.id.0).is_ok();
        let m = t.builder.span_at("mark", Some(t.root), t_mark.0, t_mark.1);
        t.builder.annotate(m, "windows", windows_marked.into());
        t.builder.annotate(m, "relayed", u64::from(relayed).into());
        if relayed {
            let c = t.builder.span_at("cep", Some(t.root), t_cep.0, t_cep.1);
            if matched.contains(&t.id) {
                let e = t.builder.instant("emit", Some(c));
                t.builder.annotate(e, "matched", 1u64.into());
            }
        } else {
            t.builder.instant("filtered", Some(t.root));
        }
        t.builder.finish();
    }
}

/// The DLACEP system: an input assembler, a filter, and a CEP extractor.
///
/// Natively multi-pattern: the registered [`PatternSet`] (one pattern for
/// the classic surface) is compiled through the rewrite front-end into one
/// shared plan ([`SharedPlan`]), so N patterns cost one stream scan, and
/// matches are attributed back per pattern in [`DlacepReport::per_pattern`].
pub struct Dlacep<F: Filter> {
    patterns: PatternSet,
    shared: SharedPlan,
    assembler: AssemblerConfig,
    filter: F,
    par: Parallelism,
    pool: Option<Arc<ThreadPool>>,
    obs: PipelineObs,
}

impl<F: Filter> Dlacep<F> {
    /// Build with the paper-default assembler (`MarkSize = 2W`,
    /// `StepSize = W`).
    pub fn new(pattern: Pattern, filter: F) -> Result<Self, DlacepError> {
        Self::builder(pattern, filter).build()
    }

    /// Start a fluent builder — the one construction surface for every
    /// non-default option (assembler geometry, parallelism, obs registry).
    /// Additional patterns register via
    /// [`crate::builder::DlacepBuilder::patterns`].
    pub fn builder(pattern: Pattern, filter: F) -> crate::builder::DlacepBuilder<F> {
        crate::builder::DlacepBuilder::new(pattern, filter)
    }

    /// Start a builder over a whole [`PatternSet`] — the multi-pattern
    /// registration surface.
    pub fn multi(patterns: PatternSet, filter: F) -> crate::builder::DlacepBuilder<F> {
        crate::builder::DlacepBuilder::multi(patterns, filter)
    }

    /// Shared construction path behind [`Dlacep::builder`]: validates the
    /// assembler against the set's `W`, compiles the shared plan once
    /// (per-run extractors are instantiated from it, so `run` cannot fail),
    /// resolves obs handles, and builds the pool so its `pool.*` metrics
    /// land in the same registry.
    pub(crate) fn construct(
        patterns: PatternSet,
        filter: F,
        assembler: AssemblerConfig,
        par: Parallelism,
        registry: Option<Arc<Registry>>,
    ) -> Result<Self, DlacepError> {
        assembler.validate(patterns.window().size())?;
        let shared = patterns.compile()?;
        let obs = PipelineObs::new(registry.unwrap_or_else(dlacep_obs::global));
        let pool = par.build_pool_with_obs(&obs.registry);
        Ok(Self {
            patterns,
            shared,
            assembler,
            filter,
            par,
            pool,
            obs,
        })
    }

    /// The active parallel execution config.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The wrapped filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// The first registered pattern — the whole set for single-pattern
    /// pipelines (see [`Dlacep::patterns`] for all of them).
    pub fn pattern(&self) -> &Pattern {
        &self.patterns.patterns()[0]
    }

    /// The registered pattern set.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// The compiled extractor plan (the shared plan's fused branches).
    pub fn plan(&self) -> &Plan {
        self.shared.plan()
    }

    /// The shared evaluation plan, including sharing statistics
    /// ([`SharedPlan::report`]).
    pub fn shared_plan(&self) -> &SharedPlan {
        &self.shared
    }

    /// The assembler configuration.
    pub fn assembler(&self) -> &AssemblerConfig {
        &self.assembler
    }

    /// Run over a stream prefix.
    ///
    /// Marked events keep their original ids, so the extractor's ID-distance
    /// constraint (§4.4) guarantees the emitted match set is a subset of the
    /// exact ECEP match set (no false positives, negation patterns aside).
    /// Duplicate marks from overlapping assembler windows are erased before
    /// relaying (§4.2).
    ///
    /// With a multi-thread [`Parallelism`] config, window marking is batched
    /// onto the pool and large filtered streams are evaluated as CEP shards;
    /// matches and marks are identical to the serial path (see
    /// `dlacep_par`'s determinism contract), and `extractor_stats` is
    /// identical whenever the filtered stream is below the sharding
    /// threshold (sharded runs re-process window-overlap events once per
    /// shard, so work counters legitimately differ there — deterministically
    /// so for a fixed `shard_events`).
    #[must_use = "the report carries the emitted matches"]
    pub fn run(&self, events: &[PrimitiveEvent]) -> DlacepReport {
        match &self.pool {
            Some(pool) => self.run_with_pool(pool, events),
            None => self.run_serial(events),
        }
    }

    fn run_serial(&self, events: &[PrimitiveEvent]) -> DlacepReport {
        self.obs.events_total.add(events.len() as u64);
        let tracer = self.obs.registry.tracer();
        let traces = begin_pipeline_traces(&tracer, events);
        let t_f0 = tracer.now_nanos();
        let filter_start = Instant::now();
        let mut filter_faults = 0usize;
        let mut windows_marked = 0u64;
        let mut relayed: BTreeMap<u64, PrimitiveEvent> = BTreeMap::new();
        for window in self.assembler.windows(events) {
            let marks = {
                let _span = self.obs.mark_nanos.span();
                self.filter.mark(window)
            };
            windows_marked += 1;
            apply_marks(window, marks, &mut filter_faults, &mut relayed);
        }
        let filtered: Vec<PrimitiveEvent> = relayed.into_values().collect();
        let filter_time = filter_start.elapsed();
        let t_f1 = tracer.now_nanos();
        self.record_filter_stage(windows_marked, filter_faults, filtered.len(), filter_time);

        let cep_start = Instant::now();
        let mut extractor = NfaEngine::from_plan(self.shared.plan().clone(), NfaConfig::default());
        let matches = extractor.run(&filtered);
        let cep_time = cep_start.elapsed();
        let t_c1 = tracer.now_nanos();
        self.record_cep_stage(extractor.stats(), cep_time);
        finish_pipeline_traces(
            traces,
            windows_marked,
            &filtered,
            &matches,
            (t_f0, t_f1),
            (t_f1, t_c1),
        );

        self.report(
            events.len(),
            filtered.len(),
            matches,
            *extractor.stats(),
            filter_time,
            cep_time,
            filter_faults,
            None,
        )
    }

    fn run_with_pool(&self, pool: &Arc<ThreadPool>, events: &[PrimitiveEvent]) -> DlacepReport {
        self.obs.events_total.add(events.len() as u64);
        let tracer = self.obs.registry.tracer();
        let traces = begin_pipeline_traces(&tracer, events);
        let t_f0 = tracer.now_nanos();
        let filter_start = Instant::now();
        let mut filter_faults = 0usize;
        let mut relayed: BTreeMap<u64, PrimitiveEvent> = BTreeMap::new();
        // Windows are independent reads of the stream: mark them on the
        // pool, then merge in window order so dedupe insertion order — and
        // therefore the relayed stream — matches the serial path exactly.
        let windows: Vec<&[PrimitiveEvent]> = self.assembler.windows(events).collect();
        let mark = |w: &&[PrimitiveEvent]| {
            let _span = self.obs.mark_nanos.span();
            self.filter.mark(w)
        };
        let marks_per_window: Vec<Vec<bool>> = if windows.len() >= self.par.min_batch_windows {
            pool.parallel_map(&windows, 1, |_, w| mark(w))
        } else {
            windows.iter().map(mark).collect()
        };
        for (window, marks) in windows.iter().zip(marks_per_window) {
            apply_marks(window, marks, &mut filter_faults, &mut relayed);
        }
        let filtered: Vec<PrimitiveEvent> = relayed.into_values().collect();
        let filter_time = filter_start.elapsed();
        let t_f1 = tracer.now_nanos();
        self.record_filter_stage(
            windows.len() as u64,
            filter_faults,
            filtered.len(),
            filter_time,
        );

        let cep_start = Instant::now();
        let (matches, stats) = if filtered.len() >= 2 * self.par.shard_events {
            run_sharded_traced(
                || NfaEngine::from_plan(self.shared.plan().clone(), NfaConfig::default()),
                self.shared.plan().window,
                &filtered,
                self.par.shard_events,
                pool.as_ref(),
                &self.obs.shard_nanos,
                &tracer,
            )
        } else {
            let mut extractor =
                NfaEngine::from_plan(self.shared.plan().clone(), NfaConfig::default());
            let matches = extractor.run(&filtered);
            (matches, *extractor.stats())
        };
        let cep_time = cep_start.elapsed();
        let t_c1 = tracer.now_nanos();
        self.record_cep_stage(&stats, cep_time);
        finish_pipeline_traces(
            traces,
            windows.len() as u64,
            &filtered,
            &matches,
            (t_f0, t_f1),
            (t_f1, t_c1),
        );

        self.report(
            events.len(),
            filtered.len(),
            matches,
            stats,
            filter_time,
            cep_time,
            filter_faults,
            Some(pool.stats()),
        )
    }

    /// Record the filter stage's counters and wall time (identically on the
    /// serial and pooled paths, so counter values stay thread-count
    /// independent).
    fn record_filter_stage(
        &self,
        windows_marked: u64,
        filter_faults: usize,
        events_relayed: usize,
        filter_time: Duration,
    ) {
        self.obs.windows_marked.add(windows_marked);
        // Split by inference path so quant-vs-f32 traffic is visible when a
        // deployment mixes quantized and full-precision filters in one
        // registry.
        if self.filter.quantized() {
            self.obs.windows_marked_quant.add(windows_marked);
        } else {
            self.obs.windows_marked_f32.add(windows_marked);
        }
        self.obs.filter_faults.add(filter_faults as u64);
        self.obs.events_relayed.add(events_relayed as u64);
        self.obs
            .filter_stage_nanos
            .record(u64::try_from(filter_time.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record the CEP stage's engine counters and wall time.
    fn record_cep_stage(&self, stats: &EngineStats, cep_time: Duration) {
        self.obs.record_engine_stats(stats);
        self.obs
            .cep_stage_nanos
            .record(u64::try_from(cep_time.as_nanos()).unwrap_or(u64::MAX));
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        events_total: usize,
        events_relayed: usize,
        matches: Vec<Match>,
        extractor_stats: EngineStats,
        filter_time: Duration,
        cep_time: Duration,
        filter_faults: usize,
        pool: Option<PoolStats>,
    ) -> DlacepReport {
        // The engine emitted fused-plan matches (unit binding names);
        // attribute them back to their source patterns with the original
        // names restored.
        let attributed = self.shared.attribute_all(&matches);
        DlacepReport {
            matches: attributed.union,
            per_pattern: attributed.per_pattern,
            events_total,
            events_relayed,
            filter_time,
            cep_time,
            filtering_ratio: if events_total == 0 {
                0.0
            } else {
                1.0 - events_relayed as f64 / events_total as f64
            },
            extractor_stats,
            filter_faults,
            pool,
            obs: self.obs.snapshot_if_enabled(),
        }
    }
}

/// Merge one window's marks into the relayed-event map, failing open on a
/// wrong-length mark vector. Shared by the serial and pooled paths so both
/// apply identical semantics.
fn apply_marks(
    window: &[PrimitiveEvent],
    marks: Vec<bool>,
    filter_faults: &mut usize,
    relayed: &mut BTreeMap<u64, PrimitiveEvent>,
) {
    // A mark vector of the wrong length is a filter defect, not a caller
    // bug: fail open on this window (relay everything) so a broken filter
    // degrades throughput, never recall.
    let marks = if marks.len() == window.len() {
        marks
    } else {
        *filter_faults += 1;
        vec![true; window.len()]
    };
    for (ev, keep) in window.iter().zip(marks) {
        if keep {
            relayed.entry(ev.id.0).or_insert_with(|| ev.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{OracleFilter, PassthroughFilter};
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_data::label::ground_truth_matches;
    use dlacep_events::{EventStream, TypeId, WindowSpec};

    const A: TypeId = TypeId(0);
    const B: TypeId = TypeId(1);
    const C: TypeId = TypeId(2);

    fn seq_ab(w: u64) -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(A), "a"),
                PatternExpr::event(TypeSet::single(B), "b"),
            ]),
            vec![],
            WindowSpec::Count(w),
        )
    }

    fn noisy_stream(n: usize) -> EventStream {
        // Sparse A..B pairs in a sea of C noise.
        let mut s = EventStream::new();
        for i in 0..n {
            let t = match i % 17 {
                3 => A,
                6 => B,
                _ => C,
            };
            s.push(t, i as u64, vec![0.0]);
        }
        s
    }

    fn keys(ms: &[Match]) -> std::collections::BTreeSet<Vec<dlacep_events::EventId>> {
        ms.iter().map(|m| m.event_ids.clone()).collect()
    }

    #[test]
    fn oracle_pipeline_recovers_all_matches() {
        let p = seq_ab(8);
        let s = noisy_stream(200);
        let truth = ground_truth_matches(&p, s.events());
        assert!(!truth.is_empty());
        let dl = Dlacep::new(p.clone(), OracleFilter::new(p)).unwrap();
        let report = dl.run(s.events());
        assert_eq!(keys(&report.matches), keys(&truth));
        assert!(
            report.filtering_ratio > 0.5,
            "ratio {}",
            report.filtering_ratio
        );
    }

    #[test]
    fn no_false_positives_by_id_constraint() {
        // Whatever the filter does, emitted matches must be a subset of the
        // exact set (§4.4) — test with passthrough and with oracle.
        let p = seq_ab(5);
        let s = noisy_stream(150);
        let truth = keys(&ground_truth_matches(&p, s.events()));
        let pass = Dlacep::new(p.clone(), PassthroughFilter)
            .unwrap()
            .run(s.events());
        assert!(keys(&pass.matches).is_subset(&truth));
        assert_eq!(keys(&pass.matches), truth, "passthrough loses nothing");
    }

    #[test]
    fn duplicates_from_overlapping_windows_are_erased() {
        let p = seq_ab(4);
        let s = noisy_stream(64);
        let dl = Dlacep::new(p.clone(), PassthroughFilter).unwrap();
        let report = dl.run(s.events());
        // With MarkSize=2W, StepSize=W every event is seen twice; relayed
        // count must still equal the stream length.
        assert_eq!(report.events_relayed, 64);
        assert_eq!(report.events_total, 64);
        assert_eq!(report.filtering_ratio, 0.0);
    }

    #[test]
    fn report_times_and_throughput_populate() {
        let p = seq_ab(4);
        let s = noisy_stream(64);
        let report = Dlacep::new(p.clone(), OracleFilter::new(p))
            .unwrap()
            .run(s.events());
        assert!(report.throughput() > 0.0);
        assert!(report.total_time() >= report.cep_time);
        assert_eq!(
            report.extractor_stats.events_processed,
            report.events_relayed as u64
        );
    }

    #[test]
    fn invalid_assembler_rejected() {
        let p = seq_ab(10);
        let bad = AssemblerConfig {
            mark_size: 4,
            step_size: 1,
        };
        assert!(matches!(
            Dlacep::builder(p, PassthroughFilter).assembler(bad).build(),
            Err(DlacepError::Assembler(_))
        ));
    }

    #[test]
    fn uncompilable_pattern_rejected_at_construction() {
        // An empty SEQ has no positive leaves; the constructor must surface
        // the compile error instead of `run` panicking later.
        let p = Pattern::new(PatternExpr::Seq(vec![]), vec![], WindowSpec::Count(4));
        assert!(matches!(
            Dlacep::new(p, PassthroughFilter),
            Err(DlacepError::Compile(_))
        ));
    }

    /// A filter returning mark vectors of the wrong length.
    struct WrongLengthFilter;

    impl Filter for WrongLengthFilter {
        fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
            vec![false; window.len() / 2]
        }

        fn name(&self) -> &'static str {
            "wrong-length"
        }
    }

    #[test]
    fn wrong_length_marks_fail_open() {
        let p = seq_ab(8);
        let s = noisy_stream(200);
        let truth = ground_truth_matches(&p, s.events());
        assert!(!truth.is_empty());
        let dl = Dlacep::new(p, WrongLengthFilter).unwrap();
        let report = dl.run(s.events());
        // Every window was faulty, every event relayed: full recall, faults
        // counted, no panic.
        assert!(report.filter_faults > 0);
        assert_eq!(report.events_relayed, report.events_total);
        assert_eq!(keys(&report.matches), keys(&truth));
    }

    #[test]
    fn empty_stream_is_fine() {
        let p = seq_ab(4);
        let report = Dlacep::new(p.clone(), OracleFilter::new(p))
            .unwrap()
            .run(&[]);
        assert!(report.matches.is_empty());
        assert_eq!(report.filtering_ratio, 0.0);
    }

    #[test]
    fn pooled_run_is_identical_to_serial() {
        let p = seq_ab(8);
        let s = noisy_stream(400);
        let serial = Dlacep::new(p.clone(), OracleFilter::new(p.clone()))
            .unwrap()
            .run(s.events());

        // Below the shard threshold the full report matches, extractor
        // stats included.
        let par = Parallelism {
            threads: 4,
            min_batch_windows: 1,
            shard_events: 10_000,
        };
        let pooled = Dlacep::builder(p.clone(), OracleFilter::new(p.clone()))
            .parallelism(par)
            .build()
            .unwrap()
            .run(s.events());
        assert_eq!(pooled.matches, serial.matches);
        assert_eq!(pooled.events_relayed, serial.events_relayed);
        assert_eq!(pooled.filter_faults, serial.filter_faults);
        assert_eq!(pooled.extractor_stats, serial.extractor_stats);
        assert!(pooled.pool.is_some(), "pooled run reports pool stats");

        // With sharded CEP the match set and marks are still identical.
        let par = Parallelism {
            threads: 4,
            min_batch_windows: 1,
            shard_events: 8,
        };
        let sharded = Dlacep::builder(p.clone(), OracleFilter::new(p))
            .parallelism(par)
            .build()
            .unwrap()
            .run(s.events());
        assert_eq!(sharded.matches, serial.matches);
        assert_eq!(sharded.events_relayed, serial.events_relayed);
    }
}
