//! Concept-drift handling (paper §4.3, "Model retraining").
//!
//! The paper notes that a trained filter degrades when the live stream no
//! longer matches the training distribution, and names periodic/triggered
//! retraining as the primary mitigation. This module implements the
//! detection half: a [`DriftMonitor`] tracks the filter's *marking rate*
//! (fraction of events marked per window) against its training-time
//! baseline with an exponential moving average, and raises a retraining
//! signal when the rate drifts outside a tolerance band for a sustained
//! number of windows.
//!
//! The marking rate is a deliberately cheap, label-free proxy: under drift,
//! a filter either over-marks (losing throughput silently) or under-marks
//! (losing matches silently) — both move this statistic.

use serde::{Deserialize, Serialize};

/// Configuration of the drift detector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Expected marking rate (measured on the training/test split).
    pub baseline_rate: f64,
    /// Relative deviation tolerated before a window counts as drifted
    /// (e.g. 0.5 = ±50%).
    pub tolerance: f64,
    /// EMA smoothing factor in `(0, 1]`; smaller = smoother.
    pub alpha: f64,
    /// Consecutive drifted windows before signaling.
    pub patience: usize,
}

impl DriftConfig {
    /// A permissive default: ±50% band, EMA α = 0.05, 20-window patience.
    pub fn with_baseline(baseline_rate: f64) -> Self {
        Self {
            baseline_rate,
            tolerance: 0.5,
            alpha: 0.05,
            patience: 20,
        }
    }

    /// Validate the configuration (`alpha` in `(0, 1]`, `tolerance >= 0`).
    /// The runtime surfaces this as a typed error before any monitor is
    /// built.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("drift alpha must be in (0, 1], got {}", self.alpha));
        }
        if self.tolerance.is_nan() || self.tolerance < 0.0 {
            return Err(format!(
                "drift tolerance must be non-negative, got {}",
                self.tolerance
            ));
        }
        Ok(())
    }
}

/// Current drift verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftState {
    /// Marking rate within the tolerance band.
    Stable,
    /// Out of band, but not yet for `patience` consecutive windows.
    Suspect,
    /// Sustained deviation: retraining recommended.
    Drifted,
}

/// Mutable state of a [`DriftMonitor`], captured for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftMonitorState {
    /// Smoothed marking rate, if any windows were observed.
    pub ema: Option<f64>,
    /// Consecutive out-of-band windows.
    pub consecutive_out: u64,
    /// Total windows observed.
    pub windows_seen: u64,
}

/// Streaming drift monitor over per-window marking rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftMonitor {
    config: DriftConfig,
    ema: Option<f64>,
    consecutive_out: usize,
    windows_seen: u64,
}

impl DriftMonitor {
    /// Build from a configuration.
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.alpha > 0.0 && config.alpha <= 1.0, "alpha in (0, 1]");
        assert!(config.tolerance >= 0.0, "tolerance must be non-negative");
        Self {
            config,
            ema: None,
            consecutive_out: 0,
            windows_seen: 0,
        }
    }

    /// Feed the marks of one assembler window; returns the updated state.
    pub fn observe_marks(&mut self, marks: &[bool]) -> DriftState {
        if marks.is_empty() {
            return self.state();
        }
        let rate = marks.iter().filter(|&&m| m).count() as f64 / marks.len() as f64;
        self.observe_rate(rate)
    }

    /// Feed a precomputed marking rate.
    pub fn observe_rate(&mut self, rate: f64) -> DriftState {
        self.windows_seen += 1;
        let a = self.config.alpha;
        let ema = match self.ema {
            None => rate,
            Some(prev) => prev * (1.0 - a) + rate * a,
        };
        self.ema = Some(ema);
        let lo = self.config.baseline_rate * (1.0 - self.config.tolerance);
        let hi = self.config.baseline_rate * (1.0 + self.config.tolerance);
        if ema < lo || ema > hi {
            self.consecutive_out += 1;
        } else {
            self.consecutive_out = 0;
        }
        self.state()
    }

    /// Current verdict.
    pub fn state(&self) -> DriftState {
        if self.consecutive_out >= self.config.patience {
            DriftState::Drifted
        } else if self.consecutive_out > 0 {
            DriftState::Suspect
        } else {
            DriftState::Stable
        }
    }

    /// Smoothed marking rate, if any windows were observed.
    pub fn smoothed_rate(&self) -> Option<f64> {
        self.ema
    }

    /// Capture the mutable detector state (EMA, out-of-band streak, window
    /// count) for checkpointing. The configuration is not part of the
    /// snapshot — recovery rebuilds the monitor from the runtime config and
    /// re-injects only the trajectory.
    pub fn export_state(&self) -> DriftMonitorState {
        DriftMonitorState {
            ema: self.ema,
            consecutive_out: self.consecutive_out as u64,
            windows_seen: self.windows_seen,
        }
    }

    /// Re-inject a previously exported trajectory.
    pub fn import_state(&mut self, state: DriftMonitorState) {
        self.ema = state.ema;
        self.consecutive_out = state.consecutive_out as usize;
        self.windows_seen = state.windows_seen;
    }

    /// Reset after retraining with a fresh baseline.
    pub fn rebaseline(&mut self, baseline_rate: f64) {
        self.config.baseline_rate = baseline_rate;
        self.ema = None;
        self.consecutive_out = 0;
    }

    /// Override the baseline without touching the trajectory. Restore path
    /// only: [`DriftMonitorState`] excludes the config, so a monitor that
    /// was rebaselined mid-run gets its effective baseline re-applied after
    /// `import_state`.
    pub fn set_baseline_rate(&mut self, baseline_rate: f64) {
        self.config.baseline_rate = baseline_rate;
    }

    /// The effective baseline marking rate (post-rebaseline, if any).
    pub fn baseline_rate(&self) -> f64 {
        self.config.baseline_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(baseline: f64) -> DriftMonitor {
        DriftMonitor::new(DriftConfig {
            baseline_rate: baseline,
            tolerance: 0.5,
            alpha: 0.5,
            patience: 3,
        })
    }

    #[test]
    fn stable_under_baseline_rates() {
        let mut m = monitor(0.2);
        for _ in 0..50 {
            assert_eq!(m.observe_rate(0.22), DriftState::Stable);
        }
    }

    #[test]
    fn sustained_overmarking_signals_drift() {
        let mut m = monitor(0.2);
        let mut last = DriftState::Stable;
        for _ in 0..20 {
            last = m.observe_rate(0.9);
        }
        assert_eq!(last, DriftState::Drifted);
        assert!(m.smoothed_rate().unwrap() > 0.8);
    }

    #[test]
    fn sustained_undermarking_signals_drift() {
        let mut m = monitor(0.4);
        let mut last = DriftState::Stable;
        for _ in 0..20 {
            last = m.observe_rate(0.01);
        }
        assert_eq!(last, DriftState::Drifted);
    }

    #[test]
    fn transient_spike_only_suspect() {
        let mut m = monitor(0.2);
        assert_eq!(m.observe_rate(0.95), DriftState::Suspect);
        // Recovery resets the counter.
        for _ in 0..5 {
            m.observe_rate(0.2);
        }
        assert_eq!(m.state(), DriftState::Stable);
    }

    #[test]
    fn observe_marks_counts_rate() {
        let mut m = monitor(0.5);
        let state = m.observe_marks(&[true, false, true, false]);
        assert_eq!(state, DriftState::Stable);
        assert!((m.smoothed_rate().unwrap() - 0.5).abs() < 1e-12);
        // Empty window is a no-op.
        let before = m.smoothed_rate();
        m.observe_marks(&[]);
        assert_eq!(m.smoothed_rate(), before);
    }

    #[test]
    fn rebaseline_resets_state() {
        let mut m = monitor(0.2);
        for _ in 0..10 {
            m.observe_rate(0.9);
        }
        assert_eq!(m.state(), DriftState::Drifted);
        m.rebaseline(0.9);
        assert_eq!(m.state(), DriftState::Stable);
        assert_eq!(m.observe_rate(0.9), DriftState::Stable);
    }
}
