//! Model persistence: save and load trained filters.
//!
//! Training to convergence is the expensive phase of DLACEP (hours to days
//! in the paper); a deployment trains once per pattern and reloads the
//! weights at startup. The serialized bundle carries the network, the
//! embedder (type-slot mapping), and the marking threshold, so a reloaded
//! filter behaves identically.
//!
//! On disk a bundle is the JSON payload wrapped in a `dlacep-dur` frame —
//! magic `b"DMDL"`, format version, length, CRC32 — and written atomically
//! (tmp file + fsync + rename). A crash mid-save leaves the previous bundle
//! intact, and a truncated or bit-flipped file is detected as
//! [`PersistError::Corrupt`] instead of being half-parsed: a model that
//! loads is a model that saved completely.

use crate::embed::EventEmbedder;
use crate::filter::{EventNetFilter, WindowNetFilter};
use crate::model::{EventNetwork, WindowNetwork};
use crate::quantized::QuantizedFilter;
use dlacep_dur::{atomic_write_file, decode_frame, encode_frame, CodecError, Decoder, Encoder};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Frame magic of a model bundle file.
const BUNDLE_MAGIC: [u8; 4] = *b"DMDL";
/// Current bundle format version.
const BUNDLE_VERSION: u16 = 1;
/// Frame magic of a quantized (int8) filter bundle file.
const QUANT_MAGIC: [u8; 4] = *b"DMQ8";
/// Current quantized-bundle format version.
const QUANT_VERSION: u16 = 1;

/// Serialized form of an event-network filter.
#[derive(Serialize, Deserialize)]
struct EventNetBundle {
    network: EventNetwork,
    embedder: EventEmbedder,
    threshold: Option<f32>,
}

/// Serialized form of a window-network filter.
#[derive(Serialize, Deserialize)]
struct WindowNetBundle {
    network: WindowNetwork,
    embedder: EventEmbedder,
}

/// Persistence error.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// The frame validated but the JSON payload is malformed — a
    /// version/logic mismatch, not disk damage.
    Format(serde_json::Error),
    /// The file is damaged: truncated, bit-flipped, wrong magic, or from a
    /// future format version. The payload was never parsed.
    Corrupt(CodecError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(e) => write!(f, "bundle format error: {e}"),
            PersistError::Corrupt(e) => write!(f, "bundle corrupt: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

fn encode_bundle<T: Serialize>(bundle: &T) -> Result<Vec<u8>, PersistError> {
    let json = serde_json::to_string(bundle)?;
    Ok(encode_frame(BUNDLE_MAGIC, BUNDLE_VERSION, json.as_bytes()))
}

fn decode_bundle<T: Deserialize>(bytes: &[u8]) -> Result<T, PersistError> {
    let (_version, payload) =
        decode_frame(BUNDLE_MAGIC, BUNDLE_VERSION, bytes).map_err(PersistError::Corrupt)?;
    let json = std::str::from_utf8(payload).map_err(|_| {
        PersistError::Corrupt(CodecError::Malformed("bundle payload is not UTF-8".into()))
    })?;
    Ok(serde_json::from_str(json)?)
}

fn save_bundle<T: Serialize>(bundle: &T, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let framed = encode_bundle(bundle)?;
    atomic_write_file(path.as_ref(), &framed)?;
    Ok(())
}

fn load_bundle<T: Deserialize>(path: impl AsRef<Path>) -> Result<T, PersistError> {
    let bytes = std::fs::read(path)?;
    decode_bundle(&bytes)
}

/// Encode an event-network filter into the framed `DMDL` byte form written
/// by [`save_event_filter`], without touching the filesystem. The model
/// registry stores these bytes as checkpoint and registry payloads.
pub fn encode_event_filter(filter: &EventNetFilter) -> Result<Vec<u8>, PersistError> {
    encode_bundle(&EventNetBundle {
        network: filter.network.clone(),
        embedder: filter.embedder.clone(),
        threshold: filter.threshold,
    })
}

/// Decode bytes produced by [`encode_event_filter`].
pub fn decode_event_filter(bytes: &[u8]) -> Result<EventNetFilter, PersistError> {
    let bundle: EventNetBundle = decode_bundle(bytes)?;
    Ok(EventNetFilter {
        network: bundle.network,
        embedder: bundle.embedder,
        threshold: bundle.threshold,
    })
}

/// Encode a quantized filter into the framed `DMQ8` byte form written by
/// [`save_quantized_filter`], without touching the filesystem.
pub fn encode_quantized_filter(filter: &QuantizedFilter) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put(filter);
    encode_frame(QUANT_MAGIC, QUANT_VERSION, &e.into_bytes())
}

/// Decode bytes produced by [`encode_quantized_filter`].
pub fn decode_quantized_filter(bytes: &[u8]) -> Result<QuantizedFilter, PersistError> {
    let (_version, payload) =
        decode_frame(QUANT_MAGIC, QUANT_VERSION, bytes).map_err(PersistError::Corrupt)?;
    let mut d = Decoder::new(payload);
    let filter: QuantizedFilter = d.get().map_err(PersistError::Corrupt)?;
    d.finish().map_err(PersistError::Corrupt)?;
    Ok(filter)
}

/// Save an event-network filter.
pub fn save_event_filter(
    filter: &EventNetFilter,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    save_bundle(
        &EventNetBundle {
            network: filter.network.clone(),
            embedder: filter.embedder.clone(),
            threshold: filter.threshold,
        },
        path,
    )
}

/// Load an event-network filter.
pub fn load_event_filter(path: impl AsRef<Path>) -> Result<EventNetFilter, PersistError> {
    let bundle: EventNetBundle = load_bundle(path)?;
    Ok(EventNetFilter {
        network: bundle.network,
        embedder: bundle.embedder,
        threshold: bundle.threshold,
    })
}

/// Save a window-network filter.
pub fn save_window_filter(
    filter: &WindowNetFilter,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    save_bundle(
        &WindowNetBundle {
            network: filter.network.clone(),
            embedder: filter.embedder.clone(),
        },
        path,
    )
}

/// Load a window-network filter.
pub fn load_window_filter(path: impl AsRef<Path>) -> Result<WindowNetFilter, PersistError> {
    let bundle: WindowNetBundle = load_bundle(path)?;
    Ok(WindowNetFilter {
        network: bundle.network,
        embedder: bundle.embedder,
    })
}

/// Save a quantized filter. Unlike the f32 bundles (JSON payload), the
/// quantized bundle is fully binary — int8 weight matrices round-trip
/// through the `dlacep-dur` codec byte-exactly, so a reloaded filter marks
/// identically to the saved one. Same framing guarantees: atomic write,
/// CRC32, magic `b"DMQ8"`.
pub fn save_quantized_filter(
    filter: &QuantizedFilter,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    atomic_write_file(path.as_ref(), &encode_quantized_filter(filter))?;
    Ok(())
}

/// Load a quantized filter saved by [`save_quantized_filter`].
pub fn load_quantized_filter(path: impl AsRef<Path>) -> Result<QuantizedFilter, PersistError> {
    let bytes = std::fs::read(path)?;
    decode_quantized_filter(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::model::NetworkConfig;
    use dlacep_cep::TypeSet;
    use dlacep_events::{PrimitiveEvent, TypeId};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dlacep_persist_{name}_{}.json", std::process::id()))
    }

    fn events() -> Vec<PrimitiveEvent> {
        (0..6)
            .map(|i| PrimitiveEvent::new(i, TypeId((i % 3) as u32), i, vec![0.5]))
            .collect()
    }

    fn sample_event_filter() -> EventNetFilter {
        let embedder = EventEmbedder::new(&TypeSet::new(vec![TypeId(0), TypeId(1)]), 1);
        EventNetFilter {
            network: EventNetwork::new(NetworkConfig::small(embedder.dim())),
            embedder,
            threshold: Some(0.3),
        }
    }

    #[test]
    fn event_filter_roundtrip_preserves_marks() {
        let filter = sample_event_filter();
        let path = tmp("event");
        save_event_filter(&filter, &path).unwrap();
        let loaded = load_event_filter(&path).unwrap();
        let evs = events();
        assert_eq!(filter.mark(&evs), loaded.mark(&evs));
        assert_eq!(loaded.threshold, Some(0.3));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn window_filter_roundtrip_preserves_decision() {
        let embedder = EventEmbedder::new(&TypeSet::new(vec![TypeId(0)]), 1);
        let filter = WindowNetFilter {
            network: WindowNetwork::new(NetworkConfig::small(embedder.dim())),
            embedder,
        };
        let path = tmp("window");
        save_window_filter(&filter, &path).unwrap();
        let loaded = load_window_filter(&path).unwrap();
        let evs = events();
        assert_eq!(filter.mark(&evs), loaded.mark(&evs));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn quantized_filter_roundtrip_is_byte_exact() {
        let filter = sample_event_filter();
        let evs = events();
        let q = QuantizedFilter::quantize(&filter, &[&evs]).unwrap();
        let path = tmp("quant");
        save_quantized_filter(&q, &path).unwrap();
        let loaded = load_quantized_filter(&path).unwrap();
        assert_eq!(q, loaded);
        assert_eq!(q.mark(&evs), loaded.mark(&evs));
        assert_eq!(loaded.threshold, Some(0.3));
        // Saving the reloaded filter reproduces the same bytes.
        let first = std::fs::read(&path).unwrap();
        save_quantized_filter(&loaded, &path).unwrap();
        assert_eq!(first, std::fs::read(&path).unwrap());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn quantized_bundle_rejects_f32_magic_and_corruption() {
        let filter = sample_event_filter();
        let evs = events();
        let q = QuantizedFilter::quantize(&filter, &[&evs]).unwrap();
        let path = tmp("quant_corrupt");
        // An f32 bundle is not a quantized bundle (wrong magic).
        save_event_filter(&filter, &path).unwrap();
        assert!(matches!(
            load_quantized_filter(&path),
            Err(PersistError::Corrupt(_))
        ));
        // Bit flips and truncation are detected.
        save_quantized_filter(&q, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let mut flipped = clean.clone();
        flipped[clean.len() / 2] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            load_quantized_filter(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::write(&path, &clean[..clean.len() - 2]).unwrap();
        assert!(matches!(
            load_quantized_filter(&path),
            Err(PersistError::Corrupt(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn byte_level_codec_matches_file_form() {
        let filter = sample_event_filter();
        let evs = events();
        // Event filter: in-memory bytes are exactly what save writes.
        let bytes = encode_event_filter(&filter).unwrap();
        let path = tmp("bytes_event");
        save_event_filter(&filter, &path).unwrap();
        assert_eq!(bytes, std::fs::read(&path).unwrap());
        let decoded = decode_event_filter(&bytes).unwrap();
        assert_eq!(filter.mark(&evs), decoded.mark(&evs));
        let _ = std::fs::remove_file(path);

        // Quantized filter: byte-exact round trip, corruption detected.
        let q = QuantizedFilter::quantize(&filter, &[&evs]).unwrap();
        let qb = encode_quantized_filter(&q);
        assert_eq!(decode_quantized_filter(&qb).unwrap(), q);
        let mut flipped = qb.clone();
        flipped[qb.len() / 2] ^= 0x04;
        assert!(matches!(
            decode_quantized_filter(&flipped),
            Err(PersistError::Corrupt(_))
        ));
        assert!(
            matches!(decode_event_filter(&qb), Err(PersistError::Corrupt(_))),
            "wrong magic is corrupt, not a parse error"
        );
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            load_event_filter("/definitely/not/a/path.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn load_unframed_garbage_is_corrupt() {
        let path = tmp("garbage");
        std::fs::write(&path, "not a bundle at all").unwrap();
        assert!(matches!(
            load_event_filter(&path),
            Err(PersistError::Corrupt(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_bundle_is_corrupt() {
        let path = tmp("truncated");
        save_event_filter(&sample_event_filter(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Every proper prefix must be rejected as corrupt, never half-parsed.
        for cut in [0, 3, 13, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(load_event_filter(&path), Err(PersistError::Corrupt(_))),
                "prefix of {cut} bytes must be corrupt"
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bit_flipped_bundle_is_corrupt() {
        let path = tmp("bitflip");
        save_event_filter(&sample_event_filter(), &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit in the header, the middle, and the last byte.
        for pos in [5, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(load_event_filter(&path), Err(PersistError::Corrupt(_))),
                "bit flip at {pos} must be corrupt"
            );
        }
        // The untouched bytes still load.
        std::fs::write(&path, &clean).unwrap();
        assert!(load_event_filter(&path).is_ok());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let path = tmp("atomic");
        save_event_filter(&sample_event_filter(), &path).unwrap();
        let tmp_path = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_str().unwrap()
        ));
        assert!(!tmp_path.exists(), "tmp file must be renamed away");
        let _ = std::fs::remove_file(path);
    }
}
