//! Model persistence: save and load trained filters as JSON.
//!
//! Training to convergence is the expensive phase of DLACEP (hours to days
//! in the paper); a deployment trains once per pattern and reloads the
//! weights at startup. The serialized bundle carries the network, the
//! embedder (type-slot mapping), and the marking threshold, so a reloaded
//! filter behaves identically.

use crate::embed::EventEmbedder;
use crate::filter::{EventNetFilter, WindowNetFilter};
use crate::model::{EventNetwork, WindowNetwork};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Serialized form of an event-network filter.
#[derive(Serialize, Deserialize)]
struct EventNetBundle {
    network: EventNetwork,
    embedder: EventEmbedder,
    threshold: Option<f32>,
}

/// Serialized form of a window-network filter.
#[derive(Serialize, Deserialize)]
struct WindowNetBundle {
    network: WindowNetwork,
    embedder: EventEmbedder,
}

/// Persistence error.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed bundle.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(e) => write!(f, "bundle format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Save an event-network filter.
pub fn save_event_filter(
    filter: &EventNetFilter,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let bundle = EventNetBundle {
        network: filter.network.clone(),
        embedder: filter.embedder.clone(),
        threshold: filter.threshold,
    };
    let json = serde_json::to_string(&bundle)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Load an event-network filter.
pub fn load_event_filter(path: impl AsRef<Path>) -> Result<EventNetFilter, PersistError> {
    let json = std::fs::read_to_string(path)?;
    let bundle: EventNetBundle = serde_json::from_str(&json)?;
    Ok(EventNetFilter {
        network: bundle.network,
        embedder: bundle.embedder,
        threshold: bundle.threshold,
    })
}

/// Save a window-network filter.
pub fn save_window_filter(
    filter: &WindowNetFilter,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let bundle = WindowNetBundle {
        network: filter.network.clone(),
        embedder: filter.embedder.clone(),
    };
    let json = serde_json::to_string(&bundle)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Load a window-network filter.
pub fn load_window_filter(path: impl AsRef<Path>) -> Result<WindowNetFilter, PersistError> {
    let json = std::fs::read_to_string(path)?;
    let bundle: WindowNetBundle = serde_json::from_str(&json)?;
    Ok(WindowNetFilter {
        network: bundle.network,
        embedder: bundle.embedder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::model::NetworkConfig;
    use dlacep_cep::TypeSet;
    use dlacep_events::{PrimitiveEvent, TypeId};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dlacep_persist_{name}_{}.json", std::process::id()))
    }

    fn events() -> Vec<PrimitiveEvent> {
        (0..6)
            .map(|i| PrimitiveEvent::new(i, TypeId((i % 3) as u32), i, vec![0.5]))
            .collect()
    }

    #[test]
    fn event_filter_roundtrip_preserves_marks() {
        let embedder = EventEmbedder::new(&TypeSet::new(vec![TypeId(0), TypeId(1)]), 1);
        let filter = EventNetFilter {
            network: EventNetwork::new(NetworkConfig::small(embedder.dim())),
            embedder,
            threshold: Some(0.3),
        };
        let path = tmp("event");
        save_event_filter(&filter, &path).unwrap();
        let loaded = load_event_filter(&path).unwrap();
        let evs = events();
        assert_eq!(filter.mark(&evs), loaded.mark(&evs));
        assert_eq!(loaded.threshold, Some(0.3));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn window_filter_roundtrip_preserves_decision() {
        let embedder = EventEmbedder::new(&TypeSet::new(vec![TypeId(0)]), 1);
        let filter = WindowNetFilter {
            network: WindowNetwork::new(NetworkConfig::small(embedder.dim())),
            embedder,
        };
        let path = tmp("window");
        save_window_filter(&filter, &path).unwrap();
        let loaded = load_window_filter(&path).unwrap();
        let evs = events();
        assert_eq!(filter.mark(&evs), loaded.mark(&evs));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            load_event_filter("/definitely/not/a/path.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(
            load_event_filter(&path),
            Err(PersistError::Format(_))
        ));
        let _ = std::fs::remove_file(path);
    }
}
