//! Head-to-head evaluation of DLACEP against exact CEP (paper §5.1):
//! throughput gain, recall, precision/F1 over the emitted match sets, FN%.

use crate::filter::Filter;
use crate::pipeline::{Dlacep, DlacepReport};
use dlacep_cep::engine::CepEngine;
use dlacep_cep::{EngineStats, Match, NfaEngine, Pattern};
use dlacep_events::{EventId, PrimitiveEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Result of comparing one ACEP run against the ECEP reference on the same
/// stream prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Exact match count.
    pub ecep_matches: usize,
    /// ACEP match count.
    pub acep_matches: usize,
    /// Matches found by both (set intersection on event-id sets).
    pub common_matches: usize,
    /// ECEP wall time in seconds.
    pub ecep_secs: f64,
    /// ACEP wall time (filter + extraction) in seconds.
    pub acep_secs: f64,
    /// Events per second, exact engine.
    pub ecep_throughput: f64,
    /// Events per second, DLACEP.
    pub acep_throughput: f64,
    /// `acep_throughput / ecep_throughput` (the paper's headline metric).
    pub throughput_gain: f64,
    /// |common| / |ecep| — fraction of true matches recovered.
    pub recall: f64,
    /// |common| / |acep| — 1.0 unless the pattern has negation (§4.4).
    pub precision: f64,
    /// Harmonic mean of recall and precision.
    pub f1: f64,
    /// Missed matches as a percentage of the exact set (Fig. 11).
    pub fn_percent: f64,
    /// Fraction of events filtered out before extraction.
    pub filtering_ratio: f64,
    /// Partial matches created by the exact engine.
    pub ecep_partials: u64,
    /// Partial matches created by DLACEP's extractor.
    pub acep_partials: u64,
}

fn keyset(ms: &[Match]) -> BTreeSet<Vec<EventId>> {
    ms.iter().map(|m| m.event_ids.clone()).collect()
}

/// Run the exact NFA engine over the events, timing it.
pub fn run_ecep(
    pattern: &Pattern,
    events: &[PrimitiveEvent],
) -> (Vec<Match>, Duration, EngineStats) {
    let start = Instant::now();
    let mut engine = NfaEngine::new(pattern).expect("pattern compiles");
    let matches = engine.run(events);
    (matches, start.elapsed(), *engine.stats())
}

/// Compare match sets and timings into a [`ComparisonReport`].
pub fn compare_runs(
    events_total: usize,
    ecep_matches: &[Match],
    ecep_time: Duration,
    ecep_stats: &EngineStats,
    acep: &DlacepReport,
) -> ComparisonReport {
    let truth = keyset(ecep_matches);
    let ours = keyset(&acep.matches);
    let common = truth.intersection(&ours).count();
    let recall = if truth.is_empty() {
        1.0
    } else {
        common as f64 / truth.len() as f64
    };
    let precision = if ours.is_empty() {
        1.0
    } else {
        common as f64 / ours.len() as f64
    };
    let f1 = if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    };
    let ecep_secs = ecep_time.as_secs_f64();
    let acep_secs = acep.total_time().as_secs_f64();
    let ecep_throughput = if ecep_secs > 0.0 {
        events_total as f64 / ecep_secs
    } else {
        f64::INFINITY
    };
    let acep_throughput = acep.throughput();
    // Gain is the wall-time ratio, which stays finite and meaningful even
    // when a tiny stream makes one (or both) throughputs infinite.
    let throughput_gain = if acep_secs > 0.0 {
        ecep_secs / acep_secs
    } else if ecep_secs > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    ComparisonReport {
        ecep_matches: truth.len(),
        acep_matches: ours.len(),
        common_matches: common,
        ecep_secs,
        acep_secs,
        ecep_throughput,
        acep_throughput,
        throughput_gain,
        recall,
        precision,
        f1,
        fn_percent: if truth.is_empty() {
            0.0
        } else {
            100.0 * (truth.len() - common) as f64 / truth.len() as f64
        },
        filtering_ratio: acep.filtering_ratio,
        ecep_partials: ecep_stats.partial_matches_created,
        acep_partials: acep.extractor_stats.partial_matches_created,
    }
}

/// End-to-end comparison: run ECEP and a DLACEP pipeline on the same prefix.
pub fn compare<F: Filter>(
    pattern: &Pattern,
    events: &[PrimitiveEvent],
    dlacep: &Dlacep<F>,
) -> ComparisonReport {
    let (ecep_matches, ecep_time, ecep_stats) = run_ecep(pattern, events);
    let report = dlacep.run(events);
    compare_runs(events.len(), &ecep_matches, ecep_time, &ecep_stats, &report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::OracleFilter;
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_events::{EventStream, TypeId, WindowSpec};

    const A: TypeId = TypeId(0);
    const B: TypeId = TypeId(1);
    const C: TypeId = TypeId(2);

    fn pattern(w: u64) -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(A), "a"),
                PatternExpr::event(TypeSet::single(B), "b"),
            ]),
            vec![],
            WindowSpec::Count(w),
        )
    }

    fn stream(n: usize) -> EventStream {
        let mut s = EventStream::new();
        for i in 0..n {
            let t = match i % 11 {
                2 => A,
                7 => B,
                _ => C,
            };
            s.push(t, i as u64, vec![0.0]);
        }
        s
    }

    #[test]
    fn oracle_comparison_has_perfect_quality() {
        let p = pattern(8);
        let s = stream(300);
        let dl = Dlacep::new(p.clone(), OracleFilter::new(p.clone())).unwrap();
        let r = compare(&p, s.events(), &dl);
        assert!(r.ecep_matches > 0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.fn_percent, 0.0);
        assert_eq!(r.common_matches, r.ecep_matches);
    }

    #[test]
    fn report_counts_partials_on_both_sides() {
        let p = pattern(8);
        let s = stream(300);
        let dl = Dlacep::new(p.clone(), OracleFilter::new(p.clone())).unwrap();
        let r = compare(&p, s.events(), &dl);
        // The filtered stream is much smaller; so is the partial count.
        assert!(r.acep_partials <= r.ecep_partials);
        assert!(r.filtering_ratio > 0.5);
    }

    fn synthetic_acep(
        matches: Vec<Match>,
        filter_time: Duration,
        cep_time: Duration,
    ) -> DlacepReport {
        DlacepReport {
            per_pattern: vec![matches.clone()],
            matches,
            events_total: 10,
            events_relayed: 0,
            filter_time,
            cep_time,
            filtering_ratio: 1.0,
            extractor_stats: EngineStats::default(),
            filter_faults: 0,
            pool: None,
            obs: None,
        }
    }

    #[test]
    fn both_match_sets_empty_is_perfect_not_nan() {
        let acep = synthetic_acep(Vec::new(), Duration::ZERO, Duration::ZERO);
        let r = compare_runs(10, &[], Duration::ZERO, &EngineStats::default(), &acep);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.fn_percent, 0.0);
        assert_eq!(r.throughput_gain, 1.0);
        assert!(!r.throughput_gain.is_nan());
    }

    #[test]
    fn disjoint_match_sets_give_zero_f1_not_nan() {
        let m1 = Match::from_bindings(vec![("a".into(), vec![EventId(1), EventId(2)])]);
        let m2 = Match::from_bindings(vec![("a".into(), vec![EventId(3), EventId(4)])]);
        let acep = synthetic_acep(vec![m2], Duration::from_millis(1), Duration::from_millis(1));
        let r = compare_runs(
            10,
            &[m1],
            Duration::from_millis(1),
            &EngineStats::default(),
            &acep,
        );
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.f1, 0.0);
        assert_eq!(r.fn_percent, 100.0);
    }

    #[test]
    fn instantaneous_acep_gives_infinite_gain_not_nan() {
        let acep = synthetic_acep(Vec::new(), Duration::ZERO, Duration::ZERO);
        let r = compare_runs(
            10,
            &[],
            Duration::from_millis(5),
            &EngineStats::default(),
            &acep,
        );
        assert!(r.throughput_gain.is_infinite() && r.throughput_gain > 0.0);
        assert!(!r.throughput_gain.is_nan());
    }

    #[test]
    fn gain_is_wall_time_ratio() {
        let acep = synthetic_acep(
            Vec::new(),
            Duration::from_millis(1),
            Duration::from_millis(1),
        );
        let r = compare_runs(
            10,
            &[],
            Duration::from_millis(6),
            &EngineStats::default(),
            &acep,
        );
        assert!((r.throughput_gain - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_truth_gives_perfect_recall() {
        let p = pattern(2); // adjacent A,B never happen in this stream
        let mut s = EventStream::new();
        for i in 0..50 {
            s.push(C, i, vec![0.0]);
        }
        let dl = Dlacep::new(p.clone(), OracleFilter::new(p.clone())).unwrap();
        let r = compare(&p, s.events(), &dl);
        assert_eq!(r.ecep_matches, 0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.fn_percent, 0.0);
    }
}
