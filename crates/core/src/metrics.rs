//! Head-to-head evaluation of DLACEP against exact CEP (paper §5.1):
//! throughput gain, recall, precision/F1 over the emitted match sets, FN%.

use crate::filter::Filter;
use crate::pipeline::{Dlacep, DlacepReport};
use dlacep_cep::engine::CepEngine;
use dlacep_cep::{EngineStats, Match, NfaEngine, Pattern};
use dlacep_events::{EventId, PrimitiveEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Result of comparing one ACEP run against the ECEP reference on the same
/// stream prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Exact match count.
    pub ecep_matches: usize,
    /// ACEP match count.
    pub acep_matches: usize,
    /// Matches found by both (set intersection on event-id sets).
    pub common_matches: usize,
    /// ECEP wall time in seconds.
    pub ecep_secs: f64,
    /// ACEP wall time (filter + extraction) in seconds.
    pub acep_secs: f64,
    /// Events per second, exact engine.
    pub ecep_throughput: f64,
    /// Events per second, DLACEP.
    pub acep_throughput: f64,
    /// `acep_throughput / ecep_throughput` (the paper's headline metric).
    pub throughput_gain: f64,
    /// |common| / |ecep| — fraction of true matches recovered.
    pub recall: f64,
    /// |common| / |acep| — 1.0 unless the pattern has negation (§4.4).
    pub precision: f64,
    /// Harmonic mean of recall and precision.
    pub f1: f64,
    /// Missed matches as a percentage of the exact set (Fig. 11).
    pub fn_percent: f64,
    /// Fraction of events filtered out before extraction.
    pub filtering_ratio: f64,
    /// Partial matches created by the exact engine.
    pub ecep_partials: u64,
    /// Partial matches created by DLACEP's extractor.
    pub acep_partials: u64,
}

fn keyset(ms: &[Match]) -> BTreeSet<Vec<EventId>> {
    ms.iter().map(|m| m.event_ids.clone()).collect()
}

/// Run the exact NFA engine over the events, timing it.
pub fn run_ecep(
    pattern: &Pattern,
    events: &[PrimitiveEvent],
) -> (Vec<Match>, Duration, EngineStats) {
    let start = Instant::now();
    let mut engine = NfaEngine::new(pattern).expect("pattern compiles");
    let matches = engine.run(events);
    (matches, start.elapsed(), *engine.stats())
}

/// Compare match sets and timings into a [`ComparisonReport`].
pub fn compare_runs(
    events_total: usize,
    ecep_matches: &[Match],
    ecep_time: Duration,
    ecep_stats: &EngineStats,
    acep: &DlacepReport,
) -> ComparisonReport {
    let truth = keyset(ecep_matches);
    let ours = keyset(&acep.matches);
    let common = truth.intersection(&ours).count();
    let recall = if truth.is_empty() {
        1.0
    } else {
        common as f64 / truth.len() as f64
    };
    let precision = if ours.is_empty() {
        1.0
    } else {
        common as f64 / ours.len() as f64
    };
    let f1 = if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    };
    let ecep_secs = ecep_time.as_secs_f64();
    let acep_secs = acep.total_time().as_secs_f64();
    let ecep_throughput = if ecep_secs > 0.0 {
        events_total as f64 / ecep_secs
    } else {
        f64::INFINITY
    };
    let acep_throughput = acep.throughput();
    ComparisonReport {
        ecep_matches: truth.len(),
        acep_matches: ours.len(),
        common_matches: common,
        ecep_secs,
        acep_secs,
        ecep_throughput,
        acep_throughput,
        throughput_gain: if ecep_throughput > 0.0 && acep_throughput.is_finite() {
            acep_throughput / ecep_throughput
        } else {
            f64::NAN
        },
        recall,
        precision,
        f1,
        fn_percent: if truth.is_empty() {
            0.0
        } else {
            100.0 * (truth.len() - common) as f64 / truth.len() as f64
        },
        filtering_ratio: acep.filtering_ratio,
        ecep_partials: ecep_stats.partial_matches_created,
        acep_partials: acep.extractor_stats.partial_matches_created,
    }
}

/// End-to-end comparison: run ECEP and a DLACEP pipeline on the same prefix.
pub fn compare<F: Filter>(
    pattern: &Pattern,
    events: &[PrimitiveEvent],
    dlacep: &Dlacep<F>,
) -> ComparisonReport {
    let (ecep_matches, ecep_time, ecep_stats) = run_ecep(pattern, events);
    let report = dlacep.run(events);
    compare_runs(events.len(), &ecep_matches, ecep_time, &ecep_stats, &report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::OracleFilter;
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_events::{EventStream, TypeId, WindowSpec};

    const A: TypeId = TypeId(0);
    const B: TypeId = TypeId(1);
    const C: TypeId = TypeId(2);

    fn pattern(w: u64) -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(A), "a"),
                PatternExpr::event(TypeSet::single(B), "b"),
            ]),
            vec![],
            WindowSpec::Count(w),
        )
    }

    fn stream(n: usize) -> EventStream {
        let mut s = EventStream::new();
        for i in 0..n {
            let t = match i % 11 {
                2 => A,
                7 => B,
                _ => C,
            };
            s.push(t, i as u64, vec![0.0]);
        }
        s
    }

    #[test]
    fn oracle_comparison_has_perfect_quality() {
        let p = pattern(8);
        let s = stream(300);
        let dl = Dlacep::new(p.clone(), OracleFilter::new(p.clone())).unwrap();
        let r = compare(&p, s.events(), &dl);
        assert!(r.ecep_matches > 0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.fn_percent, 0.0);
        assert_eq!(r.common_matches, r.ecep_matches);
    }

    #[test]
    fn report_counts_partials_on_both_sides() {
        let p = pattern(8);
        let s = stream(300);
        let dl = Dlacep::new(p.clone(), OracleFilter::new(p.clone())).unwrap();
        let r = compare(&p, s.events(), &dl);
        // The filtered stream is much smaller; so is the partial count.
        assert!(r.acep_partials <= r.ecep_partials);
        assert!(r.filtering_ratio > 0.5);
    }

    #[test]
    fn empty_truth_gives_perfect_recall() {
        let p = pattern(2); // adjacent A,B never happen in this stream
        let mut s = EventStream::new();
        for i in 0..50 {
            s.push(C, i, vec![0.0]);
        }
        let dl = Dlacep::new(p.clone(), OracleFilter::new(p.clone())).unwrap();
        let r = compare(&p, s.events(), &dl);
        assert_eq!(r.ecep_matches, 0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.fn_percent, 0.0);
    }
}
