//! Fault-tolerant filter guard: a circuit breaker around any [`Filter`].
//!
//! The paper assumes the neural filter is a well-behaved function; in a
//! deployed system it is a model artifact that can be corrupted, poisoned by
//! NaNs from a bad training run, or simply buggy. A [`FilterGuard`] wraps a
//! filter so that none of those faults can take the pipeline down:
//!
//! * every invocation runs under [`std::panic::catch_unwind`];
//! * mark vectors are validated against the window length;
//! * optionally, the filter's raw scores are checked for non-finite values
//!   (a NaN score means the marks cannot be trusted even when the mark
//!   vector itself is well-formed).
//!
//! Every fault **fails open**: the faulty window is relayed in full
//! (passthrough), trading throughput for recall — the same asymmetry that
//! motivates recall-biased thresholds (§4.3). After
//! [`GuardConfig::fault_threshold`] *consecutive* faults the breaker trips
//! to [`BreakerState::Open`]: the filter is not invoked at all and the
//! pipeline degrades to exact-CEP behaviour. After
//! [`GuardConfig::cooldown_windows`] bypassed windows the breaker goes
//! [`BreakerState::HalfOpen`] and probes the filter on one window: success
//! re-closes the breaker, another fault re-opens it.

use crate::filter::Filter;
use dlacep_events::PrimitiveEvent;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What went wrong in one guarded filter invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The filter panicked; the unwind was caught.
    Panicked,
    /// The mark vector length does not match the window length.
    WrongLength {
        /// Marks returned.
        got: usize,
        /// Window length expected.
        want: usize,
    },
    /// A raw score was NaN or infinite.
    NonFiniteScore,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Panicked => write!(f, "filter panicked"),
            FaultKind::WrongLength { got, want } => {
                write!(f, "mark vector length {got}, window length {want}")
            }
            FaultKind::NonFiniteScore => write!(f, "non-finite filter score"),
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: the filter is invoked on every window.
    #[default]
    Closed,
    /// Tripped: the filter is bypassed, windows pass through unfiltered.
    Open,
    /// Cooling down: the next window probes the filter once.
    HalfOpen,
}

impl BreakerState {
    /// Short lowercase label for trace-span and journal annotation,
    /// allocation-free unlike the `Debug` rendering.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Guard configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Consecutive faults that trip the breaker (≥ 1).
    pub fault_threshold: usize,
    /// Windows served in passthrough while [`BreakerState::Open`] before a
    /// half-open probe.
    pub cooldown_windows: usize,
    /// Validate [`Filter::scores`] for non-finite values. Costs one extra
    /// score pass per window on filters that implement it.
    pub validate_scores: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            fault_threshold: 3,
            cooldown_windows: 16,
            validate_scores: false,
        }
    }
}

/// Fault and breaker counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Total faulty invocations (all kinds).
    pub faults_total: u64,
    /// Caught panics.
    pub panics: u64,
    /// Wrong-length mark vectors.
    pub wrong_length: u64,
    /// Non-finite score vectors.
    pub non_finite: u64,
    /// Closed → Open and HalfOpen → Open transitions.
    pub breaker_trips: u64,
    /// HalfOpen → Closed transitions (successful probes).
    pub recoveries: u64,
    /// Windows served while Open without invoking the filter.
    pub windows_bypassed: u64,
}

/// Raw result of one filter invocation computed speculatively (off the
/// guard, e.g. on a worker thread): `None` when the filter panicked,
/// otherwise the marks plus the scores when score validation is enabled.
/// Produced by callers under their own `catch_unwind`, consumed by
/// [`FilterGuard::mark_speculative`].
pub type SpeculativeInvocation = Option<(Vec<bool>, Option<Vec<f32>>)>;

/// Result of one guarded marking call.
#[derive(Debug, Clone)]
pub struct GuardOutcome {
    /// Marks to apply — the filter's on success, all-true on any fault or
    /// bypass (fail open).
    pub marks: Vec<bool>,
    /// The fault, if the invocation was faulty.
    pub fault: Option<FaultKind>,
    /// Whether the underlying filter was actually invoked (false while the
    /// breaker is open).
    pub filter_invoked: bool,
    /// Breaker transitions triggered by this call, in order.
    pub transitions: Vec<(BreakerState, BreakerState)>,
}

impl GuardConfig {
    /// Validate the configuration (`fault_threshold >= 1`). The runtime
    /// surfaces this as a typed error before any guard is built.
    pub fn validate(&self) -> Result<(), String> {
        if self.fault_threshold < 1 {
            return Err("guard fault_threshold must be at least 1".into());
        }
        Ok(())
    }
}

/// Full mutable state of a [`FilterGuard`], captured for checkpointing.
/// The wrapped filter itself is *not* part of the snapshot — recovery
/// reconstructs it (e.g. by reloading the persisted model) and re-injects
/// only the breaker trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardState {
    /// Breaker position.
    pub state: BreakerState,
    /// Consecutive faults seen while counting toward a trip.
    pub consecutive_faults: u64,
    /// Windows bypassed in the current Open cooldown.
    pub open_windows: u64,
    /// Fault and breaker counters.
    pub stats: GuardStats,
}

/// A circuit breaker wrapped around a [`Filter`].
pub struct FilterGuard<F> {
    filter: F,
    config: GuardConfig,
    state: BreakerState,
    consecutive_faults: usize,
    open_windows: usize,
    stats: GuardStats,
}

impl<F: Filter> FilterGuard<F> {
    /// Wrap `filter` under `config`.
    pub fn new(filter: F, config: GuardConfig) -> Self {
        assert!(
            config.fault_threshold >= 1,
            "fault_threshold must be at least 1"
        );
        Self {
            filter,
            config,
            state: BreakerState::Closed,
            consecutive_faults: 0,
            open_windows: 0,
            stats: GuardStats::default(),
        }
    }

    /// The wrapped filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The guard's configuration (speculative executors read
    /// `validate_scores` to know whether to compute scores).
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Fault and breaker counters.
    pub fn stats(&self) -> &GuardStats {
        &self.stats
    }

    /// Capture the breaker trajectory for checkpointing.
    pub fn export_state(&self) -> GuardState {
        GuardState {
            state: self.state,
            consecutive_faults: self.consecutive_faults as u64,
            open_windows: self.open_windows as u64,
            stats: self.stats,
        }
    }

    /// Atomically replace the wrapped filter, returning the old one. Used
    /// by the retrain supervisor for a validated hot swap: the new filter
    /// starts with a clean consecutive-fault count (its faults are not the
    /// old model's faults), while the breaker state and the cumulative
    /// stats are deliberately left untouched — a swap performed while the
    /// breaker is Open still has to pass the half-open probe like any other
    /// recovery.
    pub fn swap_filter(&mut self, new: F) -> F {
        self.consecutive_faults = 0;
        std::mem::replace(&mut self.filter, new)
    }

    /// Re-inject a previously exported breaker trajectory.
    pub fn import_state(&mut self, state: GuardState) {
        self.state = state.state;
        self.consecutive_faults = state.consecutive_faults as usize;
        self.open_windows = state.open_windows as usize;
        self.stats = state.stats;
    }

    /// Guarded marking of one assembler window. Never panics; always returns
    /// a mark vector of `window.len()`.
    pub fn mark(&mut self, window: &[PrimitiveEvent]) -> GuardOutcome {
        let mut transitions = Vec::new();
        if self.state == BreakerState::Open {
            if self.open_windows < self.config.cooldown_windows {
                self.open_windows += 1;
                self.stats.windows_bypassed += 1;
                return GuardOutcome {
                    marks: vec![true; window.len()],
                    fault: None,
                    filter_invoked: false,
                    transitions,
                };
            }
            self.transition(BreakerState::HalfOpen, &mut transitions);
        }

        let result = self.invoke(window);
        self.settle(window.len(), result, transitions)
    }

    /// Like [`FilterGuard::mark`], but consuming a filter invocation that
    /// was already computed speculatively (on a worker thread, under the
    /// caller's own `catch_unwind`). Validation, fault accounting and
    /// breaker transitions are identical to a live `mark` call.
    ///
    /// Speculation is only meaningful while the breaker is
    /// [`BreakerState::Closed`] — in any other state the guard itself
    /// decides whether the filter runs at all, so this falls back to a
    /// live [`FilterGuard::mark`] call and the precomputed result is
    /// discarded.
    pub fn mark_speculative(
        &mut self,
        window: &[PrimitiveEvent],
        raw: SpeculativeInvocation,
    ) -> GuardOutcome {
        if self.state != BreakerState::Closed {
            return self.mark(window);
        }
        let result = self.validate(window.len(), raw);
        self.settle(window.len(), result, Vec::new())
    }

    /// Shared post-invocation bookkeeping for live and speculative marks:
    /// fault counters, consecutive-fault tracking, breaker transitions,
    /// fail-open mark substitution.
    fn settle(
        &mut self,
        window_len: usize,
        result: Result<Vec<bool>, FaultKind>,
        mut transitions: Vec<(BreakerState, BreakerState)>,
    ) -> GuardOutcome {
        let fault = match result {
            Ok(marks) => {
                // Healthy invocation.
                self.consecutive_faults = 0;
                if self.state == BreakerState::HalfOpen {
                    self.stats.recoveries += 1;
                    self.transition(BreakerState::Closed, &mut transitions);
                }
                return GuardOutcome {
                    marks,
                    fault: None,
                    filter_invoked: true,
                    transitions,
                };
            }
            Err(kind) => kind,
        };

        self.stats.faults_total += 1;
        match fault {
            FaultKind::Panicked => self.stats.panics += 1,
            FaultKind::WrongLength { .. } => self.stats.wrong_length += 1,
            FaultKind::NonFiniteScore => self.stats.non_finite += 1,
        }
        self.consecutive_faults += 1;
        if self.state == BreakerState::HalfOpen {
            // Failed probe: straight back to Open for another cooldown.
            self.stats.breaker_trips += 1;
            self.open_windows = 0;
            self.transition(BreakerState::Open, &mut transitions);
        } else if self.consecutive_faults >= self.config.fault_threshold {
            self.stats.breaker_trips += 1;
            self.open_windows = 0;
            self.transition(BreakerState::Open, &mut transitions);
        }
        GuardOutcome {
            marks: vec![true; window_len],
            fault: Some(fault),
            filter_invoked: true,
            transitions,
        }
    }

    fn transition(&mut self, to: BreakerState, log: &mut Vec<(BreakerState, BreakerState)>) {
        log.push((self.state, to));
        self.state = to;
    }

    /// One validated filter invocation under `catch_unwind`.
    fn invoke(&self, window: &[PrimitiveEvent]) -> Result<Vec<bool>, FaultKind> {
        let validate = self.config.validate_scores;
        let filter = &self.filter;
        let raw = catch_unwind(AssertUnwindSafe(|| {
            let marks = filter.mark(window);
            let scores = if validate {
                filter.scores(window)
            } else {
                None
            };
            (marks, scores)
        }))
        .ok();
        self.validate(window.len(), raw)
    }

    /// Validate a raw invocation result exactly as a live call would:
    /// length first, then score finiteness.
    fn validate(&self, want: usize, raw: SpeculativeInvocation) -> Result<Vec<bool>, FaultKind> {
        let (marks, scores) = raw.ok_or(FaultKind::Panicked)?;
        if marks.len() != want {
            return Err(FaultKind::WrongLength {
                got: marks.len(),
                want,
            });
        }
        if let Some(scores) = scores {
            if scores.iter().any(|s| !s.is_finite()) {
                return Err(FaultKind::NonFiniteScore);
            }
        }
        Ok(marks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::PassthroughFilter;
    use dlacep_events::{EventStream, TypeId};

    fn window(n: usize) -> EventStream {
        let mut s = EventStream::new();
        for i in 0..n {
            s.push(TypeId(0), i as u64, vec![]);
        }
        s
    }

    /// Fails in a configurable way for the first `faulty_calls` invocations.
    /// Atomic state because [`Filter`] is `Sync`.
    struct Flaky {
        faulty_calls: std::sync::atomic::AtomicUsize,
        kind: &'static str,
    }

    impl Filter for Flaky {
        fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
            use std::sync::atomic::Ordering;
            let left = self.faulty_calls.load(Ordering::Relaxed);
            if left == 0 {
                return vec![false; window.len()];
            }
            self.faulty_calls.store(left - 1, Ordering::Relaxed);
            match self.kind {
                "panic" => panic!("injected"),
                "short" => vec![true; window.len() / 2],
                _ => vec![false; window.len()],
            }
        }

        fn scores(&self, window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
            if self.kind == "nan"
                && self.faulty_calls.load(std::sync::atomic::Ordering::Relaxed) > 0
            {
                // Note: mark() already decremented; emulate via fresh count.
                return Some(vec![f32::NAN; window.len()]);
            }
            None
        }

        fn name(&self) -> &'static str {
            "flaky"
        }
    }

    fn cfg(threshold: usize, cooldown: usize) -> GuardConfig {
        GuardConfig {
            fault_threshold: threshold,
            cooldown_windows: cooldown,
            validate_scores: true,
        }
    }

    #[test]
    fn healthy_filter_passes_through_marks() {
        let mut g = FilterGuard::new(PassthroughFilter, GuardConfig::default());
        let w = window(6);
        let out = g.mark(w.events());
        assert_eq!(out.marks, vec![true; 6]);
        assert!(out.fault.is_none());
        assert!(out.filter_invoked);
        assert_eq!(g.state(), BreakerState::Closed);
        assert_eq!(g.stats().faults_total, 0);
    }

    #[test]
    fn panic_is_caught_and_fails_open() {
        let flaky = Flaky {
            faulty_calls: 1.into(),
            kind: "panic",
        };
        let mut g = FilterGuard::new(flaky, cfg(3, 4));
        let w = window(5);
        let out = g.mark(w.events());
        assert_eq!(out.fault, Some(FaultKind::Panicked));
        assert_eq!(out.marks, vec![true; 5], "fault fails open");
        assert_eq!(g.stats().panics, 1);
        assert_eq!(g.state(), BreakerState::Closed, "below threshold");
    }

    #[test]
    fn wrong_length_detected() {
        let flaky = Flaky {
            faulty_calls: 1.into(),
            kind: "short",
        };
        let mut g = FilterGuard::new(flaky, cfg(3, 4));
        let w = window(8);
        let out = g.mark(w.events());
        assert_eq!(out.fault, Some(FaultKind::WrongLength { got: 4, want: 8 }));
        assert_eq!(g.stats().wrong_length, 1);
    }

    #[test]
    fn breaker_trips_after_consecutive_faults_then_recovers() {
        let flaky = Flaky {
            faulty_calls: 2.into(),
            kind: "panic",
        };
        let mut g = FilterGuard::new(flaky, cfg(2, 3));
        let w = window(4);

        // Two faults trip the breaker.
        g.mark(w.events());
        let out = g.mark(w.events());
        assert!(out
            .transitions
            .contains(&(BreakerState::Closed, BreakerState::Open)));
        assert_eq!(g.state(), BreakerState::Open);
        assert_eq!(g.stats().breaker_trips, 1);

        // Cooldown: three bypassed windows, filter untouched.
        for _ in 0..3 {
            let out = g.mark(w.events());
            assert!(!out.filter_invoked);
            assert_eq!(out.marks, vec![true; 4]);
        }
        assert_eq!(g.stats().windows_bypassed, 3);

        // Probe window: filter is healthy again -> Closed.
        let out = g.mark(w.events());
        assert!(out.filter_invoked);
        assert!(out.fault.is_none());
        assert!(out
            .transitions
            .contains(&(BreakerState::HalfOpen, BreakerState::Closed)));
        assert_eq!(g.state(), BreakerState::Closed);
        assert_eq!(g.stats().recoveries, 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let flaky = Flaky {
            faulty_calls: 5.into(),
            kind: "panic",
        };
        let mut g = FilterGuard::new(flaky, cfg(1, 2));
        let w = window(4);
        g.mark(w.events()); // trip on first fault
        assert_eq!(g.state(), BreakerState::Open);
        g.mark(w.events());
        g.mark(w.events()); // cooldown served
        let out = g.mark(w.events()); // probe -> still faulty
        assert!(out
            .transitions
            .contains(&(BreakerState::Open, BreakerState::HalfOpen)));
        assert!(out
            .transitions
            .contains(&(BreakerState::HalfOpen, BreakerState::Open)));
        assert_eq!(g.state(), BreakerState::Open);
        assert_eq!(g.stats().breaker_trips, 2);
    }

    #[test]
    fn consecutive_counter_resets_on_success() {
        // Alternate fault/success below the threshold: never trips.
        struct Alternating(std::sync::atomic::AtomicBool);
        impl Filter for Alternating {
            fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
                use std::sync::atomic::Ordering;
                let bad = self.0.load(Ordering::Relaxed);
                self.0.store(!bad, Ordering::Relaxed);
                if bad {
                    panic!("every other call");
                }
                vec![true; window.len()]
            }
            fn name(&self) -> &'static str {
                "alternating"
            }
        }
        let mut g = FilterGuard::new(Alternating(true.into()), cfg(2, 2));
        let w = window(3);
        for _ in 0..10 {
            g.mark(w.events());
        }
        assert_eq!(g.state(), BreakerState::Closed);
        assert_eq!(g.stats().breaker_trips, 0);
        assert_eq!(g.stats().panics, 5);
    }

    #[test]
    fn non_finite_scores_detected_when_enabled() {
        struct NanScores;
        impl Filter for NanScores {
            fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
                vec![true; window.len()]
            }
            fn scores(&self, window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
                Some(vec![f32::NAN; window.len()])
            }
            fn name(&self) -> &'static str {
                "nan-scores"
            }
        }
        let w = window(4);
        let mut strict = FilterGuard::new(NanScores, cfg(3, 2));
        let out = strict.mark(w.events());
        assert_eq!(out.fault, Some(FaultKind::NonFiniteScore));

        let mut lax = FilterGuard::new(
            NanScores,
            GuardConfig {
                validate_scores: false,
                ..GuardConfig::default()
            },
        );
        assert!(lax.mark(w.events()).fault.is_none());
    }

    #[test]
    fn swap_filter_resets_consecutive_faults_but_not_breaker() {
        let flaky = Flaky {
            faulty_calls: 1.into(),
            kind: "panic",
        };
        let mut g = FilterGuard::new(flaky, cfg(2, 3));
        let w = window(4);
        g.mark(w.events()); // one fault, below the threshold of 2
        assert_eq!(g.stats().panics, 1);
        let _old = g.swap_filter(Flaky {
            faulty_calls: 1.into(),
            kind: "panic",
        });
        // The new filter's first fault starts a fresh consecutive count:
        // it must NOT trip a threshold-2 breaker.
        g.mark(w.events());
        assert_eq!(g.state(), BreakerState::Closed);
        assert_eq!(g.stats().panics, 2, "cumulative stats survive the swap");

        // Swapping while Open does not silently close the breaker.
        g.mark(w.events()); // healthy (faulty_calls exhausted)... trip it:
        let _old = g.swap_filter(Flaky {
            faulty_calls: 2.into(),
            kind: "panic",
        });
        g.mark(w.events());
        g.mark(w.events());
        assert_eq!(g.state(), BreakerState::Open);
        let _old = g.swap_filter(Flaky {
            faulty_calls: 0.into(),
            kind: "panic",
        });
        assert_eq!(g.state(), BreakerState::Open, "swap keeps breaker state");
    }

    #[test]
    fn speculative_mark_matches_live_semantics() {
        let w = window(6);
        // Healthy precomputed result: marks accepted verbatim.
        let mut g = FilterGuard::new(PassthroughFilter, cfg(2, 3));
        let out = g.mark_speculative(w.events(), Some((vec![false; 6], None)));
        assert_eq!(out.marks, vec![false; 6]);
        assert!(out.fault.is_none());
        assert!(out.filter_invoked);

        // Faults count and trip exactly like live calls.
        let mut g = FilterGuard::new(PassthroughFilter, cfg(2, 3));
        let out = g.mark_speculative(w.events(), None);
        assert_eq!(out.fault, Some(FaultKind::Panicked));
        assert_eq!(out.marks, vec![true; 6], "fault fails open");
        let out = g.mark_speculative(w.events(), Some((vec![true; 2], None)));
        assert_eq!(out.fault, Some(FaultKind::WrongLength { got: 2, want: 6 }));
        assert_eq!(g.state(), BreakerState::Open, "two faults trip cfg(2, _)");
        assert_eq!(g.stats().breaker_trips, 1);
        assert_eq!(g.stats().panics, 1);
        assert_eq!(g.stats().wrong_length, 1);
    }

    #[test]
    fn speculative_mark_validates_scores() {
        let w = window(4);
        let mut g = FilterGuard::new(PassthroughFilter, cfg(3, 2));
        let raw = Some((vec![true; 4], Some(vec![0.5, f32::NAN, 0.5, 0.5])));
        let out = g.mark_speculative(w.events(), raw);
        assert_eq!(out.fault, Some(FaultKind::NonFiniteScore));
    }

    #[test]
    fn speculative_mark_falls_back_to_live_when_not_closed() {
        let flaky = Flaky {
            faulty_calls: 1.into(),
            kind: "panic",
        };
        let mut g = FilterGuard::new(flaky, cfg(1, 2));
        let w = window(4);
        g.mark(w.events()); // trip
        assert_eq!(g.state(), BreakerState::Open);
        // The stale precomputed result must be discarded: the guard is Open,
        // so this is a bypass window, not an accepted speculative mark.
        let out = g.mark_speculative(w.events(), Some((vec![false; 4], None)));
        assert!(!out.filter_invoked);
        assert_eq!(out.marks, vec![true; 4]);
        assert_eq!(g.stats().windows_bypassed, 1);
    }
}
