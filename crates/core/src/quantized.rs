//! The quantized marking fast path: a drop-in [`Filter`] whose stacked
//! BiLSTM and emission layers run on the int8 kernels of
//! [`dlacep_nn::quant`].
//!
//! Architecture of the split:
//!
//! * **Encoder + emission layer** (≥ 99% of the marking FLOPs) run int8
//!   with per-channel weight scales and static activation scales.
//! * **BI-CRF head** stays in f32: it is `O(T · L²)` with `L = 2` — noise
//!   here would directly move the decode boundary for no measurable
//!   speedup. [`CrfHead`] replicates the exact forward/backward arithmetic
//!   of [`dlacep_nn::BiCrf`] allocation-free over the scratch arena.
//! * **Scratch** lives in a small pool of [`ScratchArena`]s (one per
//!   in-flight window), so concurrent marking under the parallel batch
//!   path shares nothing and steady-state marking allocates nothing.
//!
//! The accuracy contract (recall/precision delta vs the f32 filter ≤ 1% on
//! the fig8/fig9 suites) is enforced by `dlacep-bench`'s
//! `quantized_recall` test, not assumed.

use crate::embed::EventEmbedder;
use crate::filter::{EventNetFilter, Filter};
use crate::model::EventNetwork;
use dlacep_dur::{CodecError, Dec, Decoder, Enc, Encoder};
use dlacep_events::PrimitiveEvent;
use dlacep_nn::quant::{
    calibrate_input_scale, ensure, QuantError, QuantizedLinear, QuantizedStackedBiLstm,
    ScratchArena, UNIT_SCALE,
};
use dlacep_nn::{BiCrf, Crf, ParamStore};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Arenas kept warm in the pool. Marking uses one arena per in-flight
/// window; the pool only grows past this if more windows are marked
/// concurrently than this many threads.
const ARENA_POOL_CAPACITY: usize = 16;

/// Errors surfaced while quantizing a trained filter.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuantizeError {
    /// The weight/calibration quantization itself failed.
    Quant(QuantError),
    /// The CRF head is only replicated for binary marking.
    UnsupportedLabels {
        /// Label count the network was built with.
        got: usize,
    },
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::Quant(e) => write!(f, "{e}"),
            QuantizeError::UnsupportedLabels { got } => write!(
                f,
                "quantized CRF head supports exactly 2 labels, network has {got}"
            ),
        }
    }
}

impl std::error::Error for QuantizeError {}

impl From<QuantError> for QuantizeError {
    fn from(e: QuantError) -> Self {
        QuantizeError::Quant(e)
    }
}

/// `max + ln(e^(a-max) + e^(b-max))`, the 2-label specialization of the
/// CRF's log-sum-exp (same arithmetic order as the f32 head).
#[inline]
fn log_sum_exp2(a: f32, b: f32) -> f32 {
    let m = a.max(b);
    if m == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// One directional CRF over 2 labels, extracted to plain f32 buffers
/// (`trans` row-major 2×2, `start`/`end` length 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CrfDir {
    trans: Vec<f32>,
    start: Vec<f32>,
    end: Vec<f32>,
}

impl CrfDir {
    fn extract(store: &ParamStore, crf: &Crf) -> Result<Self, QuantizeError> {
        if crf.num_labels != 2 {
            return Err(QuantizeError::UnsupportedLabels {
                got: crf.num_labels,
            });
        }
        let (trans, start, end) = crf.params();
        Ok(Self {
            trans: store.value(trans).as_slice().to_vec(),
            start: store.value(start).as_slice().to_vec(),
            end: store.value(end).as_slice().to_vec(),
        })
    }

    /// Forward–backward over `em` (`t_len × 2`, read right-to-left when
    /// `rev`), adding this direction's posterior marginals into `out`
    /// (`t_len × 2`, indexed in original orientation). `alpha`/`beta` are
    /// caller scratch of at least `t_len × 2`.
    fn accumulate_marginals(
        &self,
        t_len: usize,
        em: &[f32],
        rev: bool,
        alpha: &mut [f32],
        beta: &mut [f32],
        out: &mut [f32],
    ) {
        let e = |t: usize, j: usize| {
            let tt = if rev { t_len - 1 - t } else { t };
            em[tt * 2 + j]
        };
        alpha[0] = self.start[0] + e(0, 0);
        alpha[1] = self.start[1] + e(0, 1);
        for t in 1..t_len {
            for j in 0..2 {
                let s0 = alpha[(t - 1) * 2] + self.trans[j];
                let s1 = alpha[(t - 1) * 2 + 1] + self.trans[2 + j];
                alpha[t * 2 + j] = log_sum_exp2(s0, s1) + e(t, j);
            }
        }
        beta[(t_len - 1) * 2] = self.end[0];
        beta[(t_len - 1) * 2 + 1] = self.end[1];
        for t in (0..t_len - 1).rev() {
            for i in 0..2 {
                let s0 = self.trans[i * 2] + e(t + 1, 0) + beta[(t + 1) * 2];
                let s1 = self.trans[i * 2 + 1] + e(t + 1, 1) + beta[(t + 1) * 2 + 1];
                beta[t * 2 + i] = log_sum_exp2(s0, s1);
            }
        }
        let logz = log_sum_exp2(
            alpha[(t_len - 1) * 2] + self.end[0],
            alpha[(t_len - 1) * 2 + 1] + self.end[1],
        );
        for t in 0..t_len {
            let orig = if rev { t_len - 1 - t } else { t };
            for j in 0..2 {
                out[orig * 2 + j] += (alpha[t * 2 + j] + beta[t * 2 + j] - logz).exp();
            }
        }
    }
}

impl Enc for CrfDir {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.trans);
        e.put(&self.start);
        e.put(&self.end);
    }
}

impl Dec for CrfDir {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let dir = Self {
            trans: d.get()?,
            start: d.get()?,
            end: d.get()?,
        };
        if dir.trans.len() != 4 || dir.start.len() != 2 || dir.end.len() != 2 {
            return Err(CodecError::Malformed("CRF head parameter lengths".into()));
        }
        Ok(dir)
    }
}

/// The f32 BI-CRF head of the quantized network: exact 2-label
/// forward–backward over both directions, allocation-free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CrfHead {
    fwd: CrfDir,
    bwd: CrfDir,
}

impl CrfHead {
    fn extract(store: &ParamStore, crf: &BiCrf) -> Result<Self, QuantizeError> {
        let (fwd, bwd) = crf.directions();
        Ok(Self {
            fwd: CrfDir::extract(store, fwd)?,
            bwd: CrfDir::extract(store, bwd)?,
        })
    }

    /// Sum of both directions' posterior marginals into `out` (`t_len×2`,
    /// overwritten). The decode rule downstream — mark when
    /// `out[2t+1] >= out[2t]` — matches `BiCrf::decode`'s per-position
    /// argmax including its tie behaviour (ties go to label 1).
    fn combined_marginals(
        &self,
        t_len: usize,
        em: &[f32],
        alpha: &mut [f32],
        beta: &mut [f32],
        out: &mut [f32],
    ) {
        out[..t_len * 2].fill(0.0);
        self.fwd
            .accumulate_marginals(t_len, em, false, alpha, beta, out);
        self.bwd
            .accumulate_marginals(t_len, em, true, alpha, beta, out);
    }
}

impl Enc for CrfHead {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.fwd);
        e.put(&self.bwd);
    }
}

impl Dec for CrfHead {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            fwd: d.get()?,
            bwd: d.get()?,
        })
    }
}

/// An [`EventNetwork`] quantized for inference: int8 encoder + emission
/// layer, exact f32 BI-CRF head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedEventNetwork {
    input_dim: usize,
    encoder: QuantizedStackedBiLstm,
    emit: QuantizedLinear,
    crf: CrfHead,
}

impl QuantizedEventNetwork {
    /// Quantize a trained network, calibrating the input activation scale
    /// from `calibration` (embedded sample windows — typically a few dozen
    /// windows of the training stream). Fails on an empty calibration set,
    /// non-finite weights, or a non-binary CRF head.
    pub fn quantize<'a, I>(network: &EventNetwork, calibration: I) -> Result<Self, QuantizeError>
    where
        I: IntoIterator<Item = &'a [Vec<f32>]>,
    {
        let (store, encoder, emit, crf) = network.parts();
        let input_scale = calibrate_input_scale(
            calibration
                .into_iter()
                .flat_map(|w| w.iter().map(Vec::as_slice)),
        )?;
        Ok(Self {
            input_dim: network.config.input_dim,
            encoder: QuantizedStackedBiLstm::quantize(store, encoder, input_scale)?,
            // The emission layer consumes tanh-bounded encoder outputs.
            emit: QuantizedLinear::quantize(store, emit, UNIT_SCALE)?,
            crf: CrfHead::extract(store, crf)?,
        })
    }

    /// Embedding width the network expects.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Run encoder + emissions + combined CRF marginals for `t_len` rows
    /// already loaded into `arena.io_a`; leaves the per-position combined
    /// marginal sums in `arena.probs` (`t_len × 2`).
    fn combined_into(&self, t_len: usize, arena: &mut ScratchArena) {
        self.encoder.infer_in_place(t_len, arena);
        self.emit
            .infer_into(t_len, &arena.io_a, &mut arena.xq, &mut arena.emit);
        ensure(&mut arena.crf_alpha, t_len * 2);
        ensure(&mut arena.crf_beta, t_len * 2);
        ensure(&mut arena.probs, t_len * 2);
        self.crf.combined_marginals(
            t_len,
            &arena.emit,
            &mut arena.crf_alpha,
            &mut arena.crf_beta,
            &mut arena.probs,
        );
    }

    fn load_window(&self, window: &[Vec<f32>], arena: &mut ScratchArena) {
        ensure(&mut arena.io_a, window.len() * self.input_dim);
        for (t, row) in window.iter().enumerate() {
            assert_eq!(row.len(), self.input_dim, "embedding width mismatch");
            arena.io_a[t * self.input_dim..(t + 1) * self.input_dim].copy_from_slice(row);
        }
    }

    /// Quantized counterpart of [`EventNetwork::mark`], writing into a
    /// reusable buffer. Allocation-free once `arena` and `out` have grown
    /// to the window shape.
    pub fn mark_into(&self, window: &[Vec<f32>], arena: &mut ScratchArena, out: &mut Vec<bool>) {
        out.clear();
        if window.is_empty() {
            return;
        }
        self.load_window(window, arena);
        self.combined_into(window.len(), arena);
        out.extend((0..window.len()).map(|t| arena.probs[t * 2 + 1] >= arena.probs[t * 2]));
    }

    /// Quantized counterpart of [`EventNetwork::marginals`]: posterior
    /// probability of the positive label per event.
    pub fn marginals_into(
        &self,
        window: &[Vec<f32>],
        arena: &mut ScratchArena,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        if window.is_empty() {
            return;
        }
        self.load_window(window, arena);
        self.combined_into(window.len(), arena);
        out.extend((0..window.len()).map(|t| 0.5 * arena.probs[t * 2 + 1]));
    }
}

impl Enc for QuantizedEventNetwork {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.input_dim);
        e.put(&self.encoder);
        e.put(&self.emit);
        e.put(&self.crf);
    }
}

impl Dec for QuantizedEventNetwork {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            input_dim: d.get()?,
            encoder: d.get()?,
            emit: d.get()?,
            crf: d.get()?,
        })
    }
}

/// Drop-in int8 replacement for [`EventNetFilter`]: same marking semantics
/// (Viterbi-equivalent combined-marginal decode, or thresholded marginals),
/// same `scores` contract for [`crate::guard::FilterGuard`], zero steady-
/// state allocations in [`QuantizedEventNetwork::mark_into`].
#[derive(Debug)]
pub struct QuantizedFilter {
    network: QuantizedEventNetwork,
    embedder: EventEmbedder,
    /// Marking rule, mirroring [`EventNetFilter::threshold`]: `None` =
    /// combined-marginal decode, `Some(t)` = mark when the posterior
    /// marginal exceeds `t`.
    pub threshold: Option<f32>,
    arenas: Mutex<Vec<ScratchArena>>,
}

impl Clone for QuantizedFilter {
    fn clone(&self) -> Self {
        Self::from_parts(self.network.clone(), self.embedder.clone(), self.threshold)
    }
}

impl PartialEq for QuantizedFilter {
    fn eq(&self, other: &Self) -> bool {
        // Scratch arenas are not part of the filter's identity.
        self.network == other.network && self.threshold == other.threshold
    }
}

impl QuantizedFilter {
    /// Quantize a trained [`EventNetFilter`], calibrating activation scales
    /// from `sample_windows` (raw event windows from the training stream;
    /// they are embedded with the filter's own embedder). The threshold
    /// carries over unchanged.
    pub fn quantize(
        filter: &EventNetFilter,
        sample_windows: &[&[PrimitiveEvent]],
    ) -> Result<Self, QuantizeError> {
        let embedded: Vec<Vec<Vec<f32>>> = sample_windows
            .iter()
            .map(|w| filter.embedder.embed_window(w, w.len()))
            .collect();
        let network =
            QuantizedEventNetwork::quantize(&filter.network, embedded.iter().map(Vec::as_slice))?;
        Ok(Self::from_parts(
            network,
            filter.embedder.clone(),
            filter.threshold,
        ))
    }

    /// Assemble from an already-quantized network (e.g. a loaded bundle).
    #[must_use]
    pub fn from_parts(
        network: QuantizedEventNetwork,
        embedder: EventEmbedder,
        threshold: Option<f32>,
    ) -> Self {
        Self {
            network,
            embedder,
            threshold,
            arenas: Mutex::new(Vec::with_capacity(ARENA_POOL_CAPACITY)),
        }
    }

    /// The quantized network.
    #[must_use]
    pub fn network(&self) -> &QuantizedEventNetwork {
        &self.network
    }

    /// The embedder (identical to the source filter's).
    #[must_use]
    pub fn embedder(&self) -> &EventEmbedder {
        &self.embedder
    }

    fn take_arena(&self) -> ScratchArena {
        self.arenas
            .lock()
            .map(|mut pool| pool.pop())
            .unwrap_or_default()
            .unwrap_or_default()
    }

    fn return_arena(&self, arena: ScratchArena) {
        if let Ok(mut pool) = self.arenas.lock() {
            if pool.len() < ARENA_POOL_CAPACITY {
                pool.push(arena);
            }
        }
    }

    /// Mark into a reusable buffer — the allocation-free entry point. With
    /// a warm arena pool and an `out` buffer at capacity, marking performs
    /// zero heap allocations per window.
    pub fn mark_into(&self, window: &[PrimitiveEvent], out: &mut Vec<bool>) {
        out.clear();
        if window.is_empty() {
            return;
        }
        let dim = self.embedder.dim();
        let mut arena = self.take_arena();
        ensure(&mut arena.io_a, window.len() * dim);
        for (t, ev) in window.iter().enumerate() {
            self.embedder
                .embed_into(ev, &mut arena.io_a[t * dim..(t + 1) * dim]);
        }
        self.network.combined_into(window.len(), &mut arena);
        match self.threshold {
            None => {
                out.extend((0..window.len()).map(|t| arena.probs[t * 2 + 1] >= arena.probs[t * 2]))
            }
            Some(thr) => {
                out.extend((0..window.len()).map(|t| 0.5 * arena.probs[t * 2 + 1] > thr));
            }
        }
        self.return_arena(arena);
    }

    fn marginals(&self, window: &[PrimitiveEvent]) -> Vec<f32> {
        if window.is_empty() {
            return Vec::new();
        }
        let dim = self.embedder.dim();
        let mut arena = self.take_arena();
        ensure(&mut arena.io_a, window.len() * dim);
        for (t, ev) in window.iter().enumerate() {
            self.embedder
                .embed_into(ev, &mut arena.io_a[t * dim..(t + 1) * dim]);
        }
        self.network.combined_into(window.len(), &mut arena);
        let out = (0..window.len())
            .map(|t| 0.5 * arena.probs[t * 2 + 1])
            .collect();
        self.return_arena(arena);
        out
    }
}

impl Filter for QuantizedFilter {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        let mut out = Vec::with_capacity(window.len());
        self.mark_into(window, &mut out);
        out
    }

    fn scores(&self, window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
        Some(self.marginals(window))
    }

    fn name(&self) -> &'static str {
        "event-network-int8"
    }

    fn quantized(&self) -> bool {
        true
    }
}

impl Enc for QuantizedFilter {
    fn enc(&self, e: &mut Encoder) {
        e.put(&self.network);
        e.put(&self.embedder);
        e.put(&self.threshold);
    }
}

impl Dec for QuantizedFilter {
    fn dec(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let network: QuantizedEventNetwork = d.get()?;
        let embedder: EventEmbedder = d.get()?;
        let threshold: Option<f32> = d.get()?;
        Ok(Self::from_parts(network, embedder, threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkConfig;
    use dlacep_cep::TypeSet;
    use dlacep_events::TypeId;

    fn ev(i: u64, t: u32) -> PrimitiveEvent {
        PrimitiveEvent::new(i, TypeId(t), i, vec![((i * 7 % 5) as f64 - 2.0) * 0.4])
    }

    fn setup() -> (EventNetFilter, Vec<PrimitiveEvent>) {
        let embedder = EventEmbedder::new(&TypeSet::new(vec![TypeId(0), TypeId(1)]), 1);
        let filter = EventNetFilter::new(
            EventNetwork::new(NetworkConfig::small(embedder.dim())),
            embedder,
        );
        let events: Vec<PrimitiveEvent> = (0..24).map(|i| ev(i, (i % 3) as u32)).collect();
        (filter, events)
    }

    #[test]
    fn quantized_marks_match_f32_on_untrained_network() {
        let (filter, events) = setup();
        let q = QuantizedFilter::quantize(&filter, &[&events[..8], &events[8..16]]).unwrap();
        // An untrained net has no sharp decision boundaries near most
        // inputs; exact agreement is not guaranteed, but the score vectors
        // must be close and well-formed.
        for w in events.chunks(8) {
            let qs = q.scores(w).unwrap();
            let fs = filter.scores(w).unwrap();
            assert_eq!(qs.len(), fs.len());
            for (a, b) in qs.iter().zip(&fs) {
                assert!((a - b).abs() < 0.05, "marginal drift {a} vs {b}");
                assert!((0.0..=1.0).contains(a), "marginal {a} out of range");
            }
        }
    }

    #[test]
    fn threshold_carries_over() {
        let (mut filter, events) = setup();
        filter.threshold = Some(0.3);
        let q = QuantizedFilter::quantize(&filter, &[&events[..8]]).unwrap();
        assert_eq!(q.threshold, Some(0.3));
        let marks = q.mark(&events[..8]);
        let scores = q.scores(&events[..8]).unwrap();
        for (m, s) in marks.iter().zip(&scores) {
            assert_eq!(*m, *s > 0.3);
        }
    }

    #[test]
    fn empty_window_and_empty_calibration() {
        let (filter, events) = setup();
        assert!(matches!(
            QuantizedFilter::quantize(&filter, &[]),
            Err(QuantizeError::Quant(QuantError::EmptyCalibration))
        ));
        let q = QuantizedFilter::quantize(&filter, &[&events[..4]]).unwrap();
        assert!(q.mark(&[]).is_empty());
        assert!(q.scores(&[]).unwrap().is_empty());
    }

    #[test]
    fn codec_roundtrip_preserves_marks() {
        let (filter, events) = setup();
        let q = QuantizedFilter::quantize(&filter, &[&events[..12]]).unwrap();
        let mut e = Encoder::new();
        e.put(&q);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back: QuantizedFilter = d.get().unwrap();
        d.finish().unwrap();
        assert_eq!(q, back);
        for w in events.chunks(6) {
            assert_eq!(q.mark(w), back.mark(w));
        }
    }

    #[test]
    fn filter_is_send_sync_and_reports_quantized() {
        fn assert_filter<F: Filter + Send + Sync>(f: &F) -> bool {
            f.quantized()
        }
        let (filter, events) = setup();
        let q = QuantizedFilter::quantize(&filter, &[&events[..8]]).unwrap();
        assert!(assert_filter(&q));
        assert!(!assert_filter(&filter));
        assert_eq!(q.name(), "event-network-int8");
    }

    #[test]
    fn mark_into_reuses_buffers() {
        let (filter, events) = setup();
        let q = QuantizedFilter::quantize(&filter, &[&events[..8]]).unwrap();
        let mut out = Vec::new();
        q.mark_into(&events[..8], &mut out); // warmup: arena + out grow
        let cap = out.capacity();
        let baseline = out.clone();
        for _ in 0..5 {
            q.mark_into(&events[..8], &mut out);
            assert_eq!(out, baseline);
            assert_eq!(out.capacity(), cap);
        }
    }
}
