//! Self-healing drift recovery: supervised online retraining with a
//! validated hot model swap.
//!
//! [`crate::drift::DriftMonitor`] turns a collapsed mark rate into a
//! `retrain_signaled` flag, but on its own that flag only buys a permanent
//! degrade to exact CEP — correct, and slow, forever. The retrain
//! supervisor closes the loop: it snapshots recently evaluated windows into
//! a bounded replay buffer, retrains a candidate filter on the replay
//! windows (labeled by the exact engine, exactly like offline training),
//! and passes the candidate through a **validation gate** — recall and
//! precision against the exact-CEP labels on a held-out replay slice —
//! before atomically swapping it into the [`crate::guard::FilterGuard`].
//! A candidate that fails the gate is never swapped in; the runtime stays
//! on exact CEP, schedules a bounded retry with exponential backoff, and
//! after exhaustion records a permanent-degraded verdict in the journal.
//!
//! The supervisor's persistent state machine is deliberately tiny:
//!
//! ```text
//!          drift signal                     gate pass
//!   Idle ───────────────▶ Waiting{n} ──────────────────▶ Idle (swapped)
//!                           │   ▲ gate fail / train panic, n ≤ max_retries
//!                           │   └──────── backoff: base << n windows
//!                           │ n > max_retries
//!                           ▼
//!                        Exhausted (permanent degrade, manual rebaseline)
//! ```
//!
//! Training, int8 re-calibration, and the gate all run *at* a deterministic
//! window boundary (`resume_at`, measured in evaluated windows), so the
//! entire trajectory — counters, journal, swap point — is a pure function
//! of the workload and configuration, never of wall-clock time or thread
//! count. That is what makes the crash sweep able to assert that a run
//! killed mid-retrain and recovered equals an uninterrupted reference.

use crate::filter::{Filter, OracleFilter};
use crate::model::NetworkConfig;
use crate::persist::{
    decode_event_filter, decode_quantized_filter, encode_event_filter, encode_quantized_filter,
};
use crate::quantized::QuantizedFilter;
use crate::trainer::TrainConfig;
use dlacep_cep::plan::Plan;
use dlacep_cep::Pattern;
use dlacep_events::PrimitiveEvent;
use dlacep_nn::optim::Optimizer;
use dlacep_nn::{record_epoch, Adam, BatchSampler, ConvergenceDetector};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::embed::EventEmbedder;
use crate::model::EventNetwork;

/// Environment variable overriding [`RetrainConfig::max_retries`].
pub const RETRAIN_MAX_RETRIES_ENV: &str = "DLACEP_RETRAIN_MAX_RETRIES";
/// Environment variable overriding [`RetrainConfig::backoff_base_windows`].
pub const RETRAIN_BACKOFF_ENV: &str = "DLACEP_RETRAIN_BACKOFF_WINDOWS";
/// Environment variable overriding [`RetrainConfig::min_recall`].
pub const RETRAIN_MIN_RECALL_ENV: &str = "DLACEP_RETRAIN_MIN_RECALL";
/// Environment variable overriding [`RetrainConfig::min_precision`].
pub const RETRAIN_MIN_PRECISION_ENV: &str = "DLACEP_RETRAIN_MIN_PRECISION";
/// Environment variable overriding [`RetrainConfig::replay_windows`].
pub const RETRAIN_REPLAY_ENV: &str = "DLACEP_RETRAIN_REPLAY_WINDOWS";
/// Environment variable overriding [`RetrainConfig::holdout_every`].
pub const RETRAIN_HOLDOUT_ENV: &str = "DLACEP_RETRAIN_HOLDOUT_EVERY";

/// Supervisor policy: replay-buffer sizing, validation-gate thresholds,
/// and the retry/backoff schedule. All units that involve time are in
/// *evaluated windows* — the supervisor never reads a clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainConfig {
    /// Windows to wait before the first attempt, and the base of the
    /// exponential backoff between attempts (`base << attempt`). Waiting at
    /// least one window lets the replay buffer capture post-drift data.
    pub backoff_base_windows: u64,
    /// Retries after the first failed attempt before the supervisor gives
    /// up ([`RetrainState::Exhausted`]).
    pub max_retries: u32,
    /// Capacity of the replay ring buffer (most recent evaluated windows).
    pub replay_windows: usize,
    /// Every `holdout_every`-th replay window is held out of training and
    /// used exclusively by the validation gate (≥ 2: the split must leave
    /// windows on both sides).
    pub holdout_every: usize,
    /// Gate floor: candidate recall vs exact-CEP labels on the holdout.
    pub min_recall: f64,
    /// Gate floor: candidate precision vs exact-CEP labels on the holdout.
    /// Spurious marks only cost extractor work (the ID constraint discards
    /// them), so the default is deliberately permissive.
    pub min_precision: f64,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        Self {
            backoff_base_windows: 4,
            max_retries: 3,
            replay_windows: 32,
            holdout_every: 4,
            min_recall: 0.9,
            min_precision: 0.3,
        }
    }
}

impl RetrainConfig {
    /// Defaults overridden by any `DLACEP_RETRAIN_*` environment variables
    /// that are set and parse; unset or malformed variables keep the
    /// default (same convention as [`crate::durable::dur_dir_from_env`]).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = env_parse::<u32>(RETRAIN_MAX_RETRIES_ENV) {
            cfg.max_retries = v;
        }
        if let Some(v) = env_parse::<u64>(RETRAIN_BACKOFF_ENV) {
            cfg.backoff_base_windows = v;
        }
        if let Some(v) = env_parse::<f64>(RETRAIN_MIN_RECALL_ENV) {
            cfg.min_recall = v;
        }
        if let Some(v) = env_parse::<f64>(RETRAIN_MIN_PRECISION_ENV) {
            cfg.min_precision = v;
        }
        if let Some(v) = env_parse::<usize>(RETRAIN_REPLAY_ENV) {
            cfg.replay_windows = v;
        }
        if let Some(v) = env_parse::<usize>(RETRAIN_HOLDOUT_ENV) {
            cfg.holdout_every = v;
        }
        cfg
    }

    /// Validate the configuration. The runtime surfaces failures as a typed
    /// configuration error before anything is built.
    pub fn validate(&self) -> Result<(), String> {
        if self.backoff_base_windows < 1 {
            return Err("retrain backoff_base_windows must be at least 1".into());
        }
        if self.replay_windows < 2 {
            return Err("retrain replay_windows must be at least 2".into());
        }
        if self.holdout_every < 2 {
            return Err("retrain holdout_every must be at least 2 (the split must leave both training and holdout windows)".into());
        }
        for (name, v) in [
            ("min_recall", self.min_recall),
            ("min_precision", self.min_precision),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(format!("retrain {name} must be within [0, 1], got {v}"));
            }
        }
        Ok(())
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// Produces, serializes, and deserializes candidate filters for the
/// supervisor. `retrain` must be deterministic in `(windows, attempt)` —
/// the crash-recovery equivalence proof re-runs it after a restart and
/// requires the identical candidate.
pub trait ModelTrainer<F: Filter>: Send + Sync {
    /// Train a candidate on the replay training slice. `attempt` is the
    /// zero-based attempt number; trainers should fold it into their seed
    /// so a retry is not a bit-identical rerun of a failed attempt.
    fn retrain(
        &self,
        pattern: &Pattern,
        windows: &[Vec<PrimitiveEvent>],
        attempt: u64,
    ) -> Result<F, String>;

    /// Serialize an accepted filter for the model registry / checkpoint.
    fn encode(&self, filter: &F) -> Vec<u8>;

    /// Reconstruct a filter from registry / checkpoint bytes.
    fn decode(&self, bytes: &[u8]) -> Result<F, String>;
}

/// Persistent supervisor position. Only the *decisions* are state — the
/// train/calibrate/gate pipeline runs to completion inside one window
/// boundary and never needs to be resumed halfway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrainState {
    /// No retrain scheduled (healthy, or drift not yet signaled).
    Idle,
    /// An attempt is scheduled at window index `resume_at`.
    Waiting {
        /// Evaluated-window index at which the attempt runs.
        resume_at: u64,
        /// Zero-based attempt number.
        attempt: u32,
    },
    /// All retries failed: permanent degrade until a manual
    /// [`crate::runtime::StreamingDlacep::rebaseline`].
    Exhausted,
}

/// Everything the supervisor needs to survive a crash: state machine
/// position, the replay buffer, model lineage. Carried inside
/// [`crate::runtime::RuntimeCheckpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainCheckpoint {
    /// State machine position.
    pub state: RetrainState,
    /// Replay buffer contents, oldest first.
    pub replay: Vec<Vec<PrimitiveEvent>>,
    /// Version the next accepted model will get.
    pub next_version: u64,
    /// Currently deployed retrained model, if any: `(version, bytes)`.
    pub active_model: Option<(u64, Vec<u8>)>,
    /// Accepted models not yet published to the durable registry.
    pub pending_models: Vec<(u64, Vec<u8>)>,
    /// Effective drift baseline after the last accepted swap.
    /// [`crate::drift::DriftMonitor::rebaseline`] mutates the monitor's
    /// *config*, which `DriftMonitorState` deliberately excludes — so the
    /// supervisor carries the override and restore re-applies it, keeping
    /// post-swap drift verdicts identical across a crash.
    pub baseline_override: Option<f64>,
}

/// Validation-gate verdict for one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateReport {
    /// Event-level recall vs exact-CEP labels on the holdout slice.
    pub recall: f64,
    /// Event-level precision vs exact-CEP labels on the holdout slice.
    pub precision: f64,
    /// Holdout windows the candidate was scored on.
    pub holdout_windows: usize,
    /// Fraction of holdout events the candidate marked — the new drift
    /// baseline if the candidate is accepted.
    pub marked_rate: f64,
}

/// In-memory supervisor attached to a running `StreamingDlacep`. The
/// decision logic itself lives in `runtime::step_retrain`; this struct owns
/// the data that logic operates on.
pub(crate) struct RetrainRuntime<F> {
    pub(crate) cfg: RetrainConfig,
    pub(crate) trainer: Box<dyn ModelTrainer<F>>,
    pub(crate) state: RetrainState,
    pub(crate) replay: VecDeque<Vec<PrimitiveEvent>>,
    pub(crate) next_version: u64,
    pub(crate) active_model: Option<(u64, Vec<u8>)>,
    pub(crate) pending_models: Vec<(u64, Vec<u8>)>,
    pub(crate) baseline_override: Option<f64>,
}

impl<F: Filter> RetrainRuntime<F> {
    pub(crate) fn new(cfg: RetrainConfig, trainer: Box<dyn ModelTrainer<F>>) -> Self {
        Self {
            cfg,
            trainer,
            state: RetrainState::Idle,
            replay: VecDeque::with_capacity(cfg.replay_windows),
            next_version: 1,
            active_model: None,
            pending_models: Vec::new(),
            baseline_override: None,
        }
    }

    /// Record one evaluated window into the replay ring.
    pub(crate) fn observe_window(&mut self, window: &[PrimitiveEvent]) {
        if self.replay.len() == self.cfg.replay_windows {
            self.replay.pop_front();
        }
        self.replay.push_back(window.to_vec());
    }

    /// Split the replay buffer into (training, holdout) slices. Every
    /// `holdout_every`-th window (by replay position) is held out.
    pub(crate) fn split_replay(&self) -> (Vec<Vec<PrimitiveEvent>>, Vec<Vec<PrimitiveEvent>>) {
        let mut train = Vec::new();
        let mut holdout = Vec::new();
        for (i, w) in self.replay.iter().enumerate() {
            if i % self.cfg.holdout_every == 0 {
                holdout.push(w.clone());
            } else {
                train.push(w.clone());
            }
        }
        (train, holdout)
    }

    pub(crate) fn export(&self) -> RetrainCheckpoint {
        RetrainCheckpoint {
            state: self.state,
            replay: self.replay.iter().cloned().collect(),
            next_version: self.next_version,
            active_model: self.active_model.clone(),
            pending_models: self.pending_models.clone(),
            baseline_override: self.baseline_override,
        }
    }

    pub(crate) fn import(&mut self, ck: RetrainCheckpoint) {
        self.state = ck.state;
        self.replay = ck.replay.into();
        self.next_version = ck.next_version;
        self.active_model = ck.active_model;
        self.pending_models = ck.pending_models;
        self.baseline_override = ck.baseline_override;
    }
}

/// Score a candidate on the holdout slice against exact-CEP labels. A
/// candidate that panics or returns a wrong-length mark vector is a gate
/// failure, not a crash — the same fail-safe posture as the filter guard.
pub(crate) fn validate_candidate<F: Filter>(
    candidate: &F,
    oracle: &OracleFilter,
    holdout: &[Vec<PrimitiveEvent>],
) -> Result<GateReport, String> {
    let (mut tp, mut fp, mut fneg) = (0u64, 0u64, 0u64);
    let (mut marked, mut total) = (0u64, 0u64);
    for window in holdout {
        let truth = oracle.mark(window);
        let got = catch_unwind(AssertUnwindSafe(|| candidate.mark(window)))
            .map_err(|_| "candidate panicked during validation".to_string())?;
        if got.len() != truth.len() {
            return Err(format!(
                "candidate returned {} marks for a {}-event window",
                got.len(),
                truth.len()
            ));
        }
        for (&g, &t) in got.iter().zip(&truth) {
            total += 1;
            if g {
                marked += 1;
            }
            match (g, t) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fneg += 1,
                (false, false) => {}
            }
        }
    }
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    };
    Ok(GateReport {
        recall: ratio(tp, tp + fneg),
        precision: ratio(tp, tp + fp),
        holdout_windows: holdout.len(),
        marked_rate: if total == 0 {
            0.0
        } else {
            marked as f64 / total as f64
        },
    })
}

/// Train an event-network filter on already-assembled replay windows,
/// labeling each window with the exact engine — the online analogue of
/// [`crate::trainer::train_event_filter`], which labels a raw historical
/// stream. One replay window is one training sample. Epoch loss/grad-norm
/// flow into the *global* obs registry (like offline training) so per-run
/// registries stay deterministic across thread counts.
pub fn train_on_windows(
    pattern: &Pattern,
    windows: &[Vec<PrimitiveEvent>],
    cfg: &TrainConfig,
    attempt: u64,
) -> Result<crate::filter::EventNetFilter, String> {
    if windows.is_empty() {
        return Err("replay training slice is empty".into());
    }
    let plan = Plan::compile(pattern).map_err(|e| format!("pattern does not compile: {e}"))?;
    let oracle = OracleFilter::new(pattern.clone());
    let num_attrs = windows
        .iter()
        .flat_map(|w| w.first())
        .map(|e| e.attrs.len())
        .next()
        .unwrap_or(0);
    let embedder = EventEmbedder::for_plan(&plan, num_attrs);
    let seed = cfg.seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);

    let mut samples: Vec<(Vec<Vec<f32>>, Vec<bool>, bool)> = windows
        .iter()
        .map(|w| {
            let labels = oracle.mark(w);
            let positive = !dlacep_data::label::matches_in_sample(pattern, w).is_empty();
            (embedder.embed_window(w, w.len()), labels, positive)
        })
        .collect();
    if cfg.oversample_positives {
        let pos: Vec<usize> = (0..samples.len()).filter(|&i| samples[i].2).collect();
        let neg = samples.len() - pos.len();
        if !pos.is_empty() && neg > pos.len() {
            let copies = ((neg / pos.len()).saturating_sub(1)).min(15);
            let extra: Vec<usize> = pos
                .iter()
                .flat_map(|&i| std::iter::repeat_with(move || i).take(copies))
                .collect();
            for i in extra {
                let dup = samples[i].clone();
                samples.push(dup);
            }
        }
    }

    let net_cfg = NetworkConfig {
        input_dim: embedder.dim(),
        hidden: cfg.hidden,
        layers: cfg.layers,
        seed,
    };
    let mut net = EventNetwork::new(net_cfg);
    let obs = dlacep_obs::global();
    let mut opt = Adam::new(cfg.lr.lr_at(0));
    let mut sampler = BatchSampler::new(samples.len(), seed);
    let mut detector =
        ConvergenceDetector::new(cfg.convergence_threshold, cfg.convergence_patience);
    for epoch in 0..cfg.max_epochs {
        opt.set_lr(cfg.lr.lr_at(epoch));
        let mut epoch_loss = 0.0;
        let mut epoch_grad_norm = 0.0;
        let mut batches = 0;
        for batch_idx in sampler.epoch(cfg.batch.at(epoch)) {
            let batch: Vec<(&[Vec<f32>], &[bool])> = batch_idx
                .iter()
                .map(|&i| {
                    let (w, l, _) = &samples[i];
                    (w.as_slice(), l.as_slice())
                })
                .collect();
            let step = net.train_batch(&batch, &mut opt, cfg.grad_clip);
            epoch_loss += step.loss;
            epoch_grad_norm += step.grad_norm;
            batches += 1;
        }
        let loss = epoch_loss / batches.max(1) as f32;
        record_epoch(
            &obs,
            epoch,
            loss,
            epoch_grad_norm / batches.max(1) as f32,
            cfg.lr.lr_at(epoch),
        );
        if detector.observe(loss) {
            break;
        }
    }
    Ok(crate::filter::EventNetFilter {
        network: net,
        embedder,
        threshold: cfg.mark_threshold,
    })
}

/// [`ModelTrainer`] producing full-precision [`crate::filter::EventNetFilter`]
/// candidates via [`train_on_windows`]; persisted as `DMDL` bundles.
pub struct EventNetRetrainer {
    /// Hyperparameters for each online attempt. Use a small budget
    /// ([`TrainConfig::quick`] scale) — retraining runs at a window
    /// boundary, stalling ingestion while it trains.
    pub train: TrainConfig,
}

impl ModelTrainer<crate::filter::EventNetFilter> for EventNetRetrainer {
    fn retrain(
        &self,
        pattern: &Pattern,
        windows: &[Vec<PrimitiveEvent>],
        attempt: u64,
    ) -> Result<crate::filter::EventNetFilter, String> {
        train_on_windows(pattern, windows, &self.train, attempt)
    }

    fn encode(&self, filter: &crate::filter::EventNetFilter) -> Vec<u8> {
        encode_event_filter(filter).expect("event-net bundle serializes")
    }

    fn decode(&self, bytes: &[u8]) -> Result<crate::filter::EventNetFilter, String> {
        decode_event_filter(bytes).map_err(|e| e.to_string())
    }
}

/// [`ModelTrainer`] producing int8 [`QuantizedFilter`] candidates: trains
/// in f32 via [`train_on_windows`], then re-runs int8 calibration on the
/// replay training windows so the activation scales match the post-drift
/// distribution; persisted as `DMQ8` bundles.
pub struct QuantizedRetrainer {
    /// Hyperparameters for the f32 training stage of each attempt.
    pub train: TrainConfig,
}

impl ModelTrainer<QuantizedFilter> for QuantizedRetrainer {
    fn retrain(
        &self,
        pattern: &Pattern,
        windows: &[Vec<PrimitiveEvent>],
        attempt: u64,
    ) -> Result<QuantizedFilter, String> {
        let f32_filter = train_on_windows(pattern, windows, &self.train, attempt)?;
        let refs: Vec<&[PrimitiveEvent]> = windows.iter().map(Vec::as_slice).collect();
        QuantizedFilter::quantize(&f32_filter, &refs)
            .map_err(|e| format!("int8 calibration failed: {e}"))
    }

    fn encode(&self, filter: &QuantizedFilter) -> Vec<u8> {
        encode_quantized_filter(filter)
    }

    fn decode(&self, bytes: &[u8]) -> Result<QuantizedFilter, String> {
        decode_quantized_filter(bytes).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::PassthroughFilter;
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_events::{TypeId, WindowSpec};

    fn pattern() -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
                PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
            ]),
            vec![],
            WindowSpec::Count(4),
        )
    }

    fn windows(n: usize) -> Vec<Vec<PrimitiveEvent>> {
        let mut id = 0u64;
        (0..n)
            .map(|w| {
                (0..8)
                    .map(|i| {
                        let t = match (w + i) % 4 {
                            0 => 0,
                            1 => 1,
                            _ => 2,
                        };
                        id += 1;
                        PrimitiveEvent::new(id, TypeId(t), id, vec![0.25])
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(RetrainConfig::default().validate().is_ok());
        for bad in [
            RetrainConfig {
                backoff_base_windows: 0,
                ..RetrainConfig::default()
            },
            RetrainConfig {
                replay_windows: 1,
                ..RetrainConfig::default()
            },
            RetrainConfig {
                holdout_every: 1,
                ..RetrainConfig::default()
            },
            RetrainConfig {
                min_recall: 1.5,
                ..RetrainConfig::default()
            },
            RetrainConfig {
                min_precision: f64::NAN,
                ..RetrainConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn replay_ring_is_bounded_and_split_is_disjoint() {
        let cfg = RetrainConfig {
            replay_windows: 4,
            holdout_every: 2,
            ..RetrainConfig::default()
        };
        let mut rr: RetrainRuntime<PassthroughFilter> = RetrainRuntime::new(
            cfg,
            Box::new(FixedTrainer {
                filter: PassthroughFilter,
            }),
        );
        for w in windows(7) {
            rr.observe_window(&w);
        }
        assert_eq!(rr.replay.len(), 4, "ring keeps only the newest windows");
        let (train, holdout) = rr.split_replay();
        assert_eq!(train.len() + holdout.len(), 4);
        assert_eq!(holdout.len(), 2, "every 2nd of 4 windows is held out");
        // Newest window survived the ring.
        let newest = windows(7).pop().unwrap();
        assert_eq!(rr.replay.back().unwrap(), &newest);
    }

    struct FixedTrainer<F> {
        filter: F,
    }

    impl<F: Filter + Clone> ModelTrainer<F> for FixedTrainer<F> {
        fn retrain(
            &self,
            _pattern: &Pattern,
            _windows: &[Vec<PrimitiveEvent>],
            _attempt: u64,
        ) -> Result<F, String> {
            Ok(self.filter.clone())
        }
        fn encode(&self, _filter: &F) -> Vec<u8> {
            vec![1]
        }
        fn decode(&self, _bytes: &[u8]) -> Result<F, String> {
            Ok(self.filter.clone())
        }
    }

    #[test]
    fn gate_scores_oracle_candidate_perfectly() {
        let p = pattern();
        let holdout = windows(6);
        let oracle = OracleFilter::new(p.clone());
        let report = validate_candidate(&oracle, &oracle, &holdout).unwrap();
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.holdout_windows, 6);
        assert!(report.marked_rate > 0.0, "stream contains matches");
    }

    #[test]
    fn gate_fails_silent_and_panicking_candidates() {
        struct Silent;
        impl Filter for Silent {
            fn mark(&self, w: &[PrimitiveEvent]) -> Vec<bool> {
                vec![false; w.len()]
            }
            fn name(&self) -> &'static str {
                "silent"
            }
        }
        struct Panicky;
        impl Filter for Panicky {
            fn mark(&self, _w: &[PrimitiveEvent]) -> Vec<bool> {
                panic!("candidate bug")
            }
            fn name(&self) -> &'static str {
                "panicky"
            }
        }
        struct Short;
        impl Filter for Short {
            fn mark(&self, w: &[PrimitiveEvent]) -> Vec<bool> {
                vec![true; w.len() / 2]
            }
            fn name(&self) -> &'static str {
                "short"
            }
        }
        let p = pattern();
        let holdout = windows(6);
        let oracle = OracleFilter::new(p.clone());
        let silent = validate_candidate(&Silent, &oracle, &holdout).unwrap();
        assert_eq!(silent.recall, 0.0, "silent filter marks nothing");
        assert!(validate_candidate(&Panicky, &oracle, &holdout).is_err());
        assert!(validate_candidate(&Short, &oracle, &holdout).is_err());
    }

    #[test]
    fn train_on_windows_learns_the_replay_scheme() {
        let p = pattern();
        let ws = windows(48);
        let mut cfg = TrainConfig::quick();
        cfg.max_epochs = 30;
        let filter = train_on_windows(&p, &ws, &cfg, 0).unwrap();
        let oracle = OracleFilter::new(p.clone());
        let report = validate_candidate(&filter, &oracle, &ws[40..]).unwrap();
        assert!(report.recall > 0.8, "recall {} too low", report.recall);
        // Deterministic: the same attempt yields the same filter.
        let again = train_on_windows(&p, &ws, &cfg, 0).unwrap();
        assert_eq!(filter.mark(&ws[0]), again.mark(&ws[0]));
        // A retry uses a different seed.
        let retry = train_on_windows(&p, &ws, &cfg, 1).unwrap();
        let _ = retry; // different seed; no behavioural assertion needed
        assert!(train_on_windows(&p, &[], &cfg, 0).is_err());
    }

    #[test]
    fn retrainers_round_trip_their_candidates() {
        let p = pattern();
        let ws = windows(32);
        let mut cfg = TrainConfig::quick();
        cfg.max_epochs = 3;
        let ev = EventNetRetrainer { train: cfg.clone() };
        let cand = ev.retrain(&p, &ws, 0).unwrap();
        let back = ev.decode(&ev.encode(&cand)).unwrap();
        assert_eq!(cand.mark(&ws[0]), back.mark(&ws[0]));
        assert!(ev.decode(b"garbage").is_err());

        let q = QuantizedRetrainer { train: cfg };
        let qcand = q.retrain(&p, &ws, 0).unwrap();
        let qback = q.decode(&q.encode(&qcand)).unwrap();
        assert_eq!(qcand, qback, "int8 round trip is byte-exact");
    }
}
