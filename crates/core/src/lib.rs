//! # dlacep-core
//!
//! The DLACEP framework (Amir, Kolchinsky & Schuster, SIGMOD 2022): a
//! deep-learning filter fused with a classical CEP engine for approximate
//! complex event processing.
//!
//! The pipeline (paper Fig. 4):
//! 1. an [`assembler`] slides `MarkSize = 2W` windows over the stream in
//!    steps of `StepSize = W`;
//! 2. a [`filter`] (stacked-BiLSTM event-network with a BI-CRF head, or a
//!    window-network classifier) marks the events that participate in full
//!    matches;
//! 3. marked events — deduplicated, with their original arrival ids — go to
//!    a CEP extractor whose ID-distance constraint enforces the original
//!    count window, so no false-positive matches are emitted (§4.4);
//! 4. the union of window matches is the output.
//!
//! [`trainer`] covers the offline phase: labeling a historical stream with
//! the exact engine, embedding, and training either network to the paper's
//! convergence criterion. [`metrics`] and [`objective`] quantify the
//! throughput-gain / recall trade-off against exact CEP.
//!
//! ## Quick start
//!
//! ```
//! use dlacep_core::prelude::*;
//! use dlacep_cep::{Pattern, PatternExpr, TypeSet};
//! use dlacep_events::{EventStream, TypeId, WindowSpec};
//!
//! // SEQ(A, B) WITHIN 4 — find every A followed by a B within 4 arrivals.
//! let pattern = Pattern::new(
//!     PatternExpr::Seq(vec![
//!         PatternExpr::event(TypeSet::single(TypeId(0)), "a"),
//!         PatternExpr::event(TypeSet::single(TypeId(1)), "b"),
//!     ]),
//!     vec![],
//!     WindowSpec::Count(4),
//! );
//! let mut stream = EventStream::new();
//! for i in 0..32 {
//!     stream.push(TypeId((i % 3) as u32), i, vec![0.0]);
//! }
//! // The oracle filter marks exactly the true match participants — the
//! // upper bound any trained network approaches.
//! let dlacep = Dlacep::new(pattern.clone(), OracleFilter::new(pattern.clone())).unwrap();
//! let report = dlacep.run(stream.events());
//! assert!(!report.matches.is_empty());
//! ```

pub mod assembler;
pub mod builder;
pub mod chaos;
pub mod drift;
pub mod durable;
pub mod embed;
pub mod filter;
pub mod guard;
pub mod metrics;
pub mod model;
pub mod multi;
pub mod objective;
pub mod persist;
pub mod pipeline;
pub mod quantized;
pub mod retrain;
pub mod runtime;
pub mod trainer;

pub use assembler::{AssemblerConfig, AssemblerError};
pub use builder::{DlacepBuilder, DurableBuilder, StreamingBuilder};
pub use chaos::{out_of_order_timestamps, ChaosFault, ChaosFilter, ChaosTrainer, TrainFault};
pub use dlacep_par::{Parallelism, PoolStats};
pub use drift::{DriftConfig, DriftMonitor, DriftMonitorState, DriftState};
pub use durable::{
    decode_checkpoint, decode_offer, dur_dir_from_env, encode_checkpoint, encode_offer, DurConfig,
    DurError, DurableDlacep, RecoveryReport, DUR_DIR_ENV,
};
pub use embed::EventEmbedder;
pub use filter::{EventNetFilter, Filter, OracleFilter, PassthroughFilter, WindowNetFilter};
pub use guard::{BreakerState, FaultKind, FilterGuard, GuardConfig, GuardState, GuardStats};
pub use metrics::{compare, compare_runs, run_ecep, ComparisonReport};
pub use model::{EventNetwork, NetworkConfig, WindowNetwork};
pub use multi::{train_multi_pattern, MultiPatternDlacep, MultiReport, MultiTraining};
pub use objective::AcepObjective;
pub use persist::{
    load_event_filter, load_quantized_filter, load_window_filter, save_event_filter,
    save_quantized_filter, save_window_filter, PersistError,
};
pub use pipeline::{Dlacep, DlacepError, DlacepReport};
pub use quantized::{QuantizeError, QuantizedEventNetwork, QuantizedFilter};
pub use retrain::{
    train_on_windows, EventNetRetrainer, GateReport, ModelTrainer, QuantizedRetrainer,
    RetrainCheckpoint, RetrainConfig, RetrainState,
};
pub use runtime::{
    ModeCause, ModeTransition, RetrainReport, RuntimeCheckpoint, RuntimeConfig, RuntimeError,
    RuntimeMode, RuntimeReport, StreamingDlacep,
};
pub use trainer::{
    train_event_filter, train_window_filter, EventNetTraining, TrainConfig, WindowNetTraining,
};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::assembler::AssemblerConfig;
    pub use crate::builder::{DlacepBuilder, DurableBuilder, StreamingBuilder};
    pub use crate::drift::DriftConfig;
    pub use crate::durable::{DurConfig, DurableDlacep};
    pub use crate::filter::{
        EventNetFilter, Filter, OracleFilter, PassthroughFilter, WindowNetFilter,
    };
    pub use crate::guard::GuardConfig;
    pub use crate::metrics::{compare, ComparisonReport};
    pub use crate::objective::AcepObjective;
    pub use crate::pipeline::{Dlacep, DlacepError, DlacepReport};
    pub use crate::quantized::{QuantizeError, QuantizedEventNetwork, QuantizedFilter};
    pub use crate::retrain::{
        EventNetRetrainer, ModelTrainer, QuantizedRetrainer, RetrainConfig, RetrainState,
    };
    pub use crate::runtime::{
        RuntimeConfig, RuntimeError, RuntimeMode, RuntimeReport, StreamingDlacep,
    };
    pub use crate::trainer::{train_event_filter, train_window_filter, TrainConfig};
    pub use dlacep_par::Parallelism;
}
