//! Multi-pattern monitoring (paper §4.3).
//!
//! When several patterns are monitored at once, DLACEP trains a *single*
//! network on labels OR-ed across patterns ("semantically unifying the
//! patterns into one"): an event is positive if it participates in a full
//! match of *either* pattern. At evaluation time the shared filter runs once
//! per window; the surviving events feed one CEP extractor per pattern, and
//! each pattern's matches are reported separately.
//!
//! This differs from [`dlacep_cep::Pattern::disjunction_of`], which fuses
//! the patterns into one composite DISJ query with one merged match set.
//! Since the pattern-compiler redesign, extraction itself is also shared:
//! the set compiles to one [`SharedPlan`] whose fused automaton scans the
//! filtered stream once, with matches attributed back per pattern.

use crate::embed::EventEmbedder;
use crate::filter::{EventNetFilter, Filter};
use crate::model::{EventNetwork, NetworkConfig};
use crate::pipeline::DlacepError;
use crate::trainer::TrainConfig;
use dlacep_cep::engine::CepEngine;
use dlacep_cep::{Match, NfaConfig, Pattern, PatternSet, SharedPlan};
use dlacep_data::label::{label_stream_multi, relevant_types};
use dlacep_data::train_test_split;
use dlacep_events::{EventStream, PrimitiveEvent};
use dlacep_nn::optim::Optimizer;
use dlacep_nn::{Adam, BatchSampler, Confusion, ConvergenceDetector, TrainReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A DLACEP instance monitoring several patterns with one shared filter
/// and one shared extraction plan.
pub struct MultiPatternDlacep {
    patterns: PatternSet,
    shared: SharedPlan,
    filter: EventNetFilter,
    /// Shared count-window size `W` (all patterns must agree — the paper's
    /// unification trains on samples of one fixed `2W`).
    w: u64,
}

/// Outcome of a multi-pattern run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Matches per pattern, in input order.
    pub matches: Vec<Vec<Match>>,
    /// Distinct events relayed to the extractors.
    pub events_relayed: usize,
    /// Events fed to the pipeline.
    pub events_total: usize,
}

/// Outcome of multi-pattern training.
pub struct MultiTraining {
    /// The ready system.
    pub system: MultiPatternDlacep,
    /// Loss trajectory.
    pub report: TrainReport,
    /// Event-level confusion on the held-out split (union labels).
    pub test: Confusion,
}

/// Train one event-network for a set of patterns (labels OR-ed, §4.3).
///
/// # Errors
/// Returns [`DlacepError::Pattern`] when `patterns` is empty or the windows
/// disagree, and [`DlacepError::Compile`] when any pattern fails to compile.
pub fn train_multi_pattern(
    patterns: &[Pattern],
    stream: &EventStream,
    cfg: &TrainConfig,
) -> Result<MultiTraining, DlacepError> {
    let set = PatternSet::new(patterns.to_vec())?;
    let w = set.window().size();
    let shared = set.compile()?;
    // Relevant types = union over patterns; the fused plan carries every
    // branch of every pattern, so one embedding serves all.
    let relevant = relevant_types(shared.plan());
    let num_attrs = stream.events().first().map_or(0, |e| e.attrs.len());
    let embedder = EventEmbedder::new(&relevant, num_attrs);

    let sample_len = (2 * w) as usize;
    let samples = label_stream_multi(patterns, stream, sample_len);
    let mut embedded: Vec<(Vec<Vec<f32>>, Vec<bool>, bool)> = samples
        .iter()
        .filter(|s| s.len == sample_len)
        .map(|s| {
            let evs = &stream.events()[s.start..s.start + s.len];
            (
                embedder.embed_window(evs, s.len),
                s.event_labels.clone(),
                s.window_label,
            )
        })
        .collect();
    let (mut train, test) = {
        let all = std::mem::take(&mut embedded);
        train_test_split(all, cfg.train_fraction, cfg.seed)
    };
    if cfg.oversample_positives {
        let pos: Vec<usize> = (0..train.len()).filter(|&i| train[i].2).collect();
        let neg = train.len() - pos.len();
        if !pos.is_empty() && neg > pos.len() {
            let copies = (neg / pos.len()).saturating_sub(1).min(15);
            for &i in pos.iter().collect::<Vec<_>>() {
                for _ in 0..copies {
                    train.push(train[i].clone());
                }
            }
            train.shuffle(&mut StdRng::seed_from_u64(cfg.seed ^ 0x77));
        }
    }

    let mut net = EventNetwork::new(NetworkConfig {
        input_dim: embedder.dim(),
        hidden: cfg.hidden,
        layers: cfg.layers,
        seed: cfg.seed,
    });
    let mut opt = Adam::new(cfg.lr.lr_at(0));
    let mut sampler = BatchSampler::new(train.len(), cfg.seed);
    let mut detector =
        ConvergenceDetector::new(cfg.convergence_threshold, cfg.convergence_patience);
    let mut losses = Vec::new();
    let mut converged = false;
    for epoch in 0..cfg.max_epochs {
        if train.is_empty() {
            break;
        }
        opt.set_lr(cfg.lr.lr_at(epoch));
        let mut loss = 0.0;
        let mut batches = 0;
        for idx in sampler.epoch(cfg.batch.at(epoch)) {
            let batch: Vec<(&[Vec<f32>], &[bool])> = idx
                .iter()
                .map(|&i| (train[i].0.as_slice(), train[i].1.as_slice()))
                .collect();
            loss += net.train_batch(&batch, &mut opt, cfg.grad_clip).loss;
            batches += 1;
        }
        let loss = loss / batches.max(1) as f32;
        losses.push(loss);
        if detector.observe(loss) {
            converged = true;
            break;
        }
    }
    let mut test_conf = Confusion::new();
    for (wnd, labels, _) in &test {
        let pred: Vec<bool> = match cfg.mark_threshold {
            None => net.mark(wnd),
            Some(t) => net.marginals(wnd).into_iter().map(|p| p > t).collect(),
        };
        test_conf.record_all(&pred, labels);
    }
    Ok(MultiTraining {
        system: MultiPatternDlacep {
            patterns: set,
            shared,
            filter: EventNetFilter {
                network: net,
                embedder,
                threshold: cfg.mark_threshold,
            },
            w,
        },
        report: TrainReport {
            epochs_run: losses.len(),
            epoch_losses: losses,
            converged,
        },
        test: test_conf,
    })
}

impl MultiPatternDlacep {
    /// The monitored patterns.
    pub fn patterns(&self) -> &[Pattern] {
        self.patterns.patterns()
    }

    /// The shared extraction plan (fused automaton + attribution table).
    pub fn shared_plan(&self) -> &SharedPlan {
        &self.shared
    }

    /// The shared trained filter.
    pub fn filter(&self) -> &EventNetFilter {
        &self.filter
    }

    /// Run: filter the stream once, scan the survivors once with the fused
    /// shared-plan automaton, and attribute matches back per pattern.
    pub fn run(&self, events: &[PrimitiveEvent]) -> MultiReport {
        let assembler = crate::assembler::AssemblerConfig::paper_default(self.w);
        let mut relayed: BTreeMap<u64, PrimitiveEvent> = BTreeMap::new();
        for window in assembler.windows(events) {
            let marks = self.filter.mark(window);
            for (ev, keep) in window.iter().zip(marks) {
                if keep {
                    relayed.entry(ev.id.0).or_insert_with(|| ev.clone());
                }
            }
        }
        let filtered: Vec<PrimitiveEvent> = relayed.into_values().collect();
        let mut engine = self.shared.engine(NfaConfig::default());
        let fused = engine.run(&filtered);
        let matches = self.shared.attribute(&fused);
        MultiReport {
            matches,
            events_relayed: filtered.len(),
            events_total: events.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_data::label::ground_truth_matches;
    use dlacep_events::{TypeId, WindowSpec};
    use rand::Rng;

    fn seq2(a: u32, b: u32) -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(TypeId(a)), "x"),
                PatternExpr::event(TypeSet::single(TypeId(b)), "y"),
            ]),
            vec![],
            WindowSpec::Count(6),
        )
    }

    fn stream(n: usize, seed: u64) -> EventStream {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = EventStream::new();
        for i in 0..n {
            s.push(
                TypeId(rng.gen_range(0..6u32)),
                i as u64,
                vec![rng.gen_range(0.0..1.0)],
            );
        }
        s
    }

    #[test]
    fn one_network_serves_two_patterns() {
        let p1 = seq2(0, 1);
        let p2 = seq2(2, 3);
        let history = stream(2_400, 1);
        let mut cfg = TrainConfig::quick();
        cfg.max_epochs = 14;
        let trained = train_multi_pattern(&[p1.clone(), p2.clone()], &history, &cfg).unwrap();
        assert!(trained.report.epochs_run > 0);

        let live = stream(1_200, 2);
        let report = trained.system.run(live.events());
        assert_eq!(report.matches.len(), 2);
        let t1 = ground_truth_matches(&p1, live.events());
        let t2 = ground_truth_matches(&p2, live.events());
        assert!(!t1.is_empty() && !t2.is_empty());
        let recall = |found: &Vec<Match>, truth: &Vec<Match>| {
            let tk: std::collections::BTreeSet<_> =
                truth.iter().map(|m| m.event_ids.clone()).collect();
            let c = found.iter().filter(|m| tk.contains(&m.event_ids)).count();
            c as f64 / truth.len() as f64
        };
        assert!(recall(&report.matches[0], &t1) > 0.4, "p1 recall");
        assert!(recall(&report.matches[1], &t2) > 0.4, "p2 recall");
        // No false positives per pattern (id-distance constraint).
        for (found, truth) in report.matches.iter().zip([&t1, &t2]) {
            let tk: std::collections::BTreeSet<_> =
                truth.iter().map(|m| m.event_ids.clone()).collect();
            for m in found {
                assert!(tk.contains(&m.event_ids));
            }
        }
    }

    #[test]
    fn mismatched_windows_rejected() {
        let p1 = seq2(0, 1);
        let mut p2 = seq2(2, 3);
        p2.window = WindowSpec::Count(9);
        let err = train_multi_pattern(&[p1, p2], &stream(200, 0), &TrainConfig::quick())
            .err()
            .expect("mixed windows must be rejected");
        assert!(matches!(
            err,
            DlacepError::Pattern(dlacep_cep::PatternError::WindowMismatch { .. })
        ));
    }

    #[test]
    fn empty_pattern_set_rejected() {
        let err = train_multi_pattern(&[], &stream(100, 0), &TrainConfig::quick())
            .err()
            .expect("empty set must be rejected");
        assert!(matches!(
            err,
            DlacepError::Pattern(dlacep_cep::PatternError::EmptySet)
        ));
    }
}
