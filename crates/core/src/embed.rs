//! Event embedding (paper §4.3).
//!
//! Each primitive event becomes a dense vector: a *compacted* one-hot of the
//! pattern-relevant event types (each relevant type gets its own slot, every
//! other type shares one "other" slot — the paper's example compresses 500
//! types to 2 when only one is pattern-relevant) concatenated with the
//! event's numeric attributes (already standardized by the data layer).

use dlacep_cep::plan::Plan;
use dlacep_cep::TypeSet;
use dlacep_events::{PrimitiveEvent, TypeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fitted embedder mapping events to fixed-width vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventEmbedder {
    /// Relevant type → one-hot slot.
    slots: HashMap<TypeId, usize>,
    /// Slot count for types (relevant types + 1 "other" slot).
    type_slots: usize,
    /// Number of numeric attributes appended.
    num_attrs: usize,
}

impl EventEmbedder {
    /// Build from the set of pattern-relevant types.
    pub fn new(relevant: &TypeSet, num_attrs: usize) -> Self {
        let slots: HashMap<TypeId, usize> = relevant
            .types()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        Self {
            type_slots: slots.len() + 1,
            slots,
            num_attrs,
        }
    }

    /// Build from a compiled plan (relevant types = all leaf types, including
    /// Kleene-inner and negated elements).
    pub fn for_plan(plan: &Plan, num_attrs: usize) -> Self {
        Self::new(&dlacep_data::label::relevant_types(plan), num_attrs)
    }

    /// Width of the produced vectors.
    pub fn dim(&self) -> usize {
        self.type_slots + self.num_attrs
    }

    /// Embed one event.
    pub fn embed(&self, ev: &PrimitiveEvent) -> Vec<f32> {
        let mut v = vec![0.0_f32; self.dim()];
        let slot = self
            .slots
            .get(&ev.type_id)
            .copied()
            .unwrap_or(self.type_slots - 1);
        v[slot] = 1.0;
        for (i, a) in ev.attrs.iter().take(self.num_attrs).enumerate() {
            v[self.type_slots + i] = *a as f32;
        }
        v
    }

    /// Embed one event into a caller-provided buffer of width
    /// [`EventEmbedder::dim`] without allocating (the quantized fast path
    /// writes straight into its scratch arena).
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()`.
    pub fn embed_into(&self, ev: &PrimitiveEvent, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim(), "embed_into buffer width mismatch");
        out.fill(0.0);
        let slot = self
            .slots
            .get(&ev.type_id)
            .copied()
            .unwrap_or(self.type_slots - 1);
        out[slot] = 1.0;
        for (i, a) in ev.attrs.iter().take(self.num_attrs).enumerate() {
            out[self.type_slots + i] = *a as f32;
        }
    }

    /// Embed a window, padding with all-zero "blank event" vectors up to
    /// `pad_to` (used for simulated time-based windows, paper Fig. 14).
    pub fn embed_window(&self, events: &[PrimitiveEvent], pad_to: usize) -> Vec<Vec<f32>> {
        let mut out: Vec<Vec<f32>> = events.iter().map(|e| self.embed(e)).collect();
        while out.len() < pad_to {
            out.push(vec![0.0; self.dim()]);
        }
        out
    }
}

// Binary codec (quantized-filter bundles): the slot map is encoded as a
// slot-sorted entry list so the byte stream is deterministic regardless of
// hash order.
impl dlacep_dur::Enc for EventEmbedder {
    fn enc(&self, e: &mut dlacep_dur::Encoder) {
        let mut entries: Vec<(TypeId, usize)> = self.slots.iter().map(|(&t, &s)| (t, s)).collect();
        entries.sort_by_key(|&(_, s)| s);
        e.put(&(entries.len() as u64));
        for (t, s) in entries {
            e.put(&t);
            e.put(&s);
        }
        e.put(&self.type_slots);
        e.put(&self.num_attrs);
    }
}

impl dlacep_dur::Dec for EventEmbedder {
    fn dec(d: &mut dlacep_dur::Decoder<'_>) -> Result<Self, dlacep_dur::CodecError> {
        let n: u64 = d.get()?;
        let mut slots = HashMap::new();
        for _ in 0..n {
            let t: TypeId = d.get()?;
            let s: usize = d.get()?;
            slots.insert(t, s);
        }
        let type_slots: usize = d.get()?;
        let num_attrs: usize = d.get()?;
        if type_slots != slots.len() + 1 {
            return Err(dlacep_dur::CodecError::Malformed(
                "embedder slot count inconsistent".into(),
            ));
        }
        Ok(Self {
            slots,
            type_slots,
            num_attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u32, attrs: Vec<f64>) -> PrimitiveEvent {
        PrimitiveEvent::new(0, TypeId(t), 0, attrs)
    }

    fn embedder() -> EventEmbedder {
        EventEmbedder::new(&TypeSet::new(vec![TypeId(3), TypeId(7)]), 1)
    }

    #[test]
    fn dim_is_types_plus_other_plus_attrs() {
        assert_eq!(embedder().dim(), 2 + 1 + 1);
    }

    #[test]
    fn relevant_types_get_own_slots() {
        let e = embedder();
        let a = e.embed(&ev(3, vec![0.5]));
        let b = e.embed(&ev(7, vec![0.5]));
        assert_eq!(a[..3], [1.0, 0.0, 0.0]);
        assert_eq!(b[..3], [0.0, 1.0, 0.0]);
    }

    #[test]
    fn irrelevant_types_share_other_slot() {
        let e = embedder();
        let x = e.embed(&ev(99, vec![0.0]));
        let y = e.embed(&ev(55, vec![0.0]));
        assert_eq!(x[..3], [0.0, 0.0, 1.0]);
        assert_eq!(x[..3], y[..3]);
    }

    #[test]
    fn attributes_are_appended() {
        let e = embedder();
        let v = e.embed(&ev(3, vec![-1.25]));
        assert_eq!(v[3], -1.25);
    }

    #[test]
    fn missing_attrs_stay_zero() {
        let e = embedder();
        let v = e.embed(&ev(3, vec![]));
        assert_eq!(v[3], 0.0);
    }

    #[test]
    fn padding_adds_blank_vectors() {
        let e = embedder();
        let w = e.embed_window(&[ev(3, vec![1.0])], 3);
        assert_eq!(w.len(), 3);
        assert!(w[1].iter().all(|&x| x == 0.0));
        assert!(w[2].iter().all(|&x| x == 0.0));
    }
}
