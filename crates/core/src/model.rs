//! The paper's two DL models (§4.3, Fig. 7):
//!
//! * **event-network** — stacked BiLSTM encoder + linear emission layer +
//!   BI-CRF head, labeling every event in the input window as match
//!   participant or not;
//! * **window-network** — the same encoder, mean-pooled over time into a
//!   single linear classification head labeling the whole window.

use dlacep_nn::graph::{Graph, Var};
use dlacep_nn::matrix::Matrix;
use dlacep_nn::optim::Optimizer;
use dlacep_nn::{BiCrf, Initializer, Linear, ParamStore, StackedBiLstm, TrainStep};
use serde::{Deserialize, Serialize};

/// Architecture hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Embedding width (from [`crate::embed::EventEmbedder::dim`]).
    pub input_dim: usize,
    /// BiLSTM hidden width per direction (paper: 75).
    pub hidden: usize,
    /// Number of stacked BiLSTM layers (paper: 3; Fig. 13c–d sweeps 3–5).
    pub layers: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's architecture: 3 stacked BiLSTM layers, hidden 75.
    pub fn paper_default(input_dim: usize) -> Self {
        Self {
            input_dim,
            hidden: 75,
            layers: 3,
            seed: 42,
        }
    }

    /// A scaled-down architecture for CPU-budget experiments and tests.
    pub fn small(input_dim: usize) -> Self {
        Self {
            input_dim,
            hidden: 16,
            layers: 1,
            seed: 42,
        }
    }
}

fn window_inputs(g: &mut Graph, batch: &[&[Vec<f32>]]) -> Vec<Var> {
    let t_len = batch[0].len();
    debug_assert!(
        batch.iter().all(|w| w.len() == t_len),
        "uniform sequence length"
    );
    let dim = batch[0][0].len();
    (0..t_len)
        .map(|t| {
            let mut m = Matrix::zeros(batch.len(), dim);
            for (b, w) in batch.iter().enumerate() {
                m.row_mut(b).copy_from_slice(&w[t]);
            }
            g.input(m)
        })
        .collect()
}

/// The event-network: per-event labeling via BI-CRF.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventNetwork {
    /// Architecture.
    pub config: NetworkConfig,
    store: ParamStore,
    encoder: StackedBiLstm,
    emit: Linear,
    crf: BiCrf,
}

impl EventNetwork {
    /// Allocate a fresh network.
    pub fn new(config: NetworkConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(config.seed);
        let encoder = StackedBiLstm::new(
            &mut store,
            &mut init,
            config.input_dim,
            config.hidden,
            config.layers,
        );
        let emit = Linear::new(&mut store, &mut init, encoder.out_dim(), 2);
        let crf = BiCrf::new(&mut store, &mut init, 2);
        Self {
            config,
            store,
            encoder,
            emit,
            crf,
        }
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Internal read access for the quantizer: `(params, encoder, emission
    /// layer, CRF head)`.
    pub(crate) fn parts(&self) -> (&ParamStore, &StackedBiLstm, &Linear, &BiCrf) {
        (&self.store, &self.encoder, &self.emit, &self.crf)
    }

    fn emissions(&self, g: &mut Graph, xs: &[Var]) -> Vec<Var> {
        let hs = self.encoder.forward(g, &self.store, xs);
        hs.into_iter()
            .map(|h| self.emit.forward(g, &self.store, h))
            .collect()
    }

    fn infer_emissions(&self, window: &[Vec<f32>]) -> Matrix {
        let mut xs = Matrix::zeros(window.len(), self.config.input_dim);
        for (t, row) in window.iter().enumerate() {
            xs.row_mut(t).copy_from_slice(row);
        }
        let hs = self.encoder.infer(&self.store, &xs);
        self.emit.infer(&self.store, &hs)
    }

    /// Label one window (inference): `true` = event participates in a match.
    /// Uses the tape-free fast path — this is the per-window cost `C_filter`
    /// of the paper's §3.2 analysis.
    pub fn mark(&self, window: &[Vec<f32>]) -> Vec<bool> {
        if window.is_empty() {
            return Vec::new();
        }
        let emissions = self.infer_emissions(window);
        self.crf
            .decode(&self.store, &emissions)
            .into_iter()
            .map(|l| l == 1)
            .collect()
    }

    /// Posterior probability of the positive label per event.
    pub fn marginals(&self, window: &[Vec<f32>]) -> Vec<f32> {
        if window.is_empty() {
            return Vec::new();
        }
        let emissions = self.infer_emissions(window);
        let m = self.crf.marginals(&self.store, &emissions);
        (0..window.len()).map(|t| m.get(t, 1)).collect()
    }

    /// One optimizer step over a mini-batch of `(window, gold labels)`;
    /// returns the mean BI-CRF negative log-likelihood plus the pre-clip
    /// gradient norm. All windows in the batch must share the same length.
    pub fn train_batch(
        &mut self,
        batch: &[(&[Vec<f32>], &[bool])],
        opt: &mut dyn Optimizer,
        grad_clip: f32,
    ) -> TrainStep {
        assert!(!batch.is_empty());
        let t_len = batch[0].0.len();
        let b_len = batch.len();
        self.store.zero_grads();
        let mut g = Graph::with_capacity(t_len * 24 * self.config.layers * 2);
        let windows: Vec<&[Vec<f32>]> = batch.iter().map(|(w, _)| *w).collect();
        let xs = window_inputs(&mut g, &windows);
        let em_vars = self.emissions(&mut g, &xs);
        // Per-sequence CRF loss + analytic emission gradients.
        let scale = 1.0 / b_len as f32;
        let mut seeds: Vec<Matrix> = (0..t_len).map(|_| Matrix::zeros(b_len, 2)).collect();
        let mut total_nll = 0.0;
        for (b, (_, labels)) in batch.iter().enumerate() {
            assert_eq!(labels.len(), t_len, "labels match window length");
            let emissions = Matrix::from_fn(t_len, 2, |t, l| g.value(em_vars[t]).get(b, l));
            let gold: Vec<usize> = labels.iter().map(|&x| usize::from(x)).collect();
            let (nll, de) = self
                .crf
                .nll_backward(&mut self.store, &emissions, &gold, scale);
            total_nll += nll;
            for (t, seed) in seeds.iter_mut().enumerate().take(t_len) {
                for l in 0..2 {
                    *seed.get_mut(b, l) += de.get(t, l);
                }
            }
        }
        let seed_pairs: Vec<(Var, Matrix)> = em_vars.into_iter().zip(seeds).collect();
        g.backward_seeded(&seed_pairs, &mut self.store);
        let grad_norm = self.store.clip_grad_norm(grad_clip);
        opt.step(&mut self.store);
        TrainStep {
            loss: total_nll / b_len as f32,
            grad_norm,
        }
    }
}

/// The window-network: whole-window applicability classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowNetwork {
    /// Architecture.
    pub config: NetworkConfig,
    store: ParamStore,
    encoder: StackedBiLstm,
    head: Linear,
}

impl WindowNetwork {
    /// Allocate a fresh network.
    pub fn new(config: NetworkConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init = Initializer::seeded(config.seed);
        let encoder = StackedBiLstm::new(
            &mut store,
            &mut init,
            config.input_dim,
            config.hidden,
            config.layers,
        );
        let head = Linear::new(&mut store, &mut init, encoder.out_dim(), 1);
        Self {
            config,
            store,
            encoder,
            head,
        }
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn logits(&self, g: &mut Graph, xs: &[Var]) -> Var {
        let hs = self.encoder.forward(g, &self.store, xs);
        // Mean-pool the per-timestep encodings.
        let mut acc = hs[0];
        for h in &hs[1..] {
            acc = g.add(acc, *h);
        }
        let pooled = g.scale(acc, 1.0 / hs.len() as f32);
        self.head.forward(g, &self.store, pooled)
    }

    /// Probability the window contains at least one full match (tape-free
    /// fast path).
    pub fn probability(&self, window: &[Vec<f32>]) -> f32 {
        if window.is_empty() {
            return 0.0;
        }
        let mut xs = Matrix::zeros(window.len(), self.config.input_dim);
        for (t, row) in window.iter().enumerate() {
            xs.row_mut(t).copy_from_slice(row);
        }
        let hs = self.encoder.infer(&self.store, &xs);
        // Mean-pool rows into 1×2H.
        let mut pooled = hs.sum_rows();
        pooled.map_inplace(|v| v / hs.rows() as f32);
        let logit = self.head.infer(&self.store, &pooled).get(0, 0);
        1.0 / (1.0 + (-logit).exp())
    }

    /// Binary applicability decision (threshold 0.5).
    pub fn applicable(&self, window: &[Vec<f32>]) -> bool {
        self.probability(window) > 0.5
    }

    /// One optimizer step over a mini-batch of `(window, label)`; returns the
    /// mean binary cross-entropy plus the pre-clip gradient norm.
    pub fn train_batch(
        &mut self,
        batch: &[(&[Vec<f32>], bool)],
        opt: &mut dyn Optimizer,
        grad_clip: f32,
    ) -> TrainStep {
        assert!(!batch.is_empty());
        self.store.zero_grads();
        let mut g = Graph::new();
        let windows: Vec<&[Vec<f32>]> = batch.iter().map(|(w, _)| *w).collect();
        let xs = window_inputs(&mut g, &windows);
        let logits = self.logits(&mut g, &xs);
        let targets = Matrix::from_fn(batch.len(), 1, |b, _| if batch[b].1 { 1.0 } else { 0.0 });
        let loss = g.bce_with_logits(logits, targets);
        let out = g.value(loss).get(0, 0);
        g.backward(loss, &mut self.store);
        let grad_norm = self.store.clip_grad_norm(grad_clip);
        opt.step(&mut self.store);
        TrainStep {
            loss: out,
            grad_norm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlacep_nn::Adam;

    /// A window where events of "type slot 0" should be positive.
    fn toy_window(pattern: &[bool]) -> (Vec<Vec<f32>>, Vec<bool>) {
        let w: Vec<Vec<f32>> = pattern
            .iter()
            .map(|&p| {
                if p {
                    vec![1.0, 0.0, 0.3]
                } else {
                    vec![0.0, 1.0, -0.3]
                }
            })
            .collect();
        (w, pattern.to_vec())
    }

    #[test]
    fn event_network_shapes() {
        let net = EventNetwork::new(NetworkConfig::small(3));
        let (w, _) = toy_window(&[true, false, true, false]);
        assert_eq!(net.mark(&w).len(), 4);
        assert_eq!(net.marginals(&w).len(), 4);
        assert!(net.num_parameters() > 0);
        assert!(net.mark(&[]).is_empty());
    }

    #[test]
    fn event_network_learns_identity_labeling() {
        // Labels equal the one-hot slot: a trivially learnable mapping.
        let mut net = EventNetwork::new(NetworkConfig::small(3));
        let mut opt = Adam::new(0.02);
        let data: Vec<(Vec<Vec<f32>>, Vec<bool>)> = vec![
            toy_window(&[true, false, true, false]),
            toy_window(&[false, false, true, true]),
            toy_window(&[true, true, false, false]),
            toy_window(&[false, true, false, true]),
        ];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            let batch: Vec<(&[Vec<f32>], &[bool])> = data
                .iter()
                .map(|(w, l)| (w.as_slice(), l.as_slice()))
                .collect();
            let loss = net.train_batch(&batch, &mut opt, 5.0).loss;
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        let (w, labels) = toy_window(&[true, false, false, true]);
        assert_eq!(net.mark(&w), labels);
    }

    #[test]
    fn window_network_learns_any_positive() {
        // Window label = any event has slot-0 type.
        let mut net = WindowNetwork::new(NetworkConfig::small(3));
        let mut opt = Adam::new(0.02);
        let data: Vec<(Vec<Vec<f32>>, bool)> = vec![
            (toy_window(&[false, false, false, false]).0, false),
            (toy_window(&[false, true, false, false]).0, true),
            (toy_window(&[true, false, false, false]).0, true),
            (toy_window(&[false, false, false, false]).0, false),
        ];
        for _ in 0..80 {
            let batch: Vec<(&[Vec<f32>], bool)> =
                data.iter().map(|(w, l)| (w.as_slice(), *l)).collect();
            net.train_batch(&batch, &mut opt, 5.0);
        }
        assert!(net.applicable(&toy_window(&[false, true, true, false]).0));
        assert!(!net.applicable(&toy_window(&[false, false, false, false]).0));
    }

    #[test]
    fn window_network_probability_bounds() {
        let net = WindowNetwork::new(NetworkConfig::small(3));
        let (w, _) = toy_window(&[true, false]);
        let p = net.probability(&w);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(net.probability(&[]), 0.0);
    }

    #[test]
    fn networks_serialize_roundtrip() {
        let net = EventNetwork::new(NetworkConfig::small(3));
        let json = serde_json::to_string(&net).unwrap();
        let back: EventNetwork = serde_json::from_str(&json).unwrap();
        let (w, _) = toy_window(&[true, false, true]);
        assert_eq!(net.mark(&w), back.mark(&w));
    }
}
