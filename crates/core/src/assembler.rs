//! The DNN input assembler (paper §4.2, Fig. 4–6).
//!
//! The trained network evaluates the stream in windows of `MarkSize` events
//! advancing `StepSize` events at a time. The defaults `MarkSize = 2W`,
//! `StepSize = W` guarantee every match of window size `W` lies entirely
//! inside at least one assembler window (Fig. 5's missed-match hazard) while
//! keeping the per-event inference cost at two passes.

use dlacep_events::{window::CountWindows, PrimitiveEvent};
use serde::{Deserialize, Serialize};

/// Assembler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssemblerConfig {
    /// Events marked per evaluation step (`MarkSize ≥ W`).
    pub mark_size: usize,
    /// Step between evaluations (`StepSize ≥ max(1, MarkSize − W)`).
    pub step_size: usize,
}

/// Why an assembler configuration is invalid for a pattern window `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssemblerError {
    /// `MarkSize < W`: matches could never fit in one marking window.
    MarkSizeTooSmall,
    /// `StepSize > MarkSize − W` (and > 1): matches straddling two
    /// consecutive windows would be missed (Fig. 5).
    StepSizeTooLarge,
    /// Zero sizes.
    Zero,
}

impl std::fmt::Display for AssemblerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssemblerError::MarkSizeTooSmall => write!(f, "MarkSize must be at least W"),
            AssemblerError::StepSizeTooLarge => {
                write!(f, "StepSize must not exceed max(1, MarkSize - W)")
            }
            AssemblerError::Zero => write!(f, "MarkSize and StepSize must be positive"),
        }
    }
}

impl std::error::Error for AssemblerError {}

impl AssemblerConfig {
    /// The paper's choice: `MarkSize = 2W`, `StepSize = W` (§5.1 preliminary
    /// experiments found this the best recall/throughput balance).
    pub fn paper_default(w: u64) -> Self {
        let w = w as usize;
        Self {
            mark_size: 2 * w,
            step_size: w.max(1),
        }
    }

    /// Validate against the pattern's window size `W` (the constraints of
    /// §4.2).
    pub fn validate(&self, w: u64) -> Result<(), AssemblerError> {
        let w = w as usize;
        if self.mark_size == 0 || self.step_size == 0 {
            return Err(AssemblerError::Zero);
        }
        if self.mark_size < w {
            return Err(AssemblerError::MarkSizeTooSmall);
        }
        let max_step = (self.mark_size - w).max(1);
        if self.step_size > max_step {
            return Err(AssemblerError::StepSizeTooLarge);
        }
        Ok(())
    }

    /// Iterate assembler windows over a stream prefix.
    pub fn windows<'a>(&self, events: &'a [PrimitiveEvent]) -> CountWindows<'a> {
        CountWindows::new(events, self.mark_size, self.step_size)
    }

    /// Number of network evaluations over a stream of `n` events.
    pub fn num_steps(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else if n <= self.mark_size {
            1
        } else {
            1 + (n - self.mark_size).div_ceil(self.step_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlacep_events::{EventStream, TypeId};

    fn stream(n: usize) -> EventStream {
        let mut s = EventStream::new();
        for i in 0..n {
            s.push(TypeId(0), i as u64, vec![]);
        }
        s
    }

    #[test]
    fn paper_default_is_2w_w() {
        let c = AssemblerConfig::paper_default(150);
        assert_eq!(c.mark_size, 300);
        assert_eq!(c.step_size, 150);
        assert!(c.validate(150).is_ok());
    }

    #[test]
    fn every_w_window_is_covered_by_default() {
        // Matches within any W consecutive events must fit in one assembler
        // window: every aligned range [i, i+W) lies in some [kW, kW+2W).
        let w = 5usize;
        let c = AssemblerConfig::paper_default(w as u64);
        let s = stream(37);
        let wins: Vec<_> = c.windows(s.events()).collect();
        for start in 0..=(37 - w) {
            let covered = wins.iter().any(|win| {
                let lo = win[0].id.0 as usize;
                let hi = lo + win.len();
                lo <= start && start + w <= hi
            });
            assert!(covered, "match window at {start} not covered");
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(
            AssemblerConfig {
                mark_size: 4,
                step_size: 1
            }
            .validate(5),
            Err(AssemblerError::MarkSizeTooSmall)
        );
        assert_eq!(
            AssemblerConfig {
                mark_size: 10,
                step_size: 7
            }
            .validate(5),
            Err(AssemblerError::StepSizeTooLarge)
        );
        assert_eq!(
            AssemblerConfig {
                mark_size: 0,
                step_size: 1
            }
            .validate(5),
            Err(AssemblerError::Zero)
        );
        // MarkSize == W forces StepSize == 1 (the slow ECEP-like mode, §4.2).
        assert!(AssemblerConfig {
            mark_size: 5,
            step_size: 1
        }
        .validate(5)
        .is_ok());
        assert_eq!(
            AssemblerConfig {
                mark_size: 5,
                step_size: 2
            }
            .validate(5),
            Err(AssemblerError::StepSizeTooLarge)
        );
    }

    #[test]
    fn num_steps_counts_evaluations() {
        let c = AssemblerConfig {
            mark_size: 10,
            step_size: 5,
        };
        assert_eq!(c.num_steps(0), 0);
        assert_eq!(c.num_steps(10), 1);
        assert_eq!(c.num_steps(11), 2);
        assert_eq!(c.num_steps(20), 3);
        let wins = c.windows(stream(20).events()).count();
        assert_eq!(wins, 3);
    }
}
