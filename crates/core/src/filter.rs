//! Stream filters: the pluggable "DNN-based filter" stage of Fig. 4.
//!
//! A [`Filter`] marks, per assembler window, the events to relay to the CEP
//! extractor. Besides the two learned filters (event-network,
//! window-network) there is an [`OracleFilter`] (ground-truth marks — the
//! upper bound of what any filter can achieve, used to isolate CEP-side
//! gains from model quality) and a [`PassthroughFilter`] (marks everything —
//! degenerates DLACEP to ECEP plus overhead).

use crate::embed::EventEmbedder;
use crate::model::{EventNetwork, WindowNetwork};
use dlacep_cep::plan::Plan;
use dlacep_cep::Pattern;
use dlacep_events::PrimitiveEvent;

/// Marks the events of one assembler window that should survive filtration.
///
/// `Send + Sync` is a supertrait so the runtime can evaluate independent
/// windows on a `dlacep-par` pool; filters needing interior mutability must
/// use atomics or locks rather than `Cell`/`RefCell`.
pub trait Filter: Send + Sync {
    /// One mark per event; `true` = relay to the CEP extractor.
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool>;

    /// Raw per-event scores behind the marks (e.g. BI-CRF posterior
    /// marginals), when the filter has any. Guards use these to detect
    /// numerically poisoned models: a NaN score means the marks cannot be
    /// trusted even when the mark vector itself is well-formed. Rule-based
    /// filters return `None` (the default).
    fn scores(&self, _window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
        None
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Whether marks come from a quantized (int8) inference path. The
    /// pipeline splits its marking counters on this so quant-vs-f32 traffic
    /// is visible in the metrics registry.
    fn quantized(&self) -> bool {
        false
    }
}

/// Learned per-event filter: stacked BiLSTM + BI-CRF (§4.3 event-network).
#[derive(Debug, Clone)]
pub struct EventNetFilter {
    /// The trained model.
    pub network: EventNetwork,
    /// The embedder fitted to the pattern.
    pub embedder: EventEmbedder,
    /// `None`: mark by Viterbi decode (the symmetric-loss choice).
    /// `Some(t)`: mark events whose BI-CRF posterior marginal exceeds `t`.
    /// DLACEP's costs are asymmetric — a spurious mark only costs extra CEP
    /// work (the extractor discards it), while an unmarked participant loses
    /// the match permanently — so a recall-biased threshold (e.g. 0.3) is
    /// usually the better operating point.
    pub threshold: Option<f32>,
}

impl EventNetFilter {
    /// Build with Viterbi-decode marking.
    pub fn new(network: EventNetwork, embedder: EventEmbedder) -> Self {
        Self {
            network,
            embedder,
            threshold: None,
        }
    }
}

impl Filter for EventNetFilter {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        let embeds = self.embedder.embed_window(window, window.len());
        match self.threshold {
            None => self.network.mark(&embeds),
            Some(t) => self
                .network
                .marginals(&embeds)
                .into_iter()
                .map(|p| p > t)
                .collect(),
        }
    }

    fn scores(&self, window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
        let embeds = self.embedder.embed_window(window, window.len());
        Some(self.network.marginals(&embeds))
    }

    fn name(&self) -> &'static str {
        "event-network"
    }
}

/// Learned per-window filter: either the whole window survives or none of it
/// (§4.3 window-network).
#[derive(Debug, Clone)]
pub struct WindowNetFilter {
    /// The trained model.
    pub network: WindowNetwork,
    /// The embedder fitted to the pattern.
    pub embedder: EventEmbedder,
}

impl Filter for WindowNetFilter {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        let embeds = self.embedder.embed_window(window, window.len());
        let keep = self.network.applicable(&embeds);
        vec![keep; window.len()]
    }

    fn name(&self) -> &'static str {
        "window-network"
    }
}

/// Ground-truth filter: marks exactly the events an exact engine would put
/// into a full match within the window (plus negation-admissible events,
/// mirroring the labeler). Perfect recall and precision by construction.
#[derive(Debug, Clone)]
pub struct OracleFilter {
    pattern: Pattern,
    plan: Plan,
}

impl OracleFilter {
    /// Build for a pattern.
    ///
    /// # Panics
    /// Panics if the pattern does not compile.
    pub fn new(pattern: Pattern) -> Self {
        let plan = Plan::compile(&pattern).expect("pattern compiles");
        Self { pattern, plan }
    }
}

impl Filter for OracleFilter {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        let matches = dlacep_data::label::matches_in_sample(&self.pattern, window);
        let positive: std::collections::HashSet<u64> = matches
            .iter()
            .flat_map(|m| m.event_ids.iter().map(|id| id.0))
            .collect();
        let mut marks: Vec<bool> = window.iter().map(|e| positive.contains(&e.id.0)).collect();
        for branch in &self.plan.branches {
            for neg in &branch.negs {
                for elem in &neg.inner {
                    for (i, ev) in window.iter().enumerate() {
                        if elem.types.contains(ev.type_id) {
                            marks[i] = true;
                        }
                    }
                }
            }
        }
        marks
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// Marks every event (control: ECEP behaviour + filtering overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughFilter;

impl Filter for PassthroughFilter {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        vec![true; window.len()]
    }

    fn name(&self) -> &'static str {
        "passthrough"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlacep_cep::{PatternExpr, TypeSet};
    use dlacep_events::{EventStream, TypeId, WindowSpec};

    const A: TypeId = TypeId(0);
    const B: TypeId = TypeId(1);
    const C: TypeId = TypeId(2);

    fn seq_ab() -> Pattern {
        Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(A), "a"),
                PatternExpr::event(TypeSet::single(B), "b"),
            ]),
            vec![],
            WindowSpec::Count(4),
        )
    }

    fn stream(types: &[TypeId]) -> EventStream {
        let mut s = EventStream::new();
        for (i, &t) in types.iter().enumerate() {
            s.push(t, i as u64, vec![0.0]);
        }
        s
    }

    #[test]
    fn oracle_marks_match_participants_only() {
        let f = OracleFilter::new(seq_ab());
        let s = stream(&[A, C, B, C]);
        assert_eq!(f.mark(s.events()), vec![true, false, true, false]);
    }

    #[test]
    fn oracle_marks_nothing_without_matches() {
        let f = OracleFilter::new(seq_ab());
        let s = stream(&[B, A, C, C]); // wrong order
        assert_eq!(f.mark(s.events()), vec![false, false, false, false]);
    }

    #[test]
    fn oracle_marks_negation_types() {
        let p = Pattern::new(
            PatternExpr::Seq(vec![
                PatternExpr::event(TypeSet::single(A), "a"),
                PatternExpr::Neg(Box::new(PatternExpr::event(TypeSet::single(C), "n"))),
                PatternExpr::event(TypeSet::single(B), "b"),
            ]),
            vec![],
            WindowSpec::Count(4),
        );
        let f = OracleFilter::new(p);
        let s = stream(&[A, C, B, C]);
        // No match (C in gap) but Cs marked so the extractor can see them.
        assert_eq!(f.mark(s.events()), vec![false, true, false, true]);
    }

    #[test]
    fn passthrough_marks_everything() {
        let f = PassthroughFilter;
        let s = stream(&[A, B, C]);
        assert_eq!(f.mark(s.events()), vec![true; 3]);
        assert_eq!(f.name(), "passthrough");
    }
}
