//! Fault injection for exercising the degradation machinery.
//!
//! [`ChaosFilter`] wraps any [`Filter`] and injects a scheduled fault class
//! on selected invocations: panics, wrong-length mark vectors, non-finite
//! scores, or silent all-false marks (the one failure a guard cannot see —
//! that is the drift monitor's job). [`out_of_order_timestamps`] generates
//! deterministic disordered arrival sequences for testing the stream
//! admission policies.

use crate::filter::Filter;
use dlacep_events::PrimitiveEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// `mark` panics.
    Panic,
    /// `mark` returns one mark too many.
    WrongLength,
    /// `mark` is well-formed but `scores` returns NaNs — only a guard with
    /// score validation enabled catches this.
    NonFiniteScores,
    /// `mark` returns all-false: well-formed, silently losing every match in
    /// the window. Undetectable by shape checks; surfaces as a collapsed
    /// marking rate (drift).
    Silent,
}

/// When a rule applies, by 0-based `mark` call index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum When {
    At(usize),
    From(usize),
    Every(usize),
}

/// A [`Filter`] wrapper that injects faults on schedule.
///
/// Rules are checked in the order they were added; the first match wins.
/// Calls matching no rule are forwarded to the inner filter untouched.
///
/// Faults are keyed off the `mark` **call index**, so schedules are only
/// meaningful under serial evaluation: a batched runtime that marks windows
/// speculatively in parallel scrambles the call order. Keep chaos tests on
/// the serial ingest path.
pub struct ChaosFilter<F> {
    inner: F,
    rules: Vec<(When, ChaosFault)>,
    calls: AtomicUsize,
    last_call: AtomicUsize,
}

impl<F: Filter> ChaosFilter<F> {
    /// Wrap `inner` with no faults scheduled.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            rules: Vec::new(),
            calls: AtomicUsize::new(0),
            last_call: AtomicUsize::new(0),
        }
    }

    /// Inject `fault` on the `call`-th invocation (0-based).
    pub fn fault_at(mut self, call: usize, fault: ChaosFault) -> Self {
        self.rules.push((When::At(call), fault));
        self
    }

    /// Inject `fault` on every invocation from `call` (0-based) onward.
    pub fn fault_from(mut self, call: usize, fault: ChaosFault) -> Self {
        self.rules.push((When::From(call), fault));
        self
    }

    /// Inject `fault` on every `period`-th invocation (indices 0, period,
    /// 2·period, …).
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn fault_every(mut self, period: usize, fault: ChaosFault) -> Self {
        assert!(period > 0, "period must be positive");
        self.rules.push((When::Every(period), fault));
        self
    }

    /// Number of `mark` invocations so far.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    fn fault_for(&self, idx: usize) -> Option<ChaosFault> {
        self.rules
            .iter()
            .find(|(when, _)| match *when {
                When::At(c) => idx == c,
                When::From(c) => idx >= c,
                When::Every(p) => idx.is_multiple_of(p),
            })
            .map(|&(_, fault)| fault)
    }
}

impl<F: Filter> Filter for ChaosFilter<F> {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        let idx = self.calls.fetch_add(1, Ordering::Relaxed);
        self.last_call.store(idx, Ordering::Relaxed);
        match self.fault_for(idx) {
            Some(ChaosFault::Panic) => panic!("chaos: injected filter panic at call {idx}"),
            Some(ChaosFault::WrongLength) => {
                let mut marks = self.inner.mark(window);
                marks.push(true);
                marks
            }
            Some(ChaosFault::Silent) => vec![false; window.len()],
            Some(ChaosFault::NonFiniteScores) | None => self.inner.mark(window),
        }
    }

    fn scores(&self, window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
        // Guards call `scores` right after `mark` on the same window; key the
        // fault off the call `mark` just served.
        match self.fault_for(self.last_call.load(Ordering::Relaxed)) {
            Some(ChaosFault::NonFiniteScores) => Some(vec![f32::NAN; window.len()]),
            _ => self.inner.scores(window),
        }
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

/// Deterministic out-of-order arrival sequence: timestamp `i` for event `i`,
/// except a `disorder` fraction of events arrive late with their timestamp
/// lagging by `1..=max_lag`. Use with [`OutOfOrderPolicy`] tests.
///
/// [`OutOfOrderPolicy`]: dlacep_events::OutOfOrderPolicy
pub fn out_of_order_timestamps(n: usize, disorder: f64, max_lag: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_lag = max_lag.max(1);
    (0..n as u64)
        .map(|i| {
            if i > 0 && rng.gen_range(0.0..1.0) < disorder {
                i.saturating_sub(rng.gen_range(1..=max_lag))
            } else {
                i
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::PassthroughFilter;
    use dlacep_events::{EventStream, TypeId};

    fn window(n: usize) -> EventStream {
        let mut s = EventStream::new();
        for i in 0..n {
            s.push(TypeId(0), i as u64, vec![]);
        }
        s
    }

    #[test]
    fn no_rules_is_transparent() {
        let f = ChaosFilter::new(PassthroughFilter);
        let w = window(4);
        assert_eq!(f.mark(w.events()), vec![true; 4]);
        assert_eq!(f.calls(), 1);
    }

    #[test]
    fn fault_at_hits_exactly_one_call() {
        let f = ChaosFilter::new(PassthroughFilter).fault_at(1, ChaosFault::Silent);
        let w = window(3);
        assert_eq!(f.mark(w.events()), vec![true; 3]);
        assert_eq!(f.mark(w.events()), vec![false; 3]);
        assert_eq!(f.mark(w.events()), vec![true; 3]);
    }

    #[test]
    fn fault_from_is_permanent() {
        let f = ChaosFilter::new(PassthroughFilter).fault_from(2, ChaosFault::WrongLength);
        let w = window(3);
        assert_eq!(f.mark(w.events()).len(), 3);
        assert_eq!(f.mark(w.events()).len(), 3);
        assert_eq!(f.mark(w.events()).len(), 4);
        assert_eq!(f.mark(w.events()).len(), 4);
    }

    #[test]
    fn fault_every_is_periodic() {
        let f = ChaosFilter::new(PassthroughFilter).fault_every(3, ChaosFault::Silent);
        let w = window(2);
        let silent: Vec<bool> = (0..7)
            .map(|_| f.mark(w.events()).iter().all(|&m| !m))
            .collect();
        assert_eq!(silent, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn injected_panic_panics() {
        let f = ChaosFilter::new(PassthroughFilter).fault_at(0, ChaosFault::Panic);
        let w = window(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.mark(w.events())));
        assert!(caught.is_err());
    }

    #[test]
    fn nan_scores_on_schedule_only() {
        let f = ChaosFilter::new(PassthroughFilter).fault_at(0, ChaosFault::NonFiniteScores);
        let w = window(2);
        assert_eq!(f.mark(w.events()), vec![true; 2], "marks stay well-formed");
        let scores = f.scores(w.events()).unwrap();
        assert!(scores.iter().all(|s| s.is_nan()));
        f.mark(w.events());
        assert!(f.scores(w.events()).is_none(), "inner has no scores");
    }

    #[test]
    fn ooo_generator_is_deterministic_and_bounded() {
        let a = out_of_order_timestamps(100, 0.3, 5, 42);
        let b = out_of_order_timestamps(100, 0.3, 5, 42);
        assert_eq!(a, b);
        let disordered = a.windows(2).filter(|p| p[1] < p[0]).count();
        assert!(disordered > 0, "some regressions expected at 30% disorder");
        for (i, &ts) in a.iter().enumerate() {
            assert!(ts <= i as u64 && ts + 5 >= i as u64, "lag bounded");
        }
        let sorted = out_of_order_timestamps(50, 0.0, 5, 7);
        assert!(
            sorted.windows(2).all(|p| p[0] <= p[1]),
            "zero disorder is in order"
        );
    }
}
