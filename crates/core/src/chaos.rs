//! Fault injection for exercising the degradation machinery.
//!
//! [`ChaosFilter`] wraps any [`Filter`] and injects a scheduled fault class
//! on selected invocations: panics, injected I/O failures, wrong-length mark
//! vectors, non-finite scores, or silent all-false marks (the one failure a
//! guard cannot see — that is the drift monitor's job). Schedules are the
//! same [`Trigger`]/[`Schedule`] language the torn-write harness
//! ([`dlacep_dur::FailingStore`]) uses for storage death, so filter-fault
//! tests and crash-sweep tests compose on one injection API.
//! [`ChaosTrainer`] does the same for the retrain supervisor: it injects
//! training-job panics, failures, and gate-failing candidates keyed by the
//! retrain attempt number.
//! [`out_of_order_timestamps`] generates deterministic disordered arrival
//! sequences for testing the stream admission policies.

use crate::filter::Filter;
use crate::retrain::ModelTrainer;
use dlacep_cep::Pattern;
use dlacep_dur::{Schedule, Trigger};
use dlacep_events::PrimitiveEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// `mark` panics.
    Panic,
    /// `mark` fails as if an I/O-backed filter (e.g. one paging weights from
    /// disk) hit a read error. Surfaces as a panic carrying the injected
    /// error — the guard classifies it as a fault exactly like [`Panic`],
    /// but the message distinguishes the scenarios in test output.
    ///
    /// [`Panic`]: ChaosFault::Panic
    Io,
    /// `mark` returns one mark too many.
    WrongLength,
    /// `mark` is well-formed but `scores` returns NaNs — only a guard with
    /// score validation enabled catches this.
    NonFiniteScores,
    /// `mark` returns all-false: well-formed, silently losing every match in
    /// the window. Undetectable by shape checks; surfaces as a collapsed
    /// marking rate (drift).
    Silent,
}

/// How a [`ChaosFilter`] derives the index it feeds its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Keying {
    /// 0-based `mark` call index. Simple, but only meaningful under serial
    /// evaluation, and **not** stable across checkpoint/restore (a recovered
    /// runtime re-marks replayed windows, shifting every index).
    CallIndex,
    /// Id of the window's first event. Stable under parallel speculation
    /// *and* under crash-recovery replay: the same window always draws the
    /// same fault, no matter how many times or in which order it is marked.
    WindowStart,
}

/// A [`Filter`] wrapper that injects faults on schedule.
///
/// Rules are checked in the order they were added; the first trigger that
/// fires wins. Calls matching no rule are forwarded to the inner filter
/// untouched.
///
/// By default faults are keyed off the `mark` **call index**, so schedules
/// are only meaningful under serial evaluation: a batched runtime that marks
/// windows speculatively in parallel scrambles the call order, and a
/// recovered runtime re-marks replayed windows. For those cases switch to
/// [`key_by_window_start`](ChaosFilter::key_by_window_start), which keys
/// each fault off the window's first event id — a pure function of the
/// window's content.
pub struct ChaosFilter<F> {
    inner: F,
    rules: Vec<(Trigger, ChaosFault)>,
    keying: Keying,
    calls: AtomicU64,
    last_key: AtomicU64,
}

impl<F: Filter> ChaosFilter<F> {
    /// Wrap `inner` with no faults scheduled.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            rules: Vec::new(),
            keying: Keying::CallIndex,
            calls: AtomicU64::new(0),
            last_key: AtomicU64::new(0),
        }
    }

    /// Inject `fault` at index `idx` (0-based).
    pub fn fault_at(mut self, idx: u64, fault: ChaosFault) -> Self {
        self.rules.push((Trigger::At(idx), fault));
        self
    }

    /// Inject `fault` at every index from `idx` (0-based) onward.
    pub fn fault_from(mut self, idx: u64, fault: ChaosFault) -> Self {
        self.rules.push((Trigger::From(idx), fault));
        self
    }

    /// Inject `fault` at every `period`-th index (0, period, 2·period, …).
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn fault_every(mut self, period: u64, fault: ChaosFault) -> Self {
        assert!(period > 0, "period must be positive");
        self.rules.push((Trigger::Every(period), fault));
        self
    }

    /// Inject `fault` on every trigger of `schedule` — the same
    /// [`Schedule`] value a [`dlacep_dur::FailingStore`] takes, so one
    /// schedule can drive filter faults and storage crashes in lock-step.
    pub fn fault_when(mut self, schedule: Schedule, fault: ChaosFault) -> Self {
        self.rules
            .extend(schedule.triggers().iter().map(|&t| (t, fault)));
        self
    }

    /// Key faults off the window's first event id instead of the call
    /// index. Deterministic under parallel speculative marking and under
    /// crash-recovery replay — required for fault-injected crash sweeps.
    pub fn key_by_window_start(mut self) -> Self {
        self.keying = Keying::WindowStart;
        self
    }

    /// Number of `mark` invocations so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn fault_for(&self, idx: u64) -> Option<ChaosFault> {
        self.rules
            .iter()
            .find(|(trigger, _)| trigger.fires(idx))
            .map(|&(_, fault)| fault)
    }

    fn key_of(&self, call_idx: u64, window: &[PrimitiveEvent]) -> u64 {
        match self.keying {
            Keying::CallIndex => call_idx,
            Keying::WindowStart => window.first().map_or(0, |ev| ev.id.0),
        }
    }
}

impl<F: Filter> Filter for ChaosFilter<F> {
    fn mark(&self, window: &[PrimitiveEvent]) -> Vec<bool> {
        let call_idx = self.calls.fetch_add(1, Ordering::Relaxed);
        let key = self.key_of(call_idx, window);
        self.last_key.store(key, Ordering::Relaxed);
        match self.fault_for(key) {
            Some(ChaosFault::Panic) => panic!("chaos: injected filter panic at index {key}"),
            Some(ChaosFault::Io) => panic!(
                "chaos: injected i/o failure at index {key}: \
                 model read failed (os error 5)"
            ),
            Some(ChaosFault::WrongLength) => {
                let mut marks = self.inner.mark(window);
                marks.push(true);
                marks
            }
            Some(ChaosFault::Silent) => vec![false; window.len()],
            Some(ChaosFault::NonFiniteScores) | None => self.inner.mark(window),
        }
    }

    fn scores(&self, window: &[PrimitiveEvent]) -> Option<Vec<f32>> {
        // Guards call `scores` right after `mark` on the same window; key the
        // fault off the key `mark` just served.
        match self.fault_for(self.last_key.load(Ordering::Relaxed)) {
            Some(ChaosFault::NonFiniteScores) => Some(vec![f32::NAN; window.len()]),
            _ => self.inner.scores(window),
        }
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

/// The injectable training-job fault classes (see [`ChaosTrainer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainFault {
    /// The training job panics mid-run. The retrain supervisor must catch
    /// it and convert it into a retryable rejection.
    Panic,
    /// The training job returns an error (non-convergence, bad data, …).
    Fail,
    /// Training "succeeds" but yields the candidate from
    /// [`ChaosTrainer::flaky_candidates`] — typically a filter built to
    /// fail the validation gate, for exercising gate flapping.
    Flaky,
}

/// A [`ModelTrainer`] wrapper that injects faults on schedule, keyed by the
/// retrain **attempt** number. Rules are checked in order; the first trigger
/// that fires wins; attempts matching no rule are forwarded to the inner
/// trainer untouched. Encode/decode always delegate.
pub struct ChaosTrainer<F> {
    inner: Box<dyn ModelTrainer<F>>,
    rules: Vec<(Trigger, TrainFault)>,
    flaky: Option<Box<dyn Fn() -> F + Send + Sync>>,
}

impl<F: Filter> ChaosTrainer<F> {
    /// Wrap `inner` with no faults scheduled.
    pub fn new(inner: Box<dyn ModelTrainer<F>>) -> Self {
        Self {
            inner,
            rules: Vec::new(),
            flaky: None,
        }
    }

    /// Inject `fault` on attempt `attempt` (0-based).
    pub fn fault_at(mut self, attempt: u64, fault: TrainFault) -> Self {
        self.rules.push((Trigger::At(attempt), fault));
        self
    }

    /// Inject `fault` on every attempt from `attempt` (0-based) onward.
    pub fn fault_from(mut self, attempt: u64, fault: TrainFault) -> Self {
        self.rules.push((Trigger::From(attempt), fault));
        self
    }

    /// Candidate factory for [`TrainFault::Flaky`] attempts.
    pub fn flaky_candidates(mut self, factory: impl Fn() -> F + Send + Sync + 'static) -> Self {
        self.flaky = Some(Box::new(factory));
        self
    }

    fn fault_for(&self, attempt: u64) -> Option<TrainFault> {
        self.rules
            .iter()
            .find(|(trigger, _)| trigger.fires(attempt))
            .map(|&(_, fault)| fault)
    }
}

impl<F: Filter> ModelTrainer<F> for ChaosTrainer<F> {
    fn retrain(
        &self,
        pattern: &Pattern,
        windows: &[Vec<PrimitiveEvent>],
        attempt: u64,
    ) -> Result<F, String> {
        match self.fault_for(attempt) {
            Some(TrainFault::Panic) => {
                panic!("chaos: injected training panic at attempt {attempt}")
            }
            Some(TrainFault::Fail) => Err(format!(
                "chaos: injected training failure at attempt {attempt}"
            )),
            Some(TrainFault::Flaky) => {
                Ok(self.flaky.as_ref().expect(
                    "TrainFault::Flaky scheduled without a flaky_candidates factory",
                )())
            }
            None => self.inner.retrain(pattern, windows, attempt),
        }
    }

    fn encode(&self, filter: &F) -> Vec<u8> {
        self.inner.encode(filter)
    }

    fn decode(&self, bytes: &[u8]) -> Result<F, String> {
        self.inner.decode(bytes)
    }
}

/// Deterministic out-of-order arrival sequence: timestamp `i` for event `i`,
/// except a `disorder` fraction of events arrive late with their timestamp
/// lagging by `1..=max_lag`. Use with [`OutOfOrderPolicy`] tests.
///
/// [`OutOfOrderPolicy`]: dlacep_events::OutOfOrderPolicy
pub fn out_of_order_timestamps(n: usize, disorder: f64, max_lag: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_lag = max_lag.max(1);
    (0..n as u64)
        .map(|i| {
            if i > 0 && rng.gen_range(0.0..1.0) < disorder {
                i.saturating_sub(rng.gen_range(1..=max_lag))
            } else {
                i
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::PassthroughFilter;
    use dlacep_events::{EventStream, TypeId};

    fn window(n: usize) -> EventStream {
        let mut s = EventStream::new();
        for i in 0..n {
            s.push(TypeId(0), i as u64, vec![]);
        }
        s
    }

    #[test]
    fn no_rules_is_transparent() {
        let f = ChaosFilter::new(PassthroughFilter);
        let w = window(4);
        assert_eq!(f.mark(w.events()), vec![true; 4]);
        assert_eq!(f.calls(), 1);
    }

    #[test]
    fn fault_at_hits_exactly_one_call() {
        let f = ChaosFilter::new(PassthroughFilter).fault_at(1, ChaosFault::Silent);
        let w = window(3);
        assert_eq!(f.mark(w.events()), vec![true; 3]);
        assert_eq!(f.mark(w.events()), vec![false; 3]);
        assert_eq!(f.mark(w.events()), vec![true; 3]);
    }

    #[test]
    fn fault_from_is_permanent() {
        let f = ChaosFilter::new(PassthroughFilter).fault_from(2, ChaosFault::WrongLength);
        let w = window(3);
        assert_eq!(f.mark(w.events()).len(), 3);
        assert_eq!(f.mark(w.events()).len(), 3);
        assert_eq!(f.mark(w.events()).len(), 4);
        assert_eq!(f.mark(w.events()).len(), 4);
    }

    #[test]
    fn fault_every_is_periodic() {
        let f = ChaosFilter::new(PassthroughFilter).fault_every(3, ChaosFault::Silent);
        let w = window(2);
        let silent: Vec<bool> = (0..7)
            .map(|_| f.mark(w.events()).iter().all(|&m| !m))
            .collect();
        assert_eq!(silent, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn injected_panic_panics() {
        let f = ChaosFilter::new(PassthroughFilter).fault_at(0, ChaosFault::Panic);
        let w = window(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.mark(w.events())));
        assert!(caught.is_err());
    }

    #[test]
    fn injected_io_failure_panics_with_io_message() {
        let f = ChaosFilter::new(PassthroughFilter).fault_at(0, ChaosFault::Io);
        let w = window(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.mark(w.events())));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("i/o failure"), "got: {msg}");
    }

    #[test]
    fn nan_scores_on_schedule_only() {
        let f = ChaosFilter::new(PassthroughFilter).fault_at(0, ChaosFault::NonFiniteScores);
        let w = window(2);
        assert_eq!(f.mark(w.events()), vec![true; 2], "marks stay well-formed");
        let scores = f.scores(w.events()).unwrap();
        assert!(scores.iter().all(|s| s.is_nan()));
        f.mark(w.events());
        assert!(f.scores(w.events()).is_none(), "inner has no scores");
    }

    #[test]
    fn shared_schedule_drives_filter_faults() {
        let sched = Schedule::never().at(0).from(3);
        let f = ChaosFilter::new(PassthroughFilter).fault_when(sched, ChaosFault::Silent);
        let w = window(2);
        let silent: Vec<bool> = (0..5)
            .map(|_| f.mark(w.events()).iter().all(|&m| !m))
            .collect();
        assert_eq!(silent, vec![true, false, false, true, true]);
    }

    #[test]
    fn window_start_keying_is_replay_stable() {
        // Fault keyed to the window whose first event has id 4 — marking the
        // same window any number of times, in any order, draws the same
        // fault; other windows never do.
        let f = ChaosFilter::new(PassthroughFilter)
            .fault_at(4, ChaosFault::Silent)
            .key_by_window_start();
        let mut s = EventStream::new();
        for i in 0..8 {
            s.push(TypeId(0), i as u64, vec![]);
        }
        let evs = s.events();
        for _ in 0..3 {
            assert_eq!(f.mark(&evs[0..4]), vec![true; 4], "window@0 clean");
            assert_eq!(f.mark(&evs[4..8]), vec![false; 4], "window@4 faulted");
        }
        // Scores follow the last-marked window's key, not the call count.
        f.mark(&evs[4..8]);
        assert_eq!(f.scores(&evs[4..8]), None, "no NaN rule on this key");
    }

    #[test]
    fn ooo_generator_is_deterministic_and_bounded() {
        let a = out_of_order_timestamps(100, 0.3, 5, 42);
        let b = out_of_order_timestamps(100, 0.3, 5, 42);
        assert_eq!(a, b);
        let disordered = a.windows(2).filter(|p| p[1] < p[0]).count();
        assert!(disordered > 0, "some regressions expected at 30% disorder");
        for (i, &ts) in a.iter().enumerate() {
            assert!(ts <= i as u64 && ts + 5 >= i as u64, "lag bounded");
        }
        let sorted = out_of_order_timestamps(50, 0.0, 5, 7);
        assert!(
            sorted.windows(2).all(|p| p[0] <= p[1]),
            "zero disorder is in order"
        );
    }
}
